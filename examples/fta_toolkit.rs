//! The FTA toolkit on its own: cut sets, quantification engines, BDDs,
//! and importance measures on a classic redundant-system tree.
//!
//! System: a protection function fails if BOTH redundant channels fail or
//! the common power supply fails. Each channel is a sensor + a 2-of-3
//! voter over processing units.
//!
//! Run with: `cargo run --example fta_toolkit`

use safety_optimization::fta::bdd::TreeBdd;
use safety_optimization::fta::importance::ImportanceReport;
use safety_optimization::fta::mcs;
use safety_optimization::fta::quant::QuantReport;
use safety_optimization::fta::render::to_ascii;
use safety_optimization::fta::tree::FaultTree;

fn build_tree() -> Result<FaultTree, safety_optimization::fta::FtaError> {
    let mut ft = FaultTree::new("Protection function fails");
    let power = ft.basic_event_with_probability("power supply fails", 1e-5)?;
    let mut channels = Vec::new();
    for ch in ["A", "B"] {
        let sensor = ft.basic_event_with_probability(format!("sensor {ch} fails"), 2e-3)?;
        let units: Vec<_> = (1..=3)
            .map(|i| ft.basic_event_with_probability(format!("unit {ch}{i} fails"), 5e-3))
            .collect::<Result<_, _>>()?;
        let voter = ft.k_of_n_gate(format!("voter {ch} outvoted"), 2, units)?;
        channels.push(ft.or_gate(format!("channel {ch} fails"), [sensor, voter])?);
    }
    let both = ft.and_gate("both channels fail", channels)?;
    let top = ft.or_gate("protection fails", [both, power])?;
    ft.set_root(top)?;
    Ok(ft)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = build_tree()?;
    print!("{}", to_ascii(&tree)?);

    // Three independent engines must agree.
    let by_mocus = mcs::mocus(&tree)?;
    let by_bottom_up = mcs::bottom_up(&tree)?;
    let bdd = TreeBdd::build(&tree)?;
    let by_bdd = bdd.minimal_cut_sets()?;
    assert_eq!(by_mocus, by_bottom_up);
    assert_eq!(by_bottom_up, by_bdd);
    println!(
        "\n{} minimal cut sets (MOCUS ≡ bottom-up ≡ BDD), orders 1..{}",
        by_mocus.len(),
        by_mocus.max_order()
    );
    for cs in by_mocus.iter().take(6) {
        println!("  {{{}}}", cs.names(&tree).join(", "));
    }
    println!("  …");

    // Quantification: the paper's Eq. 1 vs the exact value.
    let probs = tree.stored_probabilities()?;
    let report = QuantReport::compute(&tree, &probs)?;
    println!("\nquantification:");
    println!("  rare-event (paper Eq. 1): {:.6e}", report.rare_event);
    println!(
        "  min-cut upper bound     : {:.6e}",
        report.min_cut_upper_bound
    );
    if let Some(ie) = report.inclusion_exclusion {
        println!("  inclusion-exclusion     : {ie:.6e}");
    }
    println!("  BDD exact               : {:.6e}", report.bdd_exact);
    println!(
        "  Eq. 1 over-estimates by {:.3} % (tiny: failure probabilities are small)",
        100.0 * report.rare_event_relative_error()
    );
    println!("  BDD size: {} nodes", bdd.node_count());

    // Importance: where to spend the next reliability euro.
    let importance = ImportanceReport::compute(&tree, &probs)?;
    println!("\nimportance (by Birnbaum):");
    println!(
        "  {:<22} {:>10} {:>10} {:>8} {:>8}",
        "event", "Birnbaum", "F-V", "RAW", "RRW"
    );
    for leaf in &importance.leaves {
        println!(
            "  {:<22} {:>10.3e} {:>10.3e} {:>8.2} {:>8.2}",
            leaf.name, leaf.birnbaum, leaf.fussell_vesely, leaf.raw, leaf.rrw
        );
    }
    let top = importance.most_important().expect("non-empty");
    println!("\n-> the single point of failure dominates: {}", top.name);
    Ok(())
}
