//! Uncertainty analysis on the Elbtunnel model — the paper's Sect. V
//! outlook ("reduce the whole optimization problem to a problem of
//! stochastic programming") in practice.
//!
//! The calibrated constants are point estimates; in reality the engineers
//! would know them only within ranges. This example treats the
//! high-vehicle rate, the OHV presence probability, and the cost ratio as
//! uncertain, propagates them through the model, and asks the two
//! questions that matter:
//!
//! 1. How uncertain are the risk numbers at the recommended
//!    configuration?
//! 2. How much does the *recommendation itself* (the optimal runtimes)
//!    move — is "19 / 15.6 minutes" robust?
//!
//! Run with: `cargo run --release --example uncertainty_analysis`

use rand::Rng;
use safety_optimization::elbtunnel::analytic::ElbtunnelModel;
use safety_optimization::safeopt::uncertainty::{optimize_under_uncertainty, propagate};
use safety_optimization::stats::dist::{LogNormal, SampleDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Credible ranges: λ_HV within ±25 % (log-normal), P(OHV) within a
    // factor ~1.5, the cost ratio between 50 000 and 200 000.
    let lambda_prior = LogNormal::from_mean_std(0.13, 0.03)?;
    let sampler = move |rng: &mut rand::rngs::StdRng| {
        let mut m = ElbtunnelModel::paper();
        m.lambda_hv = lambda_prior.sample(rng).clamp(0.05, 0.4);
        m.p_ohv *= 0.75 + 0.75 * rng.gen::<f64>();
        m.cost_collision = 50_000.0 + 150_000.0 * rng.gen::<f64>();
        m.build()
    };

    println!("== 1. Risk uncertainty at the paper's optimum (19, 15.6) ==");
    let report = propagate(sampler, &[19.0, 15.6], 400, 2004)?;
    let (clo, chi) = report.cost.mean_confidence_interval(0.95)?;
    println!(
        "mean cost      : {:.4e}  (95 % CI of the mean [{:.4e}, {:.4e}])",
        report.cost.mean(),
        clo,
        chi
    );
    println!(
        "cost range     : [{:.4e}, {:.4e}] over {} sampled models",
        report.cost.min(),
        report.cost.max(),
        report.runs
    );
    println!(
        "P(collision)   : {:.3e} ± {:.1e}",
        report.hazards[0].mean(),
        report.hazards[0].sample_std_dev()
    );
    println!(
        "P(false alarm) : {:.3e} ± {:.1e}",
        report.hazards[1].mean(),
        report.hazards[1].sample_std_dev()
    );

    println!("\n== 2. How robust is the recommendation itself? ==");
    let dist = optimize_under_uncertainty(sampler, 60, 2005)?;
    println!(
        "timer1*: {:.2} ± {:.2} min   timer2*: {:.2} ± {:.2} min   ({} failures / {} runs)",
        dist.arg_min[0].mean(),
        dist.arg_min[0].sample_std_dev(),
        dist.arg_min[1].mean(),
        dist.arg_min[1].sample_std_dev(),
        dist.failures,
        dist.runs
    );
    println!(
        "optimal cost: {:.4e} ± {:.1e}",
        dist.min_cost.mean(),
        dist.min_cost.sample_std_dev()
    );
    println!(
        "\nreading: the optimum moves by only ~{:.1} min across the credible model\n\
         range — the paper's recommendation is robust to the statistical model's\n\
         uncertainty (its own Sect. V concern).",
        dist.arg_min_spread()
    );
    Ok(())
}
