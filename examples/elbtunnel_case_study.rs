//! The full Elbtunnel case study — the paper's Sect. IV, end to end.
//!
//! Walks through every step the paper reports:
//!
//! 1. fault trees for both hazards and their minimal cut sets,
//! 2. the parameterized/constrained analytic model,
//! 3. optimization of the timer runtimes (paper: ≈ 19 / 15.6 min),
//! 4. comparison against the engineers' 30-minute initial guesses,
//! 5. the Fig. 6 scaling analysis that exposes the design flaw, with the
//!    two proposed fixes,
//! 6. Monte-Carlo cross-validation via the discrete-event simulator.
//!
//! Run with: `cargo run --release --example elbtunnel_case_study`
//!
//! With `--telemetry`, forces the `full` telemetry mode, attaches a
//! convergence-trace observer to the optimizer, and appends a
//! human-readable telemetry summary (tape compile statistics, memo
//! cache hit rate, per-restart convergence) after the study.

use safety_optimization::elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_optimization::elbtunnel::constants as c;
use safety_optimization::elbtunnel::fault_trees;
use safety_optimization::elbtunnel::sim::{simulate, SimConfig};
use safety_optimization::fta::render::to_ascii;
use safety_optimization::optim::CollectingHook;
use safety_optimization::safeopt::optimize::{ConfigurationComparison, SafetyOptimizer};
use safety_optimization::telemetry;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let with_telemetry = std::env::args().any(|a| a == "--telemetry");
    if with_telemetry {
        telemetry::set_mode(telemetry::TelemetryMode::Full);
    }
    let trace = Arc::new(CollectingHook::default());
    println!("== 1. Fault tree analysis (Sect. IV-B) ==");
    for tree in [
        fault_trees::collision_tree()?,
        fault_trees::false_alarm_tree()?,
    ] {
        println!("\n{}", tree.name());
        print!("{}", to_ascii(&tree)?);
        let mcs = tree.minimal_cut_sets()?;
        println!("minimal cut sets ({}):", mcs.len());
        for cs in mcs.iter() {
            println!("  {{{}}}", cs.names(&tree).join(", "));
        }
    }

    println!("\n== 2. Parameterized model (Sect. IV-C) ==");
    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let (i1, i2) = c::INITIAL_TIMERS_MIN;
    println!(
        "initial config (T1, T2) = ({i1}, {i2}) min:  P(HCol) = {:.3e}, P(HAlr) = {:.3e}",
        paper.p_collision(i1, i2)?,
        paper.p_false_alarm(i1, i2),
    );

    println!("\n== 3. Safety optimization ==");
    let mut optimizer = SafetyOptimizer::new(&model);
    if with_telemetry {
        optimizer = optimizer.with_trace_hook(trace.clone());
    }
    let optimum = optimizer.run()?;
    println!("{optimum}");
    println!(
        "paper reports ≈ ({}, {}) min",
        c::PAPER_OPTIMUM_MIN.0,
        c::PAPER_OPTIMUM_MIN.1
    );

    println!("\n== 4. Optimum vs the engineers' guesses ==");
    let cmp = ConfigurationComparison::compute(&model, &[i1, i2], optimum.point().values())?;
    print!("{cmp}");
    let alarm = cmp.hazard("false-alarm").expect("hazard exists");
    println!(
        "false-alarm risk improvement: {:.1} % (paper: ~10 %)",
        -100.0 * alarm.relative_change
    );
    let col = cmp.hazard("collision").expect("hazard exists");
    println!(
        "collision risk change: {:+.3} % (paper: < 0.1 %)",
        100.0 * col.relative_change
    );

    println!("\n== 5. Scaling analysis (Fig. 6): the design flaw ==");
    let t2_opt = optimum.point().value("timer2").unwrap();
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let p = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} P(false alarm | correct OHV) at T2 = {t2_opt:.1}: {:5.1} %",
            100.0 * p
        );
    }
    println!(
        "  -> even at the optimized runtime, {:.0} % of correctly driving OHVs\n\
         \x20    trigger an alarm; the complex control is almost obsolete\n\
         \x20    (the paper's central finding).",
        100.0 * scaling::false_alarm_given_correct_ohv(&paper, Variant::Original, t2_opt)?
    );

    println!("\n== 6. Discrete-event simulation cross-check ==");
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let config = SimConfig::paper(19.0, t2_opt, variant);
        let report = simulate(&config, 100_000, 2004);
        let sim = report.false_alarm_given_correct.p_hat();
        let (lo, hi) = report.false_alarm_given_correct.wilson_interval(0.95)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} sim {:5.2} % [{:5.2}, {:5.2}]  analytic {:5.2} %",
            100.0 * sim,
            100.0 * lo,
            100.0 * hi,
            100.0 * analytic
        );
    }

    if with_telemetry {
        print_telemetry_summary(&trace);
    }
    Ok(())
}

/// The `--telemetry` appendix: what the registry observed across the
/// whole study, plus the optimizer's convergence trace.
fn print_telemetry_summary(trace: &CollectingHook) {
    let snap = telemetry::snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    println!("\n== 7. Telemetry summary (--telemetry) ==");
    println!("tape compilation:");
    println!("  builds            {:>10}", c("engine.tape.builds"));
    println!("  ops requested     {:>10}", c("engine.tape.ops_requested"));
    println!("  ops emitted       {:>10}", c("engine.tape.ops_emitted"));
    println!("  constants folded  {:>10}", c("engine.tape.const_folded"));
    println!("  hash-cons hits    {:>10}", c("engine.tape.interned_hits"));
    println!("  fused n-ary ops   {:>10}", c("engine.tape.fused_ops"));
    let (hits, misses) = (c("engine.cache.hits"), c("engine.cache.misses"));
    let evals = hits + misses;
    println!("memo cache:");
    println!("  hits / misses     {hits:>10} / {misses}");
    println!(
        "  hit rate          {:>9.1}%",
        if evals > 0 {
            100.0 * hits as f64 / evals as f64
        } else {
            0.0
        }
    );
    println!("batch execution:");
    println!("  chunks swept      {:>10}", c("engine.batch.chunks"));
    println!("  soa points        {:>10}", c("engine.batch.soa_points"));
    println!(
        "  scalar points     {:>10}",
        c("engine.batch.scalar_points")
    );
    println!(
        "  adjoint sweeps    {:>10}",
        c("engine.grad.adjoint_sweeps")
    );

    let collected = trace.collected();
    let restarts = collected.iter().map(|(k, _)| *k).max().map_or(0, |k| k + 1);
    println!(
        "optimizer trace ({restarts} restarts, {} points):",
        collected.len()
    );
    for k in 0..restarts {
        let last = collected.iter().rev().find(|(r, _)| *r == k);
        if let Some((_, p)) = last {
            println!(
                "  restart {k}: {:>3} iterations, {:>4} evaluations, best {:.6e}",
                p.iteration, p.evaluations, p.best_value
            );
        }
    }
}
