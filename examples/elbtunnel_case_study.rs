//! The full Elbtunnel case study — the paper's Sect. IV, end to end.
//!
//! Walks through every step the paper reports:
//!
//! 1. fault trees for both hazards and their minimal cut sets,
//! 2. the parameterized/constrained analytic model,
//! 3. optimization of the timer runtimes (paper: ≈ 19 / 15.6 min),
//! 4. comparison against the engineers' 30-minute initial guesses,
//! 5. the Fig. 6 scaling analysis that exposes the design flaw, with the
//!    two proposed fixes,
//! 6. Monte-Carlo cross-validation via the discrete-event simulator.
//!
//! Run with: `cargo run --release --example elbtunnel_case_study`
//!
//! With `--telemetry`, forces the `full` telemetry mode, attaches a
//! convergence-trace observer to the optimizer, and appends a
//! human-readable telemetry summary (tape compile statistics, memo
//! cache hit rate, per-restart convergence) after the study.
//!
//! With `--trace`, additionally forces `SAFETY_OPT_TRACE=full`: the
//! study records a structured event stream (scopes, spans, warnings)
//! and per-op sweep profiles, writes the events as Chrome trace-event
//! JSON (`results/elbtunnel_trace.json`, loadable in Perfetto or
//! `chrome://tracing`) and as JSONL (`results/elbtunnel_trace.jsonl`),
//! and appends an event/scope summary plus the compiled tape's hot-op
//! table.

use safety_optimization::elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_optimization::elbtunnel::constants as c;
use safety_optimization::elbtunnel::fault_trees;
use safety_optimization::elbtunnel::sim::{simulate, SimConfig};
use safety_optimization::fta::render::to_ascii;
use safety_optimization::optim::CollectingHook;
use safety_optimization::safeopt::optimize::{ConfigurationComparison, SafetyOptimizer};
use safety_optimization::telemetry;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let with_trace = args.iter().any(|a| a == "--trace");
    let with_telemetry = args.iter().any(|a| a == "--telemetry") || with_trace;
    if with_telemetry {
        telemetry::set_mode(telemetry::TelemetryMode::Full);
    }
    if with_trace {
        telemetry::set_trace_mode(telemetry::TraceMode::Full);
    }
    let trace = Arc::new(CollectingHook::default());
    println!("== 1. Fault tree analysis (Sect. IV-B) ==");
    for tree in [
        fault_trees::collision_tree()?,
        fault_trees::false_alarm_tree()?,
    ] {
        println!("\n{}", tree.name());
        print!("{}", to_ascii(&tree)?);
        let mcs = tree.minimal_cut_sets()?;
        println!("minimal cut sets ({}):", mcs.len());
        for cs in mcs.iter() {
            println!("  {{{}}}", cs.names(&tree).join(", "));
        }
    }

    println!("\n== 2. Parameterized model (Sect. IV-C) ==");
    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let (i1, i2) = c::INITIAL_TIMERS_MIN;
    println!(
        "initial config (T1, T2) = ({i1}, {i2}) min:  P(HCol) = {:.3e}, P(HAlr) = {:.3e}",
        paper.p_collision(i1, i2)?,
        paper.p_false_alarm(i1, i2),
    );

    println!("\n== 3. Safety optimization ==");
    let mut optimizer = SafetyOptimizer::new(&model);
    if with_telemetry {
        optimizer = optimizer.with_trace_hook(trace.clone());
    }
    let optimum = optimizer.run()?;
    println!("{optimum}");
    println!(
        "paper reports ≈ ({}, {}) min",
        c::PAPER_OPTIMUM_MIN.0,
        c::PAPER_OPTIMUM_MIN.1
    );

    println!("\n== 4. Optimum vs the engineers' guesses ==");
    let cmp = ConfigurationComparison::compute(&model, &[i1, i2], optimum.point().values())?;
    print!("{cmp}");
    let alarm = cmp.hazard("false-alarm").expect("hazard exists");
    println!(
        "false-alarm risk improvement: {:.1} % (paper: ~10 %)",
        -100.0 * alarm.relative_change
    );
    let col = cmp.hazard("collision").expect("hazard exists");
    println!(
        "collision risk change: {:+.3} % (paper: < 0.1 %)",
        100.0 * col.relative_change
    );

    println!("\n== 5. Scaling analysis (Fig. 6): the design flaw ==");
    let t2_opt = optimum.point().value("timer2").unwrap();
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let p = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} P(false alarm | correct OHV) at T2 = {t2_opt:.1}: {:5.1} %",
            100.0 * p
        );
    }
    println!(
        "  -> even at the optimized runtime, {:.0} % of correctly driving OHVs\n\
         \x20    trigger an alarm; the complex control is almost obsolete\n\
         \x20    (the paper's central finding).",
        100.0 * scaling::false_alarm_given_correct_ohv(&paper, Variant::Original, t2_opt)?
    );

    println!("\n== 6. Discrete-event simulation cross-check ==");
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let config = SimConfig::paper(19.0, t2_opt, variant);
        let report = simulate(&config, 100_000, 2004);
        let sim = report.false_alarm_given_correct.p_hat();
        let (lo, hi) = report.false_alarm_given_correct.wilson_interval(0.95)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} sim {:5.2} % [{:5.2}, {:5.2}]  analytic {:5.2} %",
            100.0 * sim,
            100.0 * lo,
            100.0 * hi,
            100.0 * analytic
        );
    }

    if with_telemetry {
        print_telemetry_summary(&trace);
    }
    if with_trace {
        write_trace_artifacts(&model)?;
    }
    Ok(())
}

/// The `--trace` appendix: exports the study's event stream, prints a
/// per-kind/per-scope digest, and renders the compiled tape's hot-op
/// table (populated by a profiled surface sweep, since the optimizer's
/// internal tape is not exposed).
fn write_trace_artifacts(
    model: &safety_optimization::safeopt::model::SafetyModel,
) -> Result<(), Box<dyn std::error::Error>> {
    use safety_optimization::safeopt::compile::CompiledModel;

    println!("\n== 8. Structured trace (--trace) ==");

    // A profiled sweep over the cost surface grid: every op of the
    // compiled Elbtunnel tape gets timed forward/adjoint samples on
    // both the lane-blocked and the scalar-tail path.
    let compiled = CompiledModel::compile(model)?;
    {
        let _scope = telemetry::TraceScope::enter("profile.sweep");
        let pts: Vec<Vec<f64>> = (0..60)
            .flat_map(|i| (0..60).map(move |j| vec![5.0 + i as f64, 5.0 + j as f64]))
            .collect();
        compiled.cost_batch(&pts)?;
        compiled.gradient_batch(&pts)?;
    }
    println!("hot ops (compiled Elbtunnel tape, surface sweep):");
    print!("{}", compiled.profile_report().render_table());

    let events = telemetry::trace::take_events();
    let mut kinds: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut scopes: std::collections::BTreeSet<String> = Default::default();
    for e in &events {
        *kinds.entry(e.kind.name()).or_default() += 1;
        if let Some(s) = &e.scope {
            scopes.insert(s.clone());
        }
    }
    println!(
        "event stream: {} events ({} dropped)",
        events.len(),
        telemetry::trace::dropped_events()
    );
    for (kind, n) in &kinds {
        println!("  {kind:<16} {n:>8}");
    }
    println!(
        "scopes seen: {}",
        scopes.into_iter().collect::<Vec<_>>().join(", ")
    );

    std::fs::create_dir_all("results")?;
    let chrome = telemetry::trace::export_chrome_trace(&events);
    std::fs::write("results/elbtunnel_trace.json", chrome)?;
    let jsonl = telemetry::trace::export_jsonl(&events);
    std::fs::write("results/elbtunnel_trace.jsonl", jsonl)?;
    println!(
        "wrote results/elbtunnel_trace.json (Chrome trace-event format; \
         load in Perfetto or chrome://tracing) and results/elbtunnel_trace.jsonl"
    );
    Ok(())
}

/// The `--telemetry` appendix: what the registry observed across the
/// whole study, plus the optimizer's convergence trace.
fn print_telemetry_summary(trace: &CollectingHook) {
    let snap = telemetry::snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    println!("\n== 7. Telemetry summary (--telemetry) ==");
    println!("tape compilation:");
    println!("  builds            {:>10}", c("engine.tape.builds"));
    println!("  ops requested     {:>10}", c("engine.tape.ops_requested"));
    println!("  ops emitted       {:>10}", c("engine.tape.ops_emitted"));
    println!("  constants folded  {:>10}", c("engine.tape.const_folded"));
    println!("  hash-cons hits    {:>10}", c("engine.tape.interned_hits"));
    println!("  fused n-ary ops   {:>10}", c("engine.tape.fused_ops"));
    let (hits, misses) = (c("engine.cache.hits"), c("engine.cache.misses"));
    let evals = hits + misses;
    println!("memo cache:");
    println!("  hits / misses     {hits:>10} / {misses}");
    println!(
        "  hit rate          {:>9.1}%",
        if evals > 0 {
            100.0 * hits as f64 / evals as f64
        } else {
            0.0
        }
    );
    println!("batch execution:");
    println!("  chunks swept      {:>10}", c("engine.batch.chunks"));
    println!("  soa points        {:>10}", c("engine.batch.soa_points"));
    println!(
        "  scalar points     {:>10}",
        c("engine.batch.scalar_points")
    );
    println!(
        "  adjoint sweeps    {:>10}",
        c("engine.grad.adjoint_sweeps")
    );

    let collected = trace.collected();
    let restarts = collected.iter().map(|(k, _)| *k).max().map_or(0, |k| k + 1);
    println!(
        "optimizer trace ({restarts} restarts, {} points):",
        collected.len()
    );
    for k in 0..restarts {
        let last = collected.iter().rev().find(|(r, _)| *r == k);
        if let Some((_, p)) = last {
            println!(
                "  restart {k}: {:>3} iterations, {:>4} evaluations, best {:.6e}",
                p.iteration, p.evaluations, p.best_value
            );
        }
    }
}
