//! The full Elbtunnel case study — the paper's Sect. IV, end to end.
//!
//! Walks through every step the paper reports:
//!
//! 1. fault trees for both hazards and their minimal cut sets,
//! 2. the parameterized/constrained analytic model,
//! 3. optimization of the timer runtimes (paper: ≈ 19 / 15.6 min),
//! 4. comparison against the engineers' 30-minute initial guesses,
//! 5. the Fig. 6 scaling analysis that exposes the design flaw, with the
//!    two proposed fixes,
//! 6. Monte-Carlo cross-validation via the discrete-event simulator.
//!
//! Run with: `cargo run --release --example elbtunnel_case_study`

use safety_optimization::elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_optimization::elbtunnel::constants as c;
use safety_optimization::elbtunnel::fault_trees;
use safety_optimization::elbtunnel::sim::{simulate, SimConfig};
use safety_optimization::fta::render::to_ascii;
use safety_optimization::safeopt::optimize::{ConfigurationComparison, SafetyOptimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. Fault tree analysis (Sect. IV-B) ==");
    for tree in [
        fault_trees::collision_tree()?,
        fault_trees::false_alarm_tree()?,
    ] {
        println!("\n{}", tree.name());
        print!("{}", to_ascii(&tree)?);
        let mcs = tree.minimal_cut_sets()?;
        println!("minimal cut sets ({}):", mcs.len());
        for cs in mcs.iter() {
            println!("  {{{}}}", cs.names(&tree).join(", "));
        }
    }

    println!("\n== 2. Parameterized model (Sect. IV-C) ==");
    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let (i1, i2) = c::INITIAL_TIMERS_MIN;
    println!(
        "initial config (T1, T2) = ({i1}, {i2}) min:  P(HCol) = {:.3e}, P(HAlr) = {:.3e}",
        paper.p_collision(i1, i2)?,
        paper.p_false_alarm(i1, i2),
    );

    println!("\n== 3. Safety optimization ==");
    let optimum = SafetyOptimizer::new(&model).run()?;
    println!("{optimum}");
    println!(
        "paper reports ≈ ({}, {}) min",
        c::PAPER_OPTIMUM_MIN.0,
        c::PAPER_OPTIMUM_MIN.1
    );

    println!("\n== 4. Optimum vs the engineers' guesses ==");
    let cmp = ConfigurationComparison::compute(&model, &[i1, i2], optimum.point().values())?;
    print!("{cmp}");
    let alarm = cmp.hazard("false-alarm").expect("hazard exists");
    println!(
        "false-alarm risk improvement: {:.1} % (paper: ~10 %)",
        -100.0 * alarm.relative_change
    );
    let col = cmp.hazard("collision").expect("hazard exists");
    println!(
        "collision risk change: {:+.3} % (paper: < 0.1 %)",
        100.0 * col.relative_change
    );

    println!("\n== 5. Scaling analysis (Fig. 6): the design flaw ==");
    let t2_opt = optimum.point().value("timer2").unwrap();
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let p = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} P(false alarm | correct OHV) at T2 = {t2_opt:.1}: {:5.1} %",
            100.0 * p
        );
    }
    println!(
        "  -> even at the optimized runtime, {:.0} % of correctly driving OHVs\n\
         \x20    trigger an alarm; the complex control is almost obsolete\n\
         \x20    (the paper's central finding).",
        100.0 * scaling::false_alarm_given_correct_ohv(&paper, Variant::Original, t2_opt)?
    );

    println!("\n== 6. Discrete-event simulation cross-check ==");
    for variant in [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal] {
        let config = SimConfig::paper(19.0, t2_opt, variant);
        let report = simulate(&config, 100_000, 2004);
        let sim = report.false_alarm_given_correct.p_hat();
        let (lo, hi) = report.false_alarm_given_correct.wilson_interval(0.95)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&paper, variant, t2_opt)?;
        println!(
            "  {variant:<14} sim {:5.2} % [{:5.2}, {:5.2}]  analytic {:5.2} %",
            100.0 * sim,
            100.0 * lo,
            100.0 * hi,
            100.0 * analytic
        );
    }
    Ok(())
}
