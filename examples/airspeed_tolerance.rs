//! The paper's motivating aviation example (Sect. III): how tight should
//! the pre-flight tolerance on the air-speed indicator be?
//!
//! *"…the smaller the allowed tolerance is, the safer the airplane
//! operation will be. On the other hand too small acceptable tolerances
//! will result in many safe aircraft failing the pre-flight check and
//! thus in delay or canceled flights. So what is the solution? It's of
//! course some middle value…"*
//!
//! Model: during the check, the indicator's deviation from a reference is
//! measured. Healthy indicators scatter with σ = 2 kt around 0; defective
//! ones develop a bias (normal around ±12 kt, σ = 4 kt). The check rejects
//! the aircraft when |deviation| > tolerance.
//!
//! * Hazard "accident": a defective indicator passes the check (its
//!   deviation happened to look small) and contributes to a crash.
//! * Hazard "grounding": a healthy aircraft fails the check.
//!
//! Run with: `cargo run --example airspeed_tolerance`

use safety_optimization::safeopt::model::{Hazard, SafetyModel};
use safety_optimization::safeopt::optimize::SafetyOptimizer;
use safety_optimization::safeopt::param::ParameterSpace;
use safety_optimization::safeopt::pprob::{constant, from_fn};
use safety_optimization::safeopt::sensitivity;
use safety_optimization::stats::dist::{ContinuousDistribution, Normal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut space = ParameterSpace::new();
    let tol = space.parameter_with_unit("tolerance", 0.5, 20.0, "kt")?;

    let healthy = Normal::new(0.0, 2.0)?;
    let defective = Normal::new(12.0, 4.0)?; // magnitude of a developed bias

    // P(defective indicator escapes the check) = P(|dev| <= tol), dev ~ defective.
    let p_escape = from_fn("defect escapes check", move |v| {
        let t = v.get(tol).unwrap_or(0.0);
        (defective.cdf(t) - defective.cdf(-t)).clamp(0.0, 1.0)
    });
    // P(healthy aircraft rejected) = P(|dev| > tol), dev ~ healthy.
    let p_reject = from_fn("healthy aircraft grounded", move |v| {
        let t = v.get(tol).unwrap_or(0.0);
        (healthy.sf(t) + healthy.cdf(-t)).clamp(0.0, 1.0)
    });

    let accident = Hazard::builder("accident")
        .cut_set(
            "defective indicator in flight",
            [
                constant(2e-4)?, // P(indicator defective at check time)
                p_escape,
                constant(5e-2)?, // P(bad reading becomes catastrophic)
            ],
        )
        .build();
    let grounding = Hazard::builder("grounding")
        .cut_set("false rejection", [p_reject])
        .build();

    // One accident ≙ 2 000 000 groundings (lives vs delays).
    let model = SafetyModel::new(space)
        .hazard(accident, 2_000_000.0)
        .hazard(grounding, 1.0);

    let optimum = SafetyOptimizer::new(&model).run()?;
    println!("{optimum}");
    let t_star = optimum.point().value("tolerance").unwrap();
    println!(
        "accident probability at t* : {:.3e}",
        optimum.hazard_probabilities()[0]
    );
    println!(
        "grounding probability at t*: {:.3e}",
        optimum.hazard_probabilities()[1]
    );

    // Sweep the tolerance to show the trade-off curve (the "middle value"
    // argument of the paper, made quantitative).
    println!("\ntolerance sweep (cost per check):");
    let sweep = sensitivity::sweep(&model, tol, &[t_star], 9)?;
    for p in &sweep.points {
        let marker = if (p.value - t_star).abs() < 1.3 {
            "  <- optimum region"
        } else {
            ""
        };
        println!(
            "  tol = {:5.2} kt   cost = {:9.4}   P(acc) = {:.2e}   P(grd) = {:.2e}{}",
            p.value, p.cost, p.hazard_probabilities[0], p.hazard_probabilities[1], marker
        );
    }
    Ok(())
}
