//! The paper's INHIBIT-gate example (Sect. II-D.1) made concrete: a
//! cooling unit whose failure "is only dangerous if the system which has
//! to be cooled is working", with the **maintenance interval** as the free
//! parameter (one of the paper's own examples of a free parameter).
//!
//! The fault tree is written in the crate's text format, parsed, and
//! bridged into a parameterized safety model:
//!
//! * the cooling pump wears out (Weibull) — a longer maintenance interval
//!   means a higher failure probability at any moment;
//! * the INHIBIT condition "reactor running" carries a constraint
//!   probability (the duty cycle);
//! * maintenance itself causes production loss, so over-frequent service
//!   is penalized through a second hazard.
//!
//! Run with: `cargo run --example cooling_maintenance`

use safety_optimization::fta::parse::parse;
use safety_optimization::fta::render::to_dot;
use safety_optimization::safeopt::model::{Hazard, SafetyModel};
use safety_optimization::safeopt::optimize::SafetyOptimizer;
use safety_optimization::safeopt::param::ParameterSpace;
use safety_optimization::safeopt::pprob::{constant, from_fn};
use safety_optimization::stats::dist::{ContinuousDistribution, Weibull};

const OVERHEAT_TREE: &str = r#"
tree Overheat
basic PumpWearOut
basic PowerSupplyFails  p=2e-5
cond  ReactorRunning    p=0.7
CoolingFails := or(PumpWearOut, PowerSupplyFails)
Overheat     := inhibit(CoolingFails | ReactorRunning)
top Overheat
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the fault tree and inspect it.
    let tree = parse(OVERHEAT_TREE)?;
    let mcs = tree.minimal_cut_sets()?;
    println!(
        "fault tree {:?} with {} minimal cut sets:",
        tree.name(),
        mcs.len()
    );
    for cs in mcs.iter() {
        println!("  {{{}}}", cs.names(&tree).join(", "));
    }
    println!(
        "\nGraphviz available via render::to_dot ({} bytes)",
        to_dot(&tree)?.len()
    );

    // 2. Parameterize: the pump's wear-out depends on the maintenance
    // interval (hours between services). Weibull shape 2.2 = aging.
    let mut space = ParameterSpace::new();
    let interval = space.parameter_with_unit("maintenance_interval", 50.0, 5000.0, "h")?;
    let wearout = Weibull::new(2.2, 4000.0)?;
    let duty_cycle = 0.7;

    let overheat = Hazard::from_fault_tree(&tree, |leaf| {
        let name = tree.node(tree.leaf(leaf)).name().to_string();
        Ok(match name.as_str() {
            // Mean failure probability over a service period of length T:
            // (1/T)∫₀ᵀ F(t) dt, cheaply bounded by F(T/2)..F(T); we use
            // the mid-period value F(T/2) as the representative state.
            "PumpWearOut" => from_fn("pump wear-out", move |v| {
                let t = v.get(interval).unwrap_or(50.0);
                wearout.cdf(0.5 * t)
            }),
            "PowerSupplyFails" => constant(2e-5)?,
            "ReactorRunning" => constant(duty_cycle)?,
            other => panic!("unmapped leaf {other}"),
        })
    })?;

    // Production-loss "hazard": each service takes 8 h of downtime, so the
    // downtime fraction is 8/T — modelled as the per-period probability of
    // an (economic) outage event.
    let outage = Hazard::builder("maintenance downtime")
        .cut_set(
            "planned outage",
            [from_fn("downtime fraction", move |v| {
                let t = v.get(interval).unwrap_or(50.0);
                (8.0 / t).clamp(0.0, 1.0)
            })],
        )
        .build();

    // Weights: an overheat event costs 10 000 units, one service period
    // of downtime costs 200 units.
    let model = SafetyModel::new(space)
        .hazard(overheat, 10_000.0)
        .hazard(outage.clone(), 200.0);

    // 3. Optimize the maintenance interval.
    let optimum = SafetyOptimizer::new(&model).run()?;
    println!("\n{optimum}");
    let t_star = optimum.point().value("maintenance_interval").unwrap();
    println!(
        "service every {:.0} h: P(overheat) = {:.3e}, downtime fraction = {:.4}",
        t_star,
        optimum.hazard_probabilities()[0],
        optimum.hazard_probabilities()[1],
    );

    // 4. The constraint probability at work: a reactor running 24/7
    // (duty cycle 1.0) needs more frequent service.
    let always_on = Hazard::from_fault_tree(&tree, |leaf| {
        let name = tree.node(tree.leaf(leaf)).name().to_string();
        Ok(match name.as_str() {
            "PumpWearOut" => from_fn("pump wear-out", move |v| {
                let t = v.get(interval).unwrap_or(50.0);
                wearout.cdf(0.5 * t)
            }),
            "PowerSupplyFails" => constant(2e-5)?,
            "ReactorRunning" => constant(1.0)?,
            other => panic!("unmapped leaf {other}"),
        })
    })?;
    let mut space2 = ParameterSpace::new();
    let _ = space2.parameter_with_unit("maintenance_interval", 50.0, 5000.0, "h")?;
    let model_24_7 = SafetyModel::new(space2)
        .hazard(always_on, 10_000.0)
        .hazard(outage, 200.0);
    let optimum_24_7 = SafetyOptimizer::new(&model_24_7).run()?;
    let t_24_7 = optimum_24_7.point().value("maintenance_interval").unwrap();
    println!(
        "\nwith a 24/7 duty cycle the optimal interval shrinks: {:.0} h -> {:.0} h",
        t_star, t_24_7
    );
    assert!(t_24_7 < t_star);
    Ok(())
}
