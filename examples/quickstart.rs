//! Quickstart: safety optimization in ~40 lines.
//!
//! A system with one free parameter (a watchdog timeout) and two opposed
//! hazards: set the timeout too short and healthy operations get killed
//! (outage); too long and a hung safety-critical task goes unnoticed
//! (accident). Safety optimization finds the timeout minimizing the mean
//! cost.
//!
//! Run with: `cargo run --example quickstart`

use safety_optimization::safeopt::model::{Hazard, SafetyModel};
use safety_optimization::safeopt::optimize::{ConfigurationComparison, SafetyOptimizer};
use safety_optimization::safeopt::param::ParameterSpace;
use safety_optimization::safeopt::pprob::{constant, exposure, overtime};
use safety_optimization::stats::dist::TruncatedNormal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One free parameter: the watchdog timeout, 1..120 seconds.
    let mut space = ParameterSpace::new();
    let timeout = space.parameter_with_unit("timeout", 1.0, 120.0, "s")?;

    // Healthy task completion time: normal(8 s, 4 s), truncated at 0.
    // The accident path: a hung task stays undetected for the whole
    // timeout, and the physical process tolerates it only sometimes.
    let completion = TruncatedNormal::lower_bounded(8.0, 4.0, 0.0)?;
    let accident = Hazard::builder("accident")
        .cut_set(
            "hang undetected",
            [
                constant(1e-5)?,         // P(task hangs) per mission
                exposure(0.02, timeout), // P(process damage grows with timeout)
            ],
        )
        .build();

    // The outage path: a healthy-but-slow task is killed by the watchdog.
    let outage = Hazard::builder("outage")
        .cut_set("healthy task killed", [overtime(completion, timeout)])
        .build();

    // An accident costs 50 000 outages.
    let model = SafetyModel::new(space)
        .hazard(accident, 50_000.0)
        .hazard(outage, 1.0);

    let optimum = SafetyOptimizer::new(&model).run()?;
    println!("{optimum}");

    // Compare against a naive 10-second default.
    let cmp = ConfigurationComparison::compute(&model, &[10.0], optimum.point().values())?;
    print!("{cmp}");
    println!(
        "cost improvement over the 10 s default: {:.1} %",
        100.0 * cmp.cost_improvement()
    );
    Ok(())
}
