//! # Safety Optimization
//!
//! A Rust implementation of **safety optimization** — the combination of
//! fault tree analysis (FTA) and mathematical optimization introduced by
//! Frank Ortmeier and Wolfgang Reif in *"Safety Optimization: A
//! combination of fault tree analysis and optimization techniques"*
//! (DSN 2004) — together with every substrate it runs on and the paper's
//! complete Elbtunnel case study.
//!
//! ## The method
//!
//! 1. **FTA** ([`fta`]): model each hazard as a fault tree, extract its
//!    minimal cut sets (MOCUS / bottom-up / BDD engines).
//! 2. **Generalized quantification** ([`safeopt`]): replace the constant
//!    failure probabilities of classical quantitative FTA with
//!    *parameterized probabilities* — functions of free system parameters
//!    — and multiply in *constraint probabilities* for the environmental
//!    conditions of INHIBIT gates.
//! 3. **Cost function**: weigh each hazard with its (monetary) cost and
//!    form `f_cost(X) = Σᵢ Costᵢ · P(Hᵢ)(X)`.
//! 4. **Optimization** ([`optim`]): minimize `f_cost` over the compact
//!    parameter domain; the arg-min is the optimal system configuration.
//!
//! ## Crates
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`safeopt`] | The method: parameters, probability expressions, hazard models, the optimizer front-end, sensitivity / surface / Pareto analysis |
//! | [`fta`] | Fault trees, minimal cut sets, BDDs, quantification, importance measures, text format |
//! | [`optim`] | Grid / golden-section / Brent / Nelder–Mead / pattern-search / gradient / annealing / differential-evolution minimizers over box domains |
//! | [`stats`] | Distributions, special functions, quadrature, Monte-Carlo estimation |
//! | [`elbtunnel`] | The paper's case study: calibrated analytic model, fault trees, and a discrete-event simulator of the height control |
//! | [`telemetry`] | Observability: process-global counters, histograms, and spans behind the `SAFETY_OPT_TELEMETRY` mode switch |
//!
//! ## Quick start
//!
//! ```
//! use safety_optimization::elbtunnel::analytic::ElbtunnelModel;
//! use safety_optimization::safeopt::optimize::SafetyOptimizer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ElbtunnelModel::paper().build()?;
//! let optimum = SafetyOptimizer::new(&model).run()?;
//! println!("{optimum}");
//! // Paper Sect. IV-C.2: ≈ 19 min and ≈ 15.6 min.
//! assert!((optimum.point().value("timer1").unwrap() - 19.0).abs() < 1.0);
//! assert!((optimum.point().value("timer2").unwrap() - 15.6).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use safety_opt_core as safeopt;
pub use safety_opt_elbtunnel as elbtunnel;
pub use safety_opt_engine as engine;
pub use safety_opt_fta as fta;
pub use safety_opt_optim as optim;
pub use safety_opt_stats as stats;
pub use safety_opt_telemetry as telemetry;
