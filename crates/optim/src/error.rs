use std::fmt;

/// Error type for optimization operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// An interval bound pair was invalid (non-finite or `lo >= hi`).
    InvalidInterval {
        /// Rejected lower bound.
        lo: f64,
        /// Rejected upper bound.
        hi: f64,
    },
    /// The algorithm supports only a specific dimensionality.
    DimensionMismatch {
        /// What the algorithm expected (e.g. `"exactly 1 dimension"`).
        expected: &'static str,
        /// Dimensionality of the supplied domain.
        got: usize,
    },
    /// A configuration knob was set to an unusable value.
    InvalidConfig {
        /// Name of the offending option.
        option: &'static str,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// Every evaluated point returned NaN/∞ — there is no best point to
    /// report.
    NoFiniteValue {
        /// Number of points that were evaluated.
        evaluations: u64,
    },
    /// The domain has zero dimensions.
    EmptyDomain,
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::InvalidInterval { lo, hi } => {
                write!(
                    f,
                    "invalid interval [{lo}, {hi}]: bounds must be finite with lo < hi"
                )
            }
            OptimError::DimensionMismatch { expected, got } => {
                write!(f, "algorithm requires {expected}, domain has {got}")
            }
            OptimError::InvalidConfig {
                option,
                requirement,
            } => write!(f, "invalid configuration for {option}: {requirement}"),
            OptimError::NoFiniteValue { evaluations } => write!(
                f,
                "objective returned no finite value in {evaluations} evaluations"
            ),
            OptimError::EmptyDomain => write!(f, "domain must have at least one dimension"),
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        let e = OptimError::InvalidInterval { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains("[2, 1]"));
        let e = OptimError::DimensionMismatch {
            expected: "exactly 1 dimension",
            got: 3,
        };
        assert!(e.to_string().contains("exactly 1 dimension"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimError>();
    }
}
