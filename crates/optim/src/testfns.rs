//! Standard optimization test functions.
//!
//! Shared by the unit tests, property tests, and the benchmark harness so
//! that every optimizer is exercised on the same well-understood
//! landscapes. All functions accept any dimensionality unless noted.

/// Sphere function `Σ xᵢ²` — convex, minimum 0 at the origin.
pub fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Rosenbrock's banana `Σ 100 (x_{i+1} − xᵢ²)² + (1 − xᵢ)²` —
/// narrow curved valley, minimum 0 at `(1, …, 1)`.
pub fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

/// Rastrigin's function `10 n + Σ xᵢ² − 10 cos(2π xᵢ)` — highly
/// multimodal, global minimum 0 at the origin.
pub fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

/// Himmelblau's function (2-D only) — four global minima of value 0.
///
/// # Panics
///
/// Panics if `x.len() != 2`.
pub fn himmelblau(x: &[f64]) -> f64 {
    assert_eq!(x.len(), 2, "himmelblau is 2-D");
    (x[0] * x[0] + x[1] - 11.0).powi(2) + (x[0] + x[1] * x[1] - 7.0).powi(2)
}

/// A smooth asymmetric 1-D unimodal function with minimum at `x = 2`:
/// `(x − 2)² + 0.5 (x − 2)⁴`.
pub fn unimodal_1d(x: &[f64]) -> f64 {
    let d = x[0] - 2.0;
    d * d + 0.5 * d.powi(4)
}

/// Booth function (2-D only) — convex-ish bowl, minimum 0 at `(1, 3)`.
///
/// # Panics
///
/// Panics if `x.len() != 2`.
pub fn booth(x: &[f64]) -> f64 {
    assert_eq!(x.len(), 2, "booth is 2-D");
    (x[0] + 2.0 * x[1] - 7.0).powi(2) + (2.0 * x[0] + x[1] - 5.0).powi(2)
}

/// A cost-function-shaped landscape mimicking the Elbtunnel tradeoff:
/// a steep decreasing tail-probability term plus a slowly increasing
/// exposure term, per dimension. Minimum near `t ≈ 20`, strictly inside
/// `[5, 30]ⁿ`.
pub fn safety_tradeoff(x: &[f64]) -> f64 {
    x.iter()
        .map(|&t| 1e5 * (-(t - 4.0)).exp() + (1.0 - (-0.13 * t).exp()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minima_are_where_advertised() {
        assert_eq!(sphere(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(rosenbrock(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(rastrigin(&[0.0, 0.0]), 0.0);
        assert!(himmelblau(&[3.0, 2.0]).abs() < 1e-12);
        assert_eq!(unimodal_1d(&[2.0]), 0.0);
        assert_eq!(booth(&[1.0, 3.0]), 0.0);
    }

    #[test]
    fn functions_are_positive_away_from_minima() {
        assert!(sphere(&[1.0]) > 0.0);
        assert!(rosenbrock(&[0.0, 0.0]) > 0.0);
        assert!(rastrigin(&[0.5]) > 0.0);
        assert!(unimodal_1d(&[3.0]) > 0.0);
    }

    #[test]
    fn safety_tradeoff_has_interior_minimum() {
        // Value at both boundary points exceeds the interior value.
        let interior = safety_tradeoff(&[20.0]);
        assert!(safety_tradeoff(&[5.0]) > interior);
        assert!(safety_tradeoff(&[30.0]) > interior);
    }
}
