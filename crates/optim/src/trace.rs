//! Live convergence observation: the [`TraceHook`] observer.
//!
//! [`crate::OptimizationOutcome::trace`] is a *post-hoc* record — it only
//! exists after the run returns, and only when the algorithm was
//! configured to record it. A [`TraceHook`] is the *live* counterpart:
//! an observer invoked at every iteration boundary with the best-so-far
//! [`TracePoint`], plus the restart index when the run is wrapped in a
//! [`crate::multistart::MultiStart`]. Dashboards, progress bars, and
//! telemetry exporters hang off this without touching the algorithms.
//!
//! Hooks fire **independently** of the `record_trace` flags — observing
//! a run does not force it to allocate a trace vector — and they observe
//! only: a hook cannot influence iterates, so wiring one up preserves
//! every bit-identity contract.

use crate::TracePoint;
use std::sync::Arc;

/// Observer of per-iteration optimizer progress.
///
/// `on_iteration` is called after each outer iteration of the hosting
/// algorithm with the same values a recorded trace entry would carry.
/// `restart` is the [`crate::multistart::MultiStart`] restart index
/// (`0` for bare minimizers). Implementations must be cheap and must
/// not panic; they run inline in the optimization loop.
pub trait TraceHook: Send + Sync {
    /// Observes one iteration boundary.
    fn on_iteration(&self, restart: u64, point: &TracePoint);
}

/// A shareable, optional [`TraceHook`] slot, as stored in algorithm
/// configs. The default is empty (no observation, no overhead beyond a
/// branch).
///
/// Equality is identity: two handles are equal when they are both empty
/// or share the same hook allocation — that keeps derived `PartialEq`
/// on algorithm configs meaningful without requiring hooks themselves
/// to be comparable.
#[derive(Default, Clone)]
pub struct HookHandle(Option<Arc<dyn TraceHook>>);

impl HookHandle {
    /// An empty handle (no observer).
    pub const fn none() -> Self {
        Self(None)
    }

    /// Wraps a hook.
    pub fn new(hook: Arc<dyn TraceHook>) -> Self {
        Self(Some(hook))
    }

    /// `true` when a hook is installed.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Notifies the hook, if any.
    #[inline]
    pub fn emit(&self, restart: u64, point: &TracePoint) {
        if let Some(hook) = &self.0 {
            hook.on_iteration(restart, point);
        }
    }

    /// A handle that reports `restart` instead of whatever the hosting
    /// algorithm passes — how [`crate::multistart::MultiStart`] tags
    /// each inner run with its restart index while the inner algorithm
    /// keeps passing `0`.
    pub fn with_restart(&self, restart: u64) -> Self {
        match &self.0 {
            Some(hook) => Self(Some(Arc::new(RestartTag {
                restart,
                inner: Arc::clone(hook),
            }))),
            None => Self(None),
        }
    }
}

impl std::fmt::Debug for HookHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_set() {
            "HookHandle(set)"
        } else {
            "HookHandle(none)"
        })
    }
}

impl PartialEq for HookHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Substitutes a fixed restart index into every observation.
struct RestartTag {
    restart: u64,
    inner: Arc<dyn TraceHook>,
}

impl TraceHook for RestartTag {
    fn on_iteration(&self, _restart: u64, point: &TracePoint) {
        self.inner.on_iteration(self.restart, point);
    }
}

/// A [`TraceHook`] that collects every observation into a mutex-guarded
/// vector — the simplest useful observer, handy in tests and reports.
#[derive(Debug, Default)]
pub struct CollectingHook {
    points: std::sync::Mutex<Vec<(u64, TracePoint)>>,
}

impl CollectingHook {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything observed so far, as `(restart, point)` pairs in
    /// observation order.
    pub fn collected(&self) -> Vec<(u64, TracePoint)> {
        self.points.lock().expect("hook poisoned").clone()
    }
}

impl TraceHook for CollectingHook {
    fn on_iteration(&self, restart: u64, point: &TracePoint) {
        self.points
            .lock()
            .expect("hook poisoned")
            .push((restart, point.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(i: u64) -> TracePoint {
        TracePoint {
            iteration: i,
            evaluations: 2 * i,
            best_value: -(i as f64),
        }
    }

    #[test]
    fn empty_handle_is_inert_and_equal_to_itself() {
        let h = HookHandle::none();
        assert!(!h.is_set());
        h.emit(0, &pt(1)); // no-op, must not panic
        assert_eq!(h, HookHandle::default());
        assert!(!h.with_restart(3).is_set());
    }

    #[test]
    fn collecting_hook_sees_emissions() {
        let hook = Arc::new(CollectingHook::new());
        let h = HookHandle::new(hook.clone());
        assert!(h.is_set());
        h.emit(0, &pt(1));
        h.emit(0, &pt(2));
        let got = hook.collected();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1.iteration, 2);
    }

    #[test]
    fn restart_tag_overrides_index() {
        let hook = Arc::new(CollectingHook::new());
        let h = HookHandle::new(hook.clone());
        let tagged = h.with_restart(7);
        tagged.emit(0, &pt(1));
        assert_eq!(hook.collected()[0].0, 7);
    }

    #[test]
    fn handle_equality_is_identity() {
        let hook: Arc<dyn TraceHook> = Arc::new(CollectingHook::new());
        let a = HookHandle::new(Arc::clone(&hook));
        let b = HookHandle::new(Arc::clone(&hook));
        let c = HookHandle::new(Arc::new(CollectingHook::new()));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, HookHandle::none());
    }
}
