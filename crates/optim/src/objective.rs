use std::cell::Cell;

/// An objective function `f : ℝⁿ → ℝ` to minimize.
///
/// Implemented for all `Fn(&[f64]) -> f64` closures, so the common case is
/// simply:
///
/// ```
/// use safety_opt_optim::Objective;
///
/// let f = |x: &[f64]| (x[0] - 1.0).powi(2);
/// assert_eq!(f.eval(&[3.0]), 4.0);
/// ```
///
/// Returning NaN or ±∞ is allowed and means "this point is infeasible";
/// optimizers treat such points as worse than every finite value.
pub trait Objective {
    /// Evaluates the objective at `x`.
    fn eval(&self, x: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64> Objective for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

impl Objective for dyn Fn(&[f64]) -> f64 + '_ {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// An objective that can also produce its gradient analytically.
///
/// Gradient-based methods ([`GradientDescent`]) interrogate this trait
/// through their `minimize_differentiable` entry points: one
/// `value_grad` call replaces the `2·dim` objective evaluations of a
/// central-difference gradient — the hook the engine's reverse-mode
/// adjoint tape sweep plugs into. The plain [`Minimizer`] entry points
/// are unchanged and keep using finite differences.
///
/// Implementations must write exactly `x.len()` partials into `grad`.
/// Non-finite values (value or any partial) mean "no usable gradient
/// here"; callers fall back to finite differences or treat the point as
/// infeasible, exactly as for [`Objective`].
///
/// [`GradientDescent`]: crate::gradient::GradientDescent
/// [`Minimizer`]: crate::Minimizer
pub trait DifferentiableObjective: Objective {
    /// Writes `∇f(x)` into `grad` (length `x.len()`) and returns
    /// `f(x)`.
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64;
}

/// Adapter presenting a [`DifferentiableObjective`] as a plain
/// [`Objective`] without trait-object upcasting (MSRV-friendly); used
/// by gradient consumers that also need value-only evaluations.
pub(crate) struct ValueOnly<'a>(pub &'a dyn DifferentiableObjective);

impl Objective for ValueOnly<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.eval(x)
    }
}

/// An objective that can evaluate a whole batch of points at once.
///
/// Population-based and exhaustive methods ([`GridSearch`],
/// [`DifferentialEvolution`], [`SimulatedAnnealing`]) expose
/// `minimize_batch` entry points that gather every candidate of a
/// generation and hand them over in one call — the hook that compiled,
/// parallel evaluation backends (the `safety_opt_engine` tape) plug
/// into. Any `Fn(&[f64]) -> f64 + Sync` closure is a valid (pointwise)
/// batch objective.
///
/// Implementations must write exactly one value per input point, in
/// order; non-finite values mean "infeasible" exactly as for
/// [`Objective`].
///
/// [`GridSearch`]: crate::grid::GridSearch
/// [`DifferentialEvolution`]: crate::de::DifferentialEvolution
/// [`SimulatedAnnealing`]: crate::anneal::SimulatedAnnealing
pub trait BatchObjective: Sync {
    /// Evaluates every point of `points`, overwriting `out` with one
    /// value per point.
    fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>);
}

impl<F: Fn(&[f64]) -> f64 + Sync> BatchObjective for F {
    fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.extend(points.iter().map(|p| self(p)));
    }
}

impl std::fmt::Debug for dyn BatchObjective + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BatchObjective")
    }
}

/// A batch objective that can also produce analytic gradients for a
/// whole batch of points at once.
///
/// The gradient-descent lockstep driver
/// ([`MultiStart::minimize_batch`]) gathers every live restart's
/// current iterate into one `eval_grad_batch` call — the hook the
/// engine's lane-blocked SoA adjoint sweep plugs into, so a fleet of
/// restarts pays one batched forward + backward sweep per round instead
/// of `starts` scattered `value_grad` calls.
///
/// Implementations must write exactly one value per point into `values`
/// and `points.len() · dim` partials into `grads`, row-major in point
/// order. Non-finite entries mean "no usable gradient here", exactly as
/// for [`DifferentiableObjective`]; the caller falls back to finite
/// differences at that point.
///
/// [`MultiStart::minimize_batch`]: crate::multistart::MultiStart::minimize_batch
pub trait BatchDifferentiableObjective: BatchObjective {
    /// Evaluates value **and** gradient at every point, overwriting
    /// `values` (one per point) and `grads` (row-major,
    /// `points.len() × dim`).
    fn eval_grad_batch(&self, points: &[Vec<f64>], values: &mut Vec<f64>, grads: &mut Vec<f64>);
}

impl std::fmt::Debug for dyn BatchDifferentiableObjective + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BatchDifferentiableObjective")
    }
}

/// Evaluation bookkeeping shared by the `minimize_batch` entry points:
/// counts evaluations and tracks the best finite point seen.
#[derive(Debug, Default)]
pub(crate) struct BatchTracker {
    pub evaluations: u64,
    pub best_x: Option<Vec<f64>>,
    pub best_value: f64,
}

impl BatchTracker {
    pub fn new() -> Self {
        Self {
            evaluations: 0,
            best_x: None,
            best_value: f64::INFINITY,
        }
    }

    /// Folds one evaluated batch into the running best.
    pub fn observe(&mut self, points: &[Vec<f64>], values: &[f64]) {
        debug_assert_eq!(points.len(), values.len());
        self.evaluations += values.len() as u64;
        for (p, &v) in points.iter().zip(values) {
            if v.is_finite() && (self.best_x.is_none() || v < self.best_value) {
                self.best_value = v;
                self.best_x = Some(p.clone());
            }
        }
    }
}

/// Wrapper that counts evaluations of an inner objective.
///
/// Every algorithm in this crate reports evaluation counts through its
/// [`OptimizationOutcome`](crate::OptimizationOutcome); `CountingObjective`
/// is also exported for callers who want to meter objectives across
/// multiple optimizer runs (e.g. the benchmark harness's
/// evaluations-per-algorithm table).
///
/// ```
/// use safety_opt_optim::{CountingObjective, Objective};
///
/// let f = |x: &[f64]| x[0] * x[0];
/// let counted = CountingObjective::new(&f);
/// counted.eval(&[1.0]);
/// counted.eval(&[2.0]);
/// assert_eq!(counted.count(), 2);
/// ```
#[derive(Debug)]
pub struct CountingObjective<'a> {
    inner: &'a dyn Objective,
    count: Cell<u64>,
}

impl<'a> CountingObjective<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a dyn Objective) -> Self {
        Self {
            inner,
            count: Cell::new(0),
        }
    }

    /// Number of evaluations so far.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Records `n` evaluations performed outside [`eval`](Objective::eval)
    /// — e.g. the forward tape sweep embedded in an analytic
    /// [`DifferentiableObjective::value_grad`] call — so reported
    /// evaluation counts stay comparable across gradient sources.
    pub fn record(&self, n: u64) {
        self.count.set(self.count.get() + n);
    }

    /// Evaluates and maps non-finite results to `f64::INFINITY` so that
    /// comparisons stay total.
    pub fn eval_penalized(&self, x: &[f64]) -> f64 {
        let v = self.eval(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }
}

impl Objective for CountingObjective<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        self.count.set(self.count.get() + 1);
        self.inner.eval(x)
    }
}

impl std::fmt::Debug for dyn Objective + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Objective")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_objective() {
        fn takes_dyn(f: &dyn Objective) -> f64 {
            f.eval(&[2.0, 3.0])
        }
        let f = |x: &[f64]| x[0] + x[1];
        assert_eq!(takes_dyn(&f), 5.0);
    }

    #[test]
    fn counting_wrapper_counts() {
        let f = |x: &[f64]| x[0];
        let c = CountingObjective::new(&f);
        assert_eq!(c.count(), 0);
        for i in 0..7 {
            c.eval(&[i as f64]);
        }
        assert_eq!(c.count(), 7);
    }

    #[test]
    fn penalized_eval_maps_non_finite_to_infinity() {
        let f = |x: &[f64]| if x[0] < 0.0 { f64::NAN } else { x[0] };
        let c = CountingObjective::new(&f);
        assert_eq!(c.eval_penalized(&[-1.0]), f64::INFINITY);
        assert_eq!(c.eval_penalized(&[4.0]), 4.0);
        assert_eq!(c.count(), 2);
    }
}
