/// Why an optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum TerminationReason {
    /// Function-value or simplex/step-size tolerance was reached.
    Converged,
    /// The iteration budget ran out before the tolerance was met.
    MaxIterations,
    /// Every point of an exhaustive method (grid search) was visited.
    Exhausted,
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TerminationReason::Converged => "converged",
            TerminationReason::MaxIterations => "max iterations reached",
            TerminationReason::Exhausted => "domain exhausted",
        };
        f.write_str(s)
    }
}

/// One entry of an optimization trace: the best-so-far after an iteration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePoint {
    /// Iteration index (algorithm-specific granularity).
    pub iteration: u64,
    /// Cumulative objective evaluations at this point.
    pub evaluations: u64,
    /// Best objective value found so far.
    pub best_value: f64,
}

/// The result of a minimization run.
///
/// `best_x`/`best_value` always describe a point that was actually
/// evaluated inside the domain. `converged()` distinguishes a tolerance
/// stop from a budget stop.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OptimizationOutcome {
    /// Argument of the best evaluated point.
    pub best_x: Vec<f64>,
    /// Objective value at [`best_x`](Self::best_x).
    pub best_value: f64,
    /// Total objective evaluations.
    pub evaluations: u64,
    /// Algorithm iterations (outer loop count).
    pub iterations: u64,
    /// Why the run stopped.
    pub termination: TerminationReason,
    /// Optional per-iteration convergence trace (empty unless the
    /// algorithm was configured to record one).
    pub trace: Vec<TracePoint>,
}

impl OptimizationOutcome {
    /// `true` if the run stopped because a tolerance was met (or the
    /// domain was fully enumerated), rather than by exhausting budget.
    pub fn converged(&self) -> bool {
        matches!(
            self.termination,
            TerminationReason::Converged | TerminationReason::Exhausted
        )
    }
}

impl std::fmt::Display for OptimizationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "f* = {:.6e} at {:?} ({} evals, {} iters, {})",
            self.best_value, self.best_x, self.evaluations, self.iterations, self.termination
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_classification() {
        let mk = |t| OptimizationOutcome {
            best_x: vec![0.0],
            best_value: 0.0,
            evaluations: 1,
            iterations: 1,
            termination: t,
            trace: Vec::new(),
        };
        assert!(mk(TerminationReason::Converged).converged());
        assert!(mk(TerminationReason::Exhausted).converged());
        assert!(!mk(TerminationReason::MaxIterations).converged());
    }

    #[test]
    fn display_mentions_value_and_reason() {
        let o = OptimizationOutcome {
            best_x: vec![1.0, 2.0],
            best_value: 0.125,
            evaluations: 10,
            iterations: 3,
            termination: TerminationReason::Converged,
            trace: Vec::new(),
        };
        let s = o.to_string();
        assert!(s.contains("1.25"));
        assert!(s.contains("converged"));
    }
}
