//! Projected gradient descent with numerical or analytic gradients.
//!
//! The paper calls the gradient method "the most simple" approach to the
//! resulting nonlinear program: *"finds local minima by calculating
//! gradients iteratively and always following the steepest descent."*
//! This implementation uses Armijo backtracking line search and
//! projection onto the box after every step. Gradients come from one of
//! two sources sharing one descent loop:
//!
//! * the [`Minimizer`] entry point builds **central-difference**
//!   gradients (`2·dim` objective evaluations per iteration) — the
//!   original behavior, unchanged;
//! * [`GradientDescent::minimize_differentiable`] asks the objective
//!   for its **analytic** gradient
//!   ([`crate::DifferentiableObjective::value_grad`], e.g. the engine's
//!   reverse-mode adjoint tape sweep — one evaluation-equivalent per
//!   iteration instead of `2·dim`), falling back to central differences
//!   at any point where the analytic gradient comes back non-finite.

use crate::domain::BoxDomain;
use crate::objective::ValueOnly;
use crate::trace::HookHandle;
use crate::{
    CountingObjective, DifferentiableObjective, Minimizer, Objective, OptimError,
    OptimizationOutcome, Result, TerminationReason, TracePoint,
};

/// Where the descent loop gets its gradients.
enum GradSource<'a> {
    /// Central differences over the (counted) objective.
    CentralDiff,
    /// Analytic gradients from the objective itself, with a
    /// central-difference fallback at non-finite points.
    Analytic(&'a dyn DifferentiableObjective),
}

/// Projected-gradient-descent configuration.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::gradient::GradientDescent;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
/// let out = GradientDescent::default()
///     .minimize(&safety_opt_optim::testfns::sphere, &domain)?;
/// assert!(out.best_value < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientDescent {
    /// Relative finite-difference step for the numerical gradient.
    fd_step: f64,
    /// Gradient-norm tolerance (projected gradient).
    g_tol: f64,
    /// Step-size tolerance relative to domain width.
    x_tol: f64,
    max_iterations: u64,
    /// Initial line-search step as a fraction of domain width.
    initial_step: f64,
    start: Option<Vec<f64>>,
    record_trace: bool,
    hook: HookHandle,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            fd_step: 1e-6,
            g_tol: 1e-10,
            x_tol: 1e-12,
            max_iterations: 5000,
            initial_step: 0.1,
            start: None,
            record_trace: false,
            hook: HookHandle::none(),
        }
    }
}

impl GradientDescent {
    /// Creates a minimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative central-difference step.
    pub fn fd_step(mut self, h: f64) -> Self {
        self.fd_step = h;
        self
    }

    /// Sets the projected-gradient-norm stopping tolerance.
    pub fn g_tol(mut self, tol: f64) -> Self {
        self.g_tol = tol;
        self
    }

    /// Sets the relative step-size stopping tolerance.
    pub fn x_tol(mut self, tol: f64) -> Self {
        self.x_tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Starts from `x0` instead of the domain center.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Installs a live per-iteration observer (see [`crate::TraceHook`]);
    /// fires whether or not a trace is recorded.
    pub fn with_trace_hook(mut self, hook: std::sync::Arc<dyn crate::TraceHook>) -> Self {
        self.hook = HookHandle::new(hook);
        self
    }

    /// Replaces the hook slot wholesale (restart tagging in multi-start).
    pub(crate) fn hook_handle(mut self, hook: HookHandle) -> Self {
        self.hook = hook;
        self
    }

    fn validate(&self, domain: &BoxDomain) -> Result<()> {
        for (option, v) in [
            ("fd_step", self.fd_step),
            ("g_tol", self.g_tol),
            ("x_tol", self.x_tol),
            ("initial_step", self.initial_step),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OptimError::InvalidConfig {
                    option,
                    requirement: "must be finite and > 0",
                });
            }
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        if let Some(x0) = &self.start {
            if x0.len() != domain.dim() {
                return Err(OptimError::DimensionMismatch {
                    expected: "start point matching domain dimension",
                    got: x0.len(),
                });
            }
        }
        Ok(())
    }

    /// Central-difference gradient, with the probe points projected into
    /// the domain (one-sided at the boundary).
    fn gradient(
        &self,
        f: &CountingObjective<'_>,
        domain: &BoxDomain,
        x: &[f64],
        widths: &[f64],
    ) -> Vec<f64> {
        let mut g = vec![0.0; x.len()];
        for i in 0..x.len() {
            let h = (self.fd_step * widths[i]).max(1e-12);
            let iv = domain.interval(i);
            let hi = iv.clamp(x[i] + h);
            let lo = iv.clamp(x[i] - h);
            if hi == lo {
                g[i] = 0.0;
                continue;
            }
            let mut xp = x.to_vec();
            xp[i] = hi;
            let fp = f.eval_penalized(&xp);
            xp[i] = lo;
            let fm = f.eval_penalized(&xp);
            g[i] = (fp - fm) / (hi - lo);
        }
        g
    }

    /// One iteration's gradient from the configured source. The
    /// analytic path costs one recorded evaluation-equivalent (the
    /// forward sweep of the adjoint pass); if it returns any non-finite
    /// component — a kink, a closure failure — the iteration falls back
    /// to the central-difference gradient so the descent stays robust.
    fn iteration_gradient(
        &self,
        f: &CountingObjective<'_>,
        source: &GradSource<'_>,
        domain: &BoxDomain,
        x: &[f64],
        widths: &[f64],
    ) -> Vec<f64> {
        if let GradSource::Analytic(obj) = source {
            let mut g = vec![0.0; x.len()];
            let v = obj.value_grad(x, &mut g);
            f.record(1);
            if v.is_finite() && g.iter().all(|gi| gi.is_finite()) {
                return g;
            }
        }
        self.gradient(f, domain, x, widths)
    }

    /// The shared projected-descent loop under both gradient sources.
    fn run(
        &self,
        f: &CountingObjective<'_>,
        source: GradSource<'_>,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate(domain)?;
        let widths = domain.widths();
        let scale = domain.max_width();

        let mut x = match &self.start {
            Some(p) => domain.project(p),
            None => domain.center(),
        };
        let mut fx = f.eval_penalized(&x);
        let mut step0 = self.initial_step * scale;
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        while iterations < self.max_iterations {
            iterations += 1;
            let g = self.iteration_gradient(f, &source, domain, &x, &widths);
            let g_norm = g.iter().map(|v| v * v).sum::<f64>().sqrt();

            // Projected-gradient convergence test: the step the projection
            // actually allows, not the raw gradient.
            let probe: Vec<f64> = x.iter().zip(&g).map(|(&xi, &gi)| xi - gi).collect();
            let projected = domain.project(&probe);
            let pg_norm = projected
                .iter()
                .zip(&x)
                .map(|(&p, &xi)| (p - xi) * (p - xi))
                .sum::<f64>()
                .sqrt();
            if pg_norm <= self.g_tol || g_norm == 0.0 {
                termination = TerminationReason::Converged;
                break;
            }

            // Armijo backtracking along the normalized descent direction.
            let dir: Vec<f64> = g.iter().map(|&gi| -gi / g_norm).collect();
            let mut step = step0;
            let c1 = 1e-4;
            let mut accepted = false;
            for _ in 0..60 {
                let trial: Vec<f64> = x
                    .iter()
                    .zip(&dir)
                    .map(|(&xi, &di)| xi + step * di)
                    .collect();
                let trial = domain.project(&trial);
                let ft = f.eval_penalized(&trial);
                // Directional derivative along dir is −g_norm.
                if ft <= fx - c1 * step * g_norm {
                    let moved: f64 = trial
                        .iter()
                        .zip(&x)
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    x = trial;
                    fx = ft;
                    accepted = true;
                    // Gentle step growth for the next iteration.
                    step0 = (step * 2.0).min(self.initial_step * scale);
                    if moved <= self.x_tol * scale {
                        termination = TerminationReason::Converged;
                    }
                    break;
                }
                step *= 0.5;
            }
            if self.record_trace || self.hook.is_set() {
                let point = TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: fx,
                };
                self.hook.emit(0, &point);
                if self.record_trace {
                    trace.push(point);
                }
            }
            if !accepted {
                // Line search failed: either converged or the landscape is
                // flat at numerical precision.
                termination = TerminationReason::Converged;
                break;
            }
            if termination == TerminationReason::Converged {
                break;
            }
        }

        if !fx.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: x,
            best_value: fx,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }
}

/// Maps non-finite objective values to `+∞` so comparisons stay total
/// (the state-machine twin of [`CountingObjective::eval_penalized`]).
fn penalize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

/// Which objective answer one restart's state machine awaits.
#[derive(Debug)]
enum GdPhase {
    /// The start point's value.
    Init,
    /// The analytic gradient at the current iterate.
    Grad,
    /// Central-difference probe values (the analytic fallback):
    /// `(coordinate, hi, lo)` per probed dimension, two probes each, in
    /// slot order.
    Fd {
        g: Vec<f64>,
        slots: Vec<(usize, f64, f64)>,
    },
    /// One Armijo backtracking trial value.
    Trial {
        g_norm: f64,
        dir: Vec<f64>,
        step: f64,
        tries: u32,
    },
}

/// Resumable state of one gradient-descent restart, for the lockstep
/// multi-start driver
/// ([`MultiStart::minimize_batch`](crate::multistart::MultiStart::minimize_batch)):
/// the [`GradientDescent`] descent loop unrolled into a state machine
/// whose objective evaluations are requested through
/// [`pending_values`](Self::pending_values) /
/// [`pending_grad`](Self::pending_grad) and answered through
/// [`advance_values`](Self::advance_values) /
/// [`advance_grad`](Self::advance_grad). Every evaluation, every float,
/// and every stopping decision replays the sequential
/// [`minimize_differentiable`](Minimizer::minimize_differentiable) path
/// exactly, so lockstep outcomes are bit-identical to running the
/// restarts one after another (asserted by the multistart equivalence
/// tests).
#[derive(Debug)]
pub(crate) struct GdState {
    cfg: GradientDescent,
    domain: BoxDomain,
    widths: Vec<f64>,
    scale: f64,
    x: Vec<f64>,
    fx: f64,
    step0: f64,
    iterations: u64,
    evals: u64,
    termination: TerminationReason,
    trace: Vec<TracePoint>,
    phase: GdPhase,
    /// Value probes awaited this round (empty in the gradient phase).
    pending: Vec<Vec<f64>>,
    done: bool,
}

impl GdState {
    pub(crate) fn new(config: &GradientDescent, domain: &BoxDomain) -> crate::Result<Self> {
        config.validate(domain)?;
        let x = match &config.start {
            Some(p) => domain.project(p),
            None => domain.center(),
        };
        let pending = vec![x.clone()];
        Ok(Self {
            widths: domain.widths(),
            scale: domain.max_width(),
            step0: config.initial_step * domain.max_width(),
            cfg: config.clone(),
            domain: domain.clone(),
            x,
            fx: f64::INFINITY,
            iterations: 0,
            evals: 0,
            termination: TerminationReason::MaxIterations,
            trace: Vec::new(),
            phase: GdPhase::Init,
            pending,
            done: false,
        })
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Value probes awaited this round (empty while a gradient is
    /// awaited instead).
    pub(crate) fn pending_values(&self) -> &[Vec<f64>] {
        &self.pending
    }

    /// The iterate whose analytic value + gradient is awaited this
    /// round, if the state is in its gradient phase.
    pub(crate) fn pending_grad(&self) -> Option<&[f64]> {
        (!self.done && matches!(self.phase, GdPhase::Grad)).then_some(self.x.as_slice())
    }

    /// Feeds the values of every probe in
    /// [`pending_values`](Self::pending_values), in order, and advances
    /// to the next phase.
    pub(crate) fn advance_values(&mut self, raw: &[f64]) {
        debug_assert_eq!(raw.len(), self.pending.len());
        self.evals += raw.len() as u64;
        match std::mem::replace(&mut self.phase, GdPhase::Init) {
            GdPhase::Init => {
                self.fx = penalize(raw[0]);
                self.pending.clear();
                self.begin_iteration();
            }
            GdPhase::Fd { mut g, slots } => {
                for (j, &(i, hi, lo)) in slots.iter().enumerate() {
                    let fp = penalize(raw[2 * j]);
                    let fm = penalize(raw[2 * j + 1]);
                    g[i] = (fp - fm) / (hi - lo);
                }
                self.pending.clear();
                self.got_gradient(g);
            }
            GdPhase::Trial {
                g_norm,
                dir,
                step,
                tries,
            } => {
                let ft = penalize(raw[0]);
                let trial = self.pending.pop().expect("one pending trial");
                // Directional derivative along dir is −g_norm.
                let c1 = 1e-4;
                if ft <= self.fx - c1 * step * g_norm {
                    let moved: f64 = trial
                        .iter()
                        .zip(&self.x)
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    self.x = trial;
                    self.fx = ft;
                    // Gentle step growth for the next iteration.
                    self.step0 = (step * 2.0).min(self.cfg.initial_step * self.scale);
                    self.end_iteration(true, moved <= self.cfg.x_tol * self.scale);
                } else if tries + 1 >= 60 {
                    // Line search failed: either converged or the
                    // landscape is flat at numerical precision.
                    self.end_iteration(false, false);
                } else {
                    let step = step * 0.5;
                    let next: Vec<f64> = self
                        .x
                        .iter()
                        .zip(&dir)
                        .map(|(&xi, &di)| xi + step * di)
                        .collect();
                    self.pending.push(self.domain.project(&next));
                    self.phase = GdPhase::Trial {
                        g_norm,
                        dir,
                        step,
                        tries: tries + 1,
                    };
                }
            }
            GdPhase::Grad => unreachable!("no value probes pending in the gradient phase"),
        }
    }

    /// Feeds the analytic value + gradient at
    /// [`pending_grad`](Self::pending_grad) and advances: a non-finite
    /// answer falls back to central-difference probes, exactly like the
    /// sequential `iteration_gradient`.
    pub(crate) fn advance_grad(&mut self, value: f64, grad: &[f64]) {
        debug_assert!(matches!(self.phase, GdPhase::Grad));
        // One recorded evaluation-equivalent: the forward sweep embedded
        // in the adjoint pass (the sequential path's `f.record(1)`).
        self.evals += 1;
        if value.is_finite() && grad.iter().all(|g| g.is_finite()) {
            self.got_gradient(grad.to_vec());
            return;
        }
        // Central-difference fallback with the probe points projected
        // into the domain (one-sided at the boundary).
        let mut g = vec![0.0; self.x.len()];
        let mut slots = Vec::new();
        self.pending.clear();
        for (i, gi) in g.iter_mut().enumerate() {
            let h = (self.cfg.fd_step * self.widths[i]).max(1e-12);
            let iv = self.domain.interval(i);
            let hi = iv.clamp(self.x[i] + h);
            let lo = iv.clamp(self.x[i] - h);
            if hi == lo {
                *gi = 0.0;
                continue;
            }
            let mut xp = self.x.clone();
            xp[i] = hi;
            self.pending.push(xp);
            let mut xm = self.x.clone();
            xm[i] = lo;
            self.pending.push(xm);
            slots.push((i, hi, lo));
        }
        if slots.is_empty() {
            self.got_gradient(g);
        } else {
            self.phase = GdPhase::Fd { g, slots };
        }
    }

    /// The aggregated outcome once [`is_done`](Self::is_done).
    pub(crate) fn into_outcome(self) -> crate::Result<OptimizationOutcome> {
        if !self.fx.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: self.evals,
            });
        }
        Ok(OptimizationOutcome {
            best_x: self.x,
            best_value: self.fx,
            evaluations: self.evals,
            iterations: self.iterations,
            termination: self.termination,
            trace: self.trace,
        })
    }

    fn begin_iteration(&mut self) {
        if self.iterations >= self.cfg.max_iterations {
            self.finish(self.termination);
            return;
        }
        self.iterations += 1;
        self.phase = GdPhase::Grad;
    }

    /// Runs the convergence test on a fresh gradient and either stops or
    /// opens the Armijo line search — the float sequence of the
    /// sequential loop body.
    fn got_gradient(&mut self, g: Vec<f64>) {
        let g_norm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        // Projected-gradient convergence test: the step the projection
        // actually allows, not the raw gradient.
        let probe: Vec<f64> = self.x.iter().zip(&g).map(|(&xi, &gi)| xi - gi).collect();
        let projected = self.domain.project(&probe);
        let pg_norm = projected
            .iter()
            .zip(&self.x)
            .map(|(&p, &xi)| (p - xi) * (p - xi))
            .sum::<f64>()
            .sqrt();
        if pg_norm <= self.cfg.g_tol || g_norm == 0.0 {
            self.finish(TerminationReason::Converged);
            return;
        }
        // Armijo backtracking along the normalized descent direction.
        let dir: Vec<f64> = g.iter().map(|&gi| -gi / g_norm).collect();
        let step = self.step0;
        let trial: Vec<f64> = self
            .x
            .iter()
            .zip(&dir)
            .map(|(&xi, &di)| xi + step * di)
            .collect();
        self.pending.push(self.domain.project(&trial));
        self.phase = GdPhase::Trial {
            g_norm,
            dir,
            step,
            tries: 0,
        };
    }

    /// Closes one iteration: trace/hook emission, then stop or continue
    /// — the sequential loop tail exactly (the trace fires after the
    /// line search, never on a convergence-test break).
    fn end_iteration(&mut self, accepted: bool, stalled: bool) {
        if self.cfg.record_trace || self.cfg.hook.is_set() {
            let point = TracePoint {
                iteration: self.iterations,
                evaluations: self.evals,
                best_value: self.fx,
            };
            self.cfg.hook.emit(0, &point);
            if self.cfg.record_trace {
                self.trace.push(point);
            }
        }
        if !accepted || stalled {
            self.finish(TerminationReason::Converged);
        } else {
            self.begin_iteration();
        }
    }

    fn finish(&mut self, termination: TerminationReason) {
        self.termination = termination;
        self.pending.clear();
        self.done = true;
    }
}

impl Minimizer for GradientDescent {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.run(
            &CountingObjective::new(objective),
            GradSource::CentralDiff,
            domain,
        )
    }

    /// Same projected-descent loop, stopping rules, and outcome
    /// reporting as [`minimize`](Minimizer::minimize), but each
    /// iteration's gradient is one `value_grad` call instead of `2·dim`
    /// finite-difference evaluations (with an FD fallback at points
    /// whose analytic gradient comes back non-finite). Reached through
    /// `&dyn Minimizer` by front-ends, so e.g. the safety optimizer's
    /// compiled objective gets adjoint gradients automatically.
    fn minimize_differentiable(
        &self,
        objective: &dyn DifferentiableObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        let value_only = ValueOnly(objective);
        self.run(
            &CountingObjective::new(&value_only),
            GradSource::Analytic(objective),
            domain,
        )
    }

    fn name(&self) -> &'static str {
        "gradient-descent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{booth, sphere};

    #[test]
    fn solves_sphere() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 3]).unwrap();
        let out = GradientDescent::default()
            .minimize(&sphere, &domain)
            .unwrap();
        assert!(out.best_value < 1e-10, "best = {}", out.best_value);
        assert!(out.converged());
    }

    #[test]
    fn solves_booth() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let out = GradientDescent::default()
            .minimize(&booth, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
    }

    #[test]
    fn respects_active_box_constraints() {
        // Minimum of (x+2)² on [0, 5] is the boundary x = 0.
        let domain = BoxDomain::from_bounds(&[(0.0, 5.0)]).unwrap();
        let out = GradientDescent::default()
            .minimize(&|x: &[f64]| (x[0] + 2.0).powi(2), &domain)
            .unwrap();
        assert!(out.best_x[0] < 1e-8, "x = {}", out.best_x[0]);
        assert!(out.converged());
    }

    #[test]
    fn never_evaluates_outside_domain() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0), (2.0, 3.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "outside: {x:?}");
            sphere(x)
        };
        GradientDescent::default().minimize(&f, &domain).unwrap();
    }

    #[test]
    fn flat_function_converges_immediately() {
        let domain = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let out = GradientDescent::default()
            .minimize(&|_: &[f64]| 3.5, &domain)
            .unwrap();
        assert_eq!(out.best_value, 3.5);
        assert!(out.converged());
        assert!(out.iterations <= 2);
    }

    struct QuadWithGrad {
        /// When set, `value_grad` reports a NaN partial — exercising the
        /// central-difference fallback.
        poison_grad: bool,
    }

    impl crate::Objective for QuadWithGrad {
        fn eval(&self, x: &[f64]) -> f64 {
            x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum()
        }
    }

    impl crate::DifferentiableObjective for QuadWithGrad {
        fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
            for (g, &xi) in grad.iter_mut().zip(x) {
                *g = if self.poison_grad {
                    f64::NAN
                } else {
                    2.0 * (xi - 1.0)
                };
            }
            self.eval(x)
        }
    }

    #[test]
    fn analytic_path_matches_fd_optimum_with_fewer_evaluations() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 4]).unwrap();
        let gd = GradientDescent::default();
        let obj = QuadWithGrad { poison_grad: false };
        let analytic = gd.minimize_differentiable(&obj, &domain).unwrap();
        let fd = gd.minimize(&obj, &domain).unwrap();
        assert!(analytic.converged());
        for (a, b) in analytic.best_x.iter().zip(&fd.best_x) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        assert!(
            analytic.evaluations < fd.evaluations,
            "analytic {} vs fd {} evaluations",
            analytic.evaluations,
            fd.evaluations
        );
    }

    #[test]
    fn non_finite_analytic_gradient_falls_back_to_central_differences() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 2]).unwrap();
        let obj = QuadWithGrad { poison_grad: true };
        let out = GradientDescent::default()
            .minimize_differentiable(&obj, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
        assert!(out.converged());
    }

    #[test]
    fn rejects_bad_config() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(GradientDescent::default()
            .fd_step(0.0)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(GradientDescent::default()
            .max_iterations(0)
            .minimize(&sphere, &domain)
            .is_err());
    }
}
