//! Hooke–Jeeves pattern search.
//!
//! A derivative-free direct search: exploratory coordinate moves followed
//! by pattern (momentum) moves, halving the step when stuck. Simple,
//! predictable, and effective on the smooth low-dimensional cost surfaces
//! of safety models; serves as an independent cross-check on Nelder–Mead
//! in the optimizer-comparison ablation.

use crate::domain::BoxDomain;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};

/// Hooke–Jeeves configuration.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::hooke_jeeves::HookeJeeves;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
/// let out = HookeJeeves::default().minimize(&safety_opt_optim::testfns::booth, &domain)?;
/// assert!(out.best_value < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HookeJeeves {
    /// Initial step as a fraction of each dimension's width.
    initial_step: f64,
    /// Step-length tolerance relative to domain width.
    x_tol: f64,
    max_iterations: u64,
    start: Option<Vec<f64>>,
    record_trace: bool,
}

impl Default for HookeJeeves {
    fn default() -> Self {
        Self {
            initial_step: 0.25,
            x_tol: 1e-10,
            max_iterations: 10_000,
            start: None,
            record_trace: false,
        }
    }
}

impl HookeJeeves {
    /// Creates a search with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the initial step fraction (of each dimension width).
    pub fn initial_step(mut self, s: f64) -> Self {
        self.initial_step = s;
        self
    }

    /// Sets the relative step-length tolerance.
    pub fn x_tol(mut self, tol: f64) -> Self {
        self.x_tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Starts from `x0` instead of the domain center.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    fn validate(&self, domain: &BoxDomain) -> Result<()> {
        if !(self.initial_step.is_finite() && self.initial_step > 0.0 && self.initial_step <= 1.0) {
            return Err(OptimError::InvalidConfig {
                option: "initial_step",
                requirement: "must lie in (0, 1]",
            });
        }
        if !(self.x_tol.is_finite() && self.x_tol > 0.0) {
            return Err(OptimError::InvalidConfig {
                option: "x_tol",
                requirement: "must be finite and > 0",
            });
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        if let Some(x0) = &self.start {
            if x0.len() != domain.dim() {
                return Err(OptimError::DimensionMismatch {
                    expected: "start point matching domain dimension",
                    got: x0.len(),
                });
            }
        }
        Ok(())
    }
}

/// One exploratory sweep: try ± step in each coordinate, keeping
/// improvements greedily. Returns the (possibly unchanged) point/value.
fn explore(
    f: &CountingObjective<'_>,
    domain: &BoxDomain,
    x: &[f64],
    fx: f64,
    steps: &[f64],
) -> (Vec<f64>, f64) {
    let mut best = x.to_vec();
    let mut best_val = fx;
    for i in 0..x.len() {
        for dir in [1.0, -1.0] {
            let mut trial = best.clone();
            trial[i] = domain.interval(i).clamp(trial[i] + dir * steps[i]);
            if trial[i] == best[i] {
                continue; // clamped to no-op
            }
            let v = f.eval_penalized(&trial);
            if v < best_val {
                best = trial;
                best_val = v;
                break; // accept the first improving direction per axis
            }
        }
    }
    (best, best_val)
}

impl Minimizer for HookeJeeves {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate(domain)?;
        let f = CountingObjective::new(objective);
        let widths = domain.widths();
        let mut steps: Vec<f64> = widths.iter().map(|w| w * self.initial_step).collect();
        let min_step: Vec<f64> = widths.iter().map(|w| w * self.x_tol).collect();

        let mut base = match &self.start {
            Some(p) => domain.project(p),
            None => domain.center(),
        };
        let mut f_base = f.eval_penalized(&base);
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        while iterations < self.max_iterations {
            iterations += 1;
            let (probe, f_probe) = explore(&f, domain, &base, f_base, &steps);
            if f_probe < f_base {
                // Pattern move: leap along base→probe and explore there.
                let pattern: Vec<f64> = probe
                    .iter()
                    .zip(&base)
                    .map(|(&p, &b)| 2.0 * p - b)
                    .collect();
                let pattern = domain.project(&pattern);
                let f_pattern_start = f.eval_penalized(&pattern);
                let (pat_probe, f_pat) = explore(&f, domain, &pattern, f_pattern_start, &steps);
                if f_pat < f_probe {
                    base = pat_probe;
                    f_base = f_pat;
                } else {
                    base = probe;
                    f_base = f_probe;
                }
            } else {
                // Stuck: halve steps.
                for s in steps.iter_mut() {
                    *s *= 0.5;
                }
                if steps.iter().zip(&min_step).all(|(s, m)| s < m) {
                    termination = TerminationReason::Converged;
                    break;
                }
            }
            if self.record_trace {
                trace.push(TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: f_base,
                });
            }
        }

        if !f_base.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: base,
            best_value: f_base,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "hooke-jeeves"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{booth, rosenbrock, sphere};

    #[test]
    fn solves_quadratics() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let out = HookeJeeves::default().minimize(&booth, &domain).unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
        assert!(out.converged());
    }

    #[test]
    fn makes_good_progress_on_rosenbrock() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = HookeJeeves::default()
            .minimize(&rosenbrock, &domain)
            .unwrap();
        // Pattern search crawls along the valley; close is good enough here.
        assert!(out.best_value < 1e-3, "best = {}", out.best_value);
    }

    #[test]
    fn boundary_minimum() {
        let domain = BoxDomain::from_bounds(&[(1.0, 3.0)]).unwrap();
        let out = HookeJeeves::default()
            .minimize(&|x: &[f64]| x[0] * x[0], &domain)
            .unwrap();
        assert!((out.best_x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stays_inside_domain() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x));
            sphere(x)
        };
        HookeJeeves::default().minimize(&f, &domain).unwrap();
    }

    #[test]
    fn rejects_bad_config() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(HookeJeeves::default()
            .initial_step(0.0)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(HookeJeeves::default()
            .initial_step(2.0)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(HookeJeeves::default()
            .start(vec![0.1, 0.2])
            .minimize(&sphere, &domain)
            .is_err());
    }

    #[test]
    fn start_point_is_projected() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let out = HookeJeeves::default()
            .start(vec![100.0])
            .minimize(&|x: &[f64]| (x[0] - 0.5).powi(2), &domain)
            .unwrap();
        assert!((out.best_x[0] - 0.5).abs() < 1e-6);
    }
}
