//! Brent's method — 1-D minimization combining golden-section with
//! successive parabolic interpolation.
//!
//! Converges superlinearly on smooth objectives (like the paper's cost
//! functions, which are compositions of normal cdfs and exponentials)
//! while retaining golden-section's worst-case guarantees.

use crate::domain::BoxDomain;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};

/// Brent minimizer configuration.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::brent::Brent;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(0.0, 10.0)])?;
/// let out = Brent::default().minimize(&|x: &[f64]| (x[0] - 2.0).powi(2), &domain)?;
/// assert!((out.best_x[0] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Brent {
    rel_tol: f64,
    abs_tol: f64,
    max_iterations: u64,
    record_trace: bool,
}

impl Default for Brent {
    fn default() -> Self {
        Self {
            rel_tol: 1e-10,
            abs_tol: 1e-12,
            max_iterations: 200,
            record_trace: false,
        }
    }
}

impl Brent {
    /// Creates a minimizer with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative x-tolerance.
    pub fn rel_tol(mut self, tol: f64) -> Self {
        self.rel_tol = tol;
        self
    }

    /// Sets the absolute x-tolerance.
    pub fn abs_tol(mut self, tol: f64) -> Self {
        self.abs_tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    fn validate(&self) -> Result<()> {
        for (option, v) in [("rel_tol", self.rel_tol), ("abs_tol", self.abs_tol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OptimError::InvalidConfig {
                    option,
                    requirement: "must be finite and > 0",
                });
            }
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        Ok(())
    }
}

const CGOLD: f64 = 0.381_966_011_250_105; // 2 − φ

impl Minimizer for Brent {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        if domain.dim() != 1 {
            return Err(OptimError::DimensionMismatch {
                expected: "exactly 1 dimension",
                got: domain.dim(),
            });
        }
        let f = CountingObjective::new(objective);
        let iv = domain.interval(0);
        let (mut a, mut b) = (iv.lo(), iv.hi());

        let mut x = a + CGOLD * (b - a);
        let mut w = x;
        let mut v = x;
        let mut fx = f.eval_penalized(&[x]);
        let mut fw = fx;
        let mut fv = fx;
        let mut d: f64 = 0.0;
        let mut e: f64 = 0.0;
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        while iterations < self.max_iterations {
            iterations += 1;
            let xm = 0.5 * (a + b);
            let tol1 = self.rel_tol * x.abs() + self.abs_tol;
            let tol2 = 2.0 * tol1;
            if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
                termination = TerminationReason::Converged;
                break;
            }
            let mut use_golden = true;
            if e.abs() > tol1 {
                // Trial parabolic fit through x, v, w.
                let r = (x - w) * (fx - fv);
                let mut q = (x - v) * (fx - fw);
                let mut p = (x - v) * q - (x - w) * r;
                q = 2.0 * (q - r);
                if q > 0.0 {
                    p = -p;
                }
                q = q.abs();
                let e_old = e;
                e = d;
                if p.abs() < (0.5 * q * e_old).abs() && p > q * (a - x) && p < q * (b - x) {
                    // Accept the parabolic step.
                    d = p / q;
                    let u = x + d;
                    if u - a < tol2 || b - u < tol2 {
                        d = tol1.copysign(xm - x);
                    }
                    use_golden = false;
                }
            }
            if use_golden {
                e = if x >= xm { a - x } else { b - x };
                d = CGOLD * e;
            }
            let u = if d.abs() >= tol1 {
                x + d
            } else {
                x + tol1.copysign(d)
            };
            let fu = f.eval_penalized(&[u]);
            if fu <= fx {
                if u >= x {
                    a = x;
                } else {
                    b = x;
                }
                v = w;
                fv = fw;
                w = x;
                fw = fx;
                x = u;
                fx = fu;
            } else {
                if u < x {
                    a = u;
                } else {
                    b = u;
                }
                if fu <= fw || w == x {
                    v = w;
                    fv = fw;
                    w = u;
                    fw = fu;
                } else if fu <= fv || v == x || v == w {
                    v = u;
                    fv = fu;
                }
            }
            if self.record_trace {
                trace.push(TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: fx,
                });
            }
        }

        if !fx.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: vec![x],
            best_value: fx,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "brent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::unimodal_1d;

    #[test]
    fn converges_faster_than_golden_on_smooth_function() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0)]).unwrap();
        let f = |x: &[f64]| (x[0] - 1.234_567).powi(2);
        let brent = Brent::default().minimize(&f, &domain).unwrap();
        let golden = crate::golden::GoldenSection::default()
            .minimize(&f, &domain)
            .unwrap();
        assert!((brent.best_x[0] - 1.234_567).abs() < 1e-7);
        assert!(
            brent.evaluations < golden.evaluations,
            "brent {} vs golden {}",
            brent.evaluations,
            golden.evaluations
        );
    }

    #[test]
    fn handles_quartic_tail() {
        let domain = BoxDomain::from_bounds(&[(0.0, 10.0)]).unwrap();
        let out = Brent::default().minimize(&unimodal_1d, &domain).unwrap();
        assert!((out.best_x[0] - 2.0).abs() < 1e-6);
        assert!(out.converged());
    }

    #[test]
    fn edge_minimum() {
        let domain = BoxDomain::from_bounds(&[(3.0, 8.0)]).unwrap();
        let out = Brent::default()
            .minimize(&|x: &[f64]| x[0].powi(2), &domain)
            .unwrap();
        assert!((out.best_x[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_wrong_dimension_and_bad_config() {
        let d2 = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        assert!(Brent::default()
            .minimize(&crate::testfns::sphere, &d2)
            .is_err());
        let d1 = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(Brent::default()
            .abs_tol(-1.0)
            .minimize(&|x: &[f64]| x[0], &d1)
            .is_err());
    }

    #[test]
    fn stays_in_domain() {
        let domain = BoxDomain::from_bounds(&[(2.0, 5.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "evaluated outside domain: {x:?}");
            (x[0] - 10.0).powi(2) // minimum outside the domain, at the edge
        };
        let out = Brent::default().minimize(&f, &domain).unwrap();
        assert!((out.best_x[0] - 5.0).abs() < 1e-4);
    }

    #[test]
    fn nan_objective_is_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(matches!(
            Brent::default().minimize(&|_: &[f64]| f64::NAN, &domain),
            Err(OptimError::NoFiniteValue { .. })
        ));
    }
}
