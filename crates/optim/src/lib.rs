//! Optimization over compact box domains.
//!
//! The paper reduces safety analysis to a mathematical program (Sect.
//! III-B): *"Find (x₁, …, x_l) such that f_cost(x₁, …, x_l) =
//! min f_cost"*, with the real-valued domains restricted to **compact
//! intervals** so the minimum exists. It names gradient descent, general
//! nonlinear programming, brute-force combination testing, and 3-D-plot
//! inspection as admissible solution strategies — this crate implements all
//! of them, from scratch:
//!
//! * [`domain`] — compact [`Interval`](domain::Interval)s and
//!   [`domain::BoxDomain`]s with projection and sampling.
//! * [`golden`] / [`brent`] — one-dimensional minimization.
//! * [`grid`] — exhaustive (optionally parallel) grid search: the paper's
//!   "test large numbers of combinations in very short time".
//! * [`nelder_mead`] — the derivative-free simplex workhorse.
//! * [`hooke_jeeves`] — pattern search.
//! * [`gradient`] — projected gradient descent with numerical gradients and
//!   Armijo backtracking: the paper's "most simple" method.
//! * [`anneal`] / [`de`] — stochastic global search (simulated annealing,
//!   differential evolution) for non-smooth or multimodal cost functions.
//! * [`multistart`] — restart wrapper that upgrades any local
//!   [`Minimizer`] into a global heuristic.
//!
//! All algorithms implement the object-safe [`Minimizer`] trait, report a
//! structured [`OptimizationOutcome`] (best point, value, evaluation
//! counts, termination reason, optional trace), never evaluate outside the
//! domain, and treat non-finite objective values as "worse than anything"
//! rather than propagating NaN.
//!
//! # Example
//!
//! ```
//! use safety_opt_optim::domain::BoxDomain;
//! use safety_opt_optim::nelder_mead::NelderMead;
//! use safety_opt_optim::Minimizer;
//!
//! # fn main() -> Result<(), safety_opt_optim::OptimError> {
//! let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
//! let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
//! let outcome = NelderMead::default().minimize(&sphere, &domain)?;
//! assert!(outcome.best_value < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anneal;
pub mod brent;
pub mod de;
pub mod domain;
mod error;
pub mod golden;
pub mod gradient;
pub mod grid;
pub mod hooke_jeeves;
pub mod multistart;
pub mod nelder_mead;
mod objective;
mod outcome;
pub mod testfns;
pub mod trace;

pub use error::OptimError;
pub use objective::{
    BatchDifferentiableObjective, BatchObjective, CountingObjective, DifferentiableObjective,
    Objective,
};
pub use outcome::{OptimizationOutcome, TerminationReason, TracePoint};
pub use trace::{CollectingHook, HookHandle, TraceHook};

/// Convenience result alias for fallible optimization operations.
pub type Result<T> = std::result::Result<T, OptimError>;

use domain::BoxDomain;

/// A minimization algorithm over a compact box domain.
///
/// Object-safe so front-ends (like the safety optimizer) can accept
/// `&dyn Minimizer` and let callers swap algorithms at runtime.
///
/// # Contract
///
/// Implementations must only evaluate the objective at points inside
/// `domain`, must return the best point *they evaluated* (never an
/// extrapolation), and must map non-finite objective values to "infinitely
/// bad" instead of returning them as a best value.
pub trait Minimizer: std::fmt::Debug {
    /// Minimizes `objective` over `domain`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::DimensionMismatch`] if the algorithm is restricted
    ///   to certain dimensionalities (e.g. 1-D methods).
    /// * [`OptimError::NoFiniteValue`] if every evaluated point produced a
    ///   non-finite objective.
    /// * Algorithm-specific configuration errors.
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome>;

    /// Minimizes an objective that can also provide **analytic
    /// gradients** ([`DifferentiableObjective`]). The default
    /// implementation ignores the gradient capability and delegates to
    /// [`minimize`](Self::minimize), so derivative-free algorithms are
    /// unaffected; gradient-based algorithms override it —
    /// [`gradient::GradientDescent`] consumes one analytic gradient per
    /// iteration instead of `2·dim` finite-difference evaluations.
    /// Front-ends (like the safety optimizer) call this entry point, so
    /// a gradient-capable minimizer picks up analytic gradients through
    /// `&dyn Minimizer` dispatch too.
    ///
    /// # Errors
    ///
    /// Same conditions as [`minimize`](Self::minimize).
    fn minimize_differentiable(
        &self,
        objective: &dyn DifferentiableObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.minimize(&objective::ValueOnly(objective), domain)
    }

    /// Short human-readable algorithm name (used in reports and benches).
    fn name(&self) -> &'static str;
}
