//! Nelder–Mead downhill simplex with box constraints.
//!
//! The default optimizer of the safety-optimization front-end: derivative
//! free (cost functions built from deep normal tails have vanishing
//! gradients almost everywhere, which starves gradient methods), robust,
//! and fast on the low-dimensional problems safety models produce.
//! Box constraints are enforced by projecting trial points onto the
//! domain, which preserves convergence on these landscapes while
//! guaranteeing no out-of-domain evaluation.
//!
//! The algorithm is implemented as a resumable state machine
//! ([`NmState`]): it publishes the points it needs next (the initial
//! simplex, one reflection/expansion/contraction probe, or a whole
//! shrink) and consumes their values. [`NelderMead::minimize`] drives it
//! pointwise; [`NelderMead::minimize_batch`] feeds each request to a
//! [`crate::BatchObjective`] in one call, and
//! [`crate::multistart::MultiStart`] runs many states in lockstep so
//! every restart's probes land in one batch per round. All drivers
//! produce identical evaluation sequences per run, hence identical
//! outcomes.

use crate::domain::BoxDomain;
use crate::trace::HookHandle;
use crate::{
    BatchObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};

/// Nelder–Mead configuration (standard coefficients, adaptive by default).
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::nelder_mead::NelderMead;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
/// let out = NelderMead::default().minimize(&safety_opt_optim::testfns::rosenbrock, &domain)?;
/// assert!((out.best_x[0] - 1.0).abs() < 1e-4);
/// assert!((out.best_x[1] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Function-value spread tolerance.
    f_tol: f64,
    /// Simplex-size tolerance (relative to domain width).
    x_tol: f64,
    max_iterations: u64,
    /// Initial simplex edge length as a fraction of each dimension width.
    initial_scale: f64,
    /// Optional explicit start point (defaults to the domain center).
    start: Option<Vec<f64>>,
    record_trace: bool,
    hook: HookHandle,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            f_tol: 1e-12,
            x_tol: 1e-10,
            max_iterations: 2000,
            initial_scale: 0.10,
            start: None,
            record_trace: false,
            hook: HookHandle::none(),
        }
    }
}

impl NelderMead {
    /// Creates a minimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the function-value spread tolerance.
    pub fn f_tol(mut self, tol: f64) -> Self {
        self.f_tol = tol;
        self
    }

    /// Sets the simplex-diameter tolerance (relative to the domain width).
    pub fn x_tol(mut self, tol: f64) -> Self {
        self.x_tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the initial simplex edge as a fraction of the domain width per
    /// dimension (default 0.10).
    pub fn initial_scale(mut self, s: f64) -> Self {
        self.initial_scale = s;
        self
    }

    /// Starts the simplex around `x0` instead of the domain center.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Installs a live per-iteration observer (see [`crate::TraceHook`]);
    /// fires whether or not a trace is recorded.
    pub fn with_trace_hook(mut self, hook: std::sync::Arc<dyn crate::TraceHook>) -> Self {
        self.hook = HookHandle::new(hook);
        self
    }

    /// Replaces the hook slot wholesale (restart tagging in multi-start).
    pub(crate) fn hook_handle(mut self, hook: HookHandle) -> Self {
        self.hook = hook;
        self
    }

    fn validate(&self, domain: &BoxDomain) -> Result<()> {
        for (option, v) in [("f_tol", self.f_tol), ("x_tol", self.x_tol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OptimError::InvalidConfig {
                    option,
                    requirement: "must be finite and > 0",
                });
            }
        }
        if !(self.initial_scale.is_finite()
            && self.initial_scale > 0.0
            && self.initial_scale <= 1.0)
        {
            return Err(OptimError::InvalidConfig {
                option: "initial_scale",
                requirement: "must lie in (0, 1]",
            });
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        if let Some(x0) = &self.start {
            if x0.len() != domain.dim() {
                return Err(OptimError::DimensionMismatch {
                    expected: "start point matching domain dimension",
                    got: x0.len(),
                });
            }
        }
        Ok(())
    }
}

impl NelderMead {
    /// Minimization through a [`BatchObjective`]: every evaluation
    /// request of one iteration — the whole initial simplex, a whole
    /// shrink — lands in a single batch call, so compiled/parallel
    /// backends amortize per-call overhead.
    ///
    /// Produces the exact evaluation sequence of
    /// [`NelderMead::minimize`], hence identical outcomes for
    /// pointwise-equal objectives.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NelderMead::minimize`].
    pub fn minimize_batch(
        &self,
        objective: &dyn BatchObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        let mut state = NmState::new(self, domain)?;
        let mut values = Vec::new();
        while !state.is_done() {
            objective.eval_batch(state.pending(), &mut values);
            state.advance(&values);
        }
        state.into_outcome()
    }
}

impl Minimizer for NelderMead {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        let mut state = NmState::new(self, domain)?;
        let mut values = Vec::new();
        while !state.is_done() {
            values.clear();
            values.extend(state.pending().iter().map(|p| objective.eval(p)));
            state.advance(&values);
        }
        state.into_outcome()
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

/// Where a paused [`NmState`] resumes once its pending points have
/// values.
#[derive(Debug, Clone)]
enum Phase {
    /// Awaiting the initial simplex values.
    Init,
    /// Awaiting the reflection probe.
    Reflect {
        best: usize,
        worst: usize,
        second_worst: usize,
        centroid: Vec<f64>,
        xr: Vec<f64>,
    },
    /// Awaiting the expansion probe.
    Expand {
        worst: usize,
        xr: Vec<f64>,
        fr: f64,
        xe: Vec<f64>,
    },
    /// Awaiting the contraction probe.
    Contract {
        best: usize,
        worst: usize,
        fr: f64,
        xc: Vec<f64>,
    },
    /// Awaiting the shrunk vertices (all but the best, ascending).
    Shrink { indices: Vec<usize> },
    /// Terminated; [`NmState::into_outcome`] is ready.
    Done,
}

/// Resumable Nelder–Mead run: alternates between publishing
/// [`pending`](NmState::pending) evaluation points and consuming their
/// values through [`advance`](NmState::advance). Replicates the classic
/// loop step for step, so every driver (pointwise, batched, lockstep
/// multi-start) produces identical trajectories.
#[derive(Debug, Clone)]
pub(crate) struct NmState {
    f_tol: f64,
    x_tol: f64,
    max_iterations: u64,
    record_trace: bool,
    hook: HookHandle,
    // Adaptive coefficients (Gao & Han 2012) help in higher dimensions.
    alpha: f64,
    beta: f64,
    gamma: f64,
    delta: f64,
    n: usize,
    domain: BoxDomain,
    domain_scale: f64,
    simplex: Vec<Vec<f64>>,
    values: Vec<f64>,
    evaluations: u64,
    iterations: u64,
    trace: Vec<TracePoint>,
    termination: TerminationReason,
    phase: Phase,
    pending: Vec<Vec<f64>>,
}

impl NmState {
    /// Validates `config` and builds the initial simplex; the state
    /// starts with the whole simplex pending.
    pub(crate) fn new(config: &NelderMead, domain: &BoxDomain) -> Result<Self> {
        config.validate(domain)?;
        let n = domain.dim();
        let nf = n as f64;

        // Initial simplex: start point plus one vertex per dimension.
        let x0 = match &config.start {
            Some(p) => domain.project(p),
            None => domain.center(),
        };
        let widths = domain.widths();
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.clone());
        for i in 0..n {
            let mut v = x0.clone();
            let step = config.initial_scale * widths[i];
            // Step towards whichever side has room.
            let iv = domain.interval(i);
            v[i] = if v[i] + step <= iv.hi() {
                v[i] + step
            } else {
                v[i] - step
            };
            simplex.push(v);
        }
        let pending = simplex.clone();
        Ok(Self {
            f_tol: config.f_tol,
            x_tol: config.x_tol,
            max_iterations: config.max_iterations,
            record_trace: config.record_trace,
            hook: config.hook.clone(),
            alpha: 1.0,
            beta: 1.0 + 2.0 / nf,           // expansion
            gamma: 0.75 - 1.0 / (2.0 * nf), // contraction
            delta: 1.0 - 1.0 / nf.max(2.0), // shrink
            n,
            domain: domain.clone(),
            domain_scale: domain.max_width(),
            simplex,
            values: Vec::new(),
            evaluations: 0,
            iterations: 0,
            trace: Vec::new(),
            termination: TerminationReason::MaxIterations,
            phase: Phase::Init,
            pending,
        })
    }

    /// Points awaiting evaluation (empty exactly when
    /// [`is_done`](Self::is_done)).
    pub(crate) fn pending(&self) -> &[Vec<f64>] {
        &self.pending
    }

    /// `true` once the run has terminated.
    pub(crate) fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Consumes one value per pending point (in order; non-finite values
    /// are penalized to `+∞` exactly like the pointwise driver) and
    /// progresses to the next pending set or termination.
    ///
    /// # Panics
    ///
    /// Panics if `raw_values` does not match the pending count.
    pub(crate) fn advance(&mut self, raw_values: &[f64]) {
        assert_eq!(
            raw_values.len(),
            self.pending.len(),
            "one value per pending point"
        );
        let vals: Vec<f64> = raw_values
            .iter()
            .map(|&v| if v.is_finite() { v } else { f64::INFINITY })
            .collect();
        self.evaluations += vals.len() as u64;
        self.pending.clear();
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Init => {
                self.values = vals;
                self.begin_iteration();
            }
            Phase::Reflect {
                best,
                worst,
                second_worst,
                centroid,
                xr,
            } => {
                let fr = vals[0];
                if fr < self.values[best] {
                    // Expansion.
                    let xe = self.project_combine(&centroid, worst, self.beta);
                    self.pending.push(xe.clone());
                    self.phase = Phase::Expand { worst, xr, fr, xe };
                } else if fr < self.values[second_worst] {
                    self.simplex[worst] = xr;
                    self.values[worst] = fr;
                    self.end_iteration();
                } else {
                    // Contraction (outside if the reflection helped at
                    // all).
                    let t = if fr < self.values[worst] {
                        self.gamma
                    } else {
                        -self.gamma
                    };
                    let xc = self.project_combine(&centroid, worst, t);
                    self.pending.push(xc.clone());
                    self.phase = Phase::Contract {
                        best,
                        worst,
                        fr,
                        xc,
                    };
                }
            }
            Phase::Expand { worst, xr, fr, xe } => {
                let fe = vals[0];
                if fe < fr {
                    self.simplex[worst] = xe;
                    self.values[worst] = fe;
                } else {
                    self.simplex[worst] = xr;
                    self.values[worst] = fr;
                }
                self.end_iteration();
            }
            Phase::Contract {
                best,
                worst,
                fr,
                xc,
            } => {
                let fc = vals[0];
                if fc < self.values[worst].min(fr) {
                    self.simplex[worst] = xc;
                    self.values[worst] = fc;
                    self.end_iteration();
                } else {
                    // Shrink towards the best vertex.
                    let best_point = self.simplex[best].clone();
                    let mut indices = Vec::with_capacity(self.n);
                    for (i, v) in self.simplex.iter_mut().enumerate() {
                        if i == best {
                            continue;
                        }
                        for (vi, &bi) in v.iter_mut().zip(&best_point) {
                            *vi = bi + self.delta * (*vi - bi);
                        }
                        *v = self.domain.project(v);
                        indices.push(i);
                        self.pending.push(v.clone());
                    }
                    self.phase = Phase::Shrink { indices };
                }
            }
            Phase::Shrink { indices } => {
                for (&i, &fv) in indices.iter().zip(&vals) {
                    self.values[i] = fv;
                }
                self.end_iteration();
            }
            Phase::Done => panic!("advance() after termination"),
        }
    }

    /// Starts the next iteration: convergence/budget checks, then the
    /// reflection probe.
    fn begin_iteration(&mut self) {
        if self.iterations >= self.max_iterations {
            self.termination = TerminationReason::MaxIterations;
            self.phase = Phase::Done;
            return;
        }
        self.iterations += 1;
        // Order vertices by value.
        let n = self.n;
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| self.values[a].partial_cmp(&self.values[b]).unwrap());
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence: value spread and simplex diameter.
        let spread = self.values[worst] - self.values[best];
        let diameter = self
            .simplex
            .iter()
            .flat_map(|v| self.simplex[best].iter().zip(v).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max);
        if (spread.is_finite() && spread <= self.f_tol)
            || diameter <= self.x_tol * self.domain_scale
        {
            self.termination = TerminationReason::Converged;
            self.phase = Phase::Done;
            return;
        }

        // Centroid of all but the worst vertex.
        let nf = n as f64;
        let mut centroid = vec![0.0; n];
        for (i, v) in self.simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, &vi) in centroid.iter_mut().zip(v) {
                *c += vi / nf;
            }
        }

        // Reflection.
        let xr = self.project_combine(&centroid, worst, self.alpha);
        self.pending.push(xr.clone());
        self.phase = Phase::Reflect {
            best,
            worst,
            second_worst,
            centroid,
            xr,
        };
    }

    fn end_iteration(&mut self) {
        if self.record_trace || self.hook.is_set() {
            let best_now = self.values.iter().copied().fold(f64::INFINITY, f64::min);
            let point = TracePoint {
                iteration: self.iterations,
                evaluations: self.evaluations,
                best_value: best_now,
            };
            self.hook.emit(0, &point);
            if self.record_trace {
                self.trace.push(point);
            }
        }
        self.begin_iteration();
    }

    fn project_combine(&self, centroid: &[f64], worst: usize, t: f64) -> Vec<f64> {
        let p: Vec<f64> = centroid
            .iter()
            .zip(&self.simplex[worst])
            .map(|(&c, &w)| c + t * (c - w))
            .collect();
        self.domain.project(&p)
    }

    /// Final outcome of a terminated run.
    ///
    /// # Errors
    ///
    /// [`OptimError::NoFiniteValue`] if every evaluated vertex is
    /// non-finite.
    pub(crate) fn into_outcome(self) -> Result<OptimizationOutcome> {
        let (best_idx, &best_value) = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("simplex non-empty");
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: self.evaluations,
            });
        }
        Ok(OptimizationOutcome {
            best_x: self.simplex[best_idx].clone(),
            best_value,
            evaluations: self.evaluations,
            iterations: self.iterations,
            termination: self.termination,
            trace: self.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{booth, rosenbrock, sphere};

    #[test]
    fn solves_sphere_in_five_dimensions() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 5]).unwrap();
        let out = NelderMead::default().minimize(&sphere, &domain).unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
    }

    #[test]
    fn solves_rosenbrock() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
        assert!(out.converged());
    }

    #[test]
    fn respects_start_point() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let out = NelderMead::default()
            .start(vec![1.0, 3.0])
            .minimize(&booth, &domain)
            .unwrap();
        assert!(out.best_value < 1e-10);
        assert!(out.evaluations < 400);
    }

    #[test]
    fn constrained_minimum_on_boundary() {
        // Unconstrained minimum at (−3, −3); box keeps x ≥ 0 → best is (0, 0).
        let domain = BoxDomain::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]).unwrap();
        let f = |x: &[f64]| (x[0] + 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let out = NelderMead::default().minimize(&f, &domain).unwrap();
        assert!(
            out.best_x[0] < 1e-5 && out.best_x[1] < 1e-5,
            "{:?}",
            out.best_x
        );
    }

    #[test]
    fn never_leaves_domain() {
        let domain = BoxDomain::from_bounds(&[(2.0, 5.0), (-1.0, 1.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "evaluated outside domain: {x:?}");
            sphere(x)
        };
        NelderMead::default().minimize(&f, &domain).unwrap();
    }

    #[test]
    fn iteration_budget_is_respected() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .max_iterations(5)
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert_eq!(out.iterations, 5);
        assert_eq!(out.termination, TerminationReason::MaxIterations);
    }

    #[test]
    fn nan_regions_are_avoided() {
        // NaN for x < 0: the simplex should still find the minimum at 0.5.
        let domain = BoxDomain::from_bounds(&[(-2.0, 2.0)]).unwrap();
        let f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                (x[0] - 0.5).powi(2)
            }
        };
        let out = NelderMead::default().minimize(&f, &domain).unwrap();
        assert!((out.best_x[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_start_dimension() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(NelderMead::default()
            .start(vec![0.5, 0.5])
            .minimize(&sphere, &domain)
            .is_err());
    }

    #[test]
    fn batch_driver_equals_pointwise_driver_exactly() {
        // One state machine, two drivers: identical trajectories.
        for f in [
            sphere as fn(&[f64]) -> f64,
            rosenbrock as fn(&[f64]) -> f64,
            |x: &[f64]| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 0.5).powi(2) + x[1].powi(2)
                }
            },
        ] {
            let domain = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
            let nm = NelderMead::default().record_trace(true);
            let seq = nm.minimize(&f, &domain).unwrap();
            let batch = nm.minimize_batch(&f, &domain).unwrap();
            assert_eq!(seq.best_x, batch.best_x);
            assert_eq!(seq.best_value.to_bits(), batch.best_value.to_bits());
            assert_eq!(seq.evaluations, batch.evaluations);
            assert_eq!(seq.iterations, batch.iterations);
            assert_eq!(seq.termination, batch.termination);
            assert_eq!(seq.trace, batch.trace);
        }
    }

    #[test]
    fn batch_driver_propagates_config_errors() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let f = |x: &[f64]| x[0];
        assert!(NelderMead::default()
            .max_iterations(0)
            .minimize_batch(&f, &domain)
            .is_err());
        assert!(NelderMead::default()
            .start(vec![0.5, 0.5])
            .minimize_batch(&f, &domain)
            .is_err());
    }

    #[test]
    fn trace_is_monotone() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .record_trace(true)
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[1].best_value <= w[0].best_value + 1e-12);
        }
    }
}
