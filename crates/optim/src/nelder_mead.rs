//! Nelder–Mead downhill simplex with box constraints.
//!
//! The default optimizer of the safety-optimization front-end: derivative
//! free (cost functions built from deep normal tails have vanishing
//! gradients almost everywhere, which starves gradient methods), robust,
//! and fast on the low-dimensional problems safety models produce.
//! Box constraints are enforced by projecting trial points onto the
//! domain, which preserves convergence on these landscapes while
//! guaranteeing no out-of-domain evaluation.

use crate::domain::BoxDomain;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};

/// Nelder–Mead configuration (standard coefficients, adaptive by default).
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::nelder_mead::NelderMead;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
/// let out = NelderMead::default().minimize(&safety_opt_optim::testfns::rosenbrock, &domain)?;
/// assert!((out.best_x[0] - 1.0).abs() < 1e-4);
/// assert!((out.best_x[1] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Function-value spread tolerance.
    f_tol: f64,
    /// Simplex-size tolerance (relative to domain width).
    x_tol: f64,
    max_iterations: u64,
    /// Initial simplex edge length as a fraction of each dimension width.
    initial_scale: f64,
    /// Optional explicit start point (defaults to the domain center).
    start: Option<Vec<f64>>,
    record_trace: bool,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            f_tol: 1e-12,
            x_tol: 1e-10,
            max_iterations: 2000,
            initial_scale: 0.10,
            start: None,
            record_trace: false,
        }
    }
}

impl NelderMead {
    /// Creates a minimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the function-value spread tolerance.
    pub fn f_tol(mut self, tol: f64) -> Self {
        self.f_tol = tol;
        self
    }

    /// Sets the simplex-diameter tolerance (relative to the domain width).
    pub fn x_tol(mut self, tol: f64) -> Self {
        self.x_tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the initial simplex edge as a fraction of the domain width per
    /// dimension (default 0.10).
    pub fn initial_scale(mut self, s: f64) -> Self {
        self.initial_scale = s;
        self
    }

    /// Starts the simplex around `x0` instead of the domain center.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    fn validate(&self, domain: &BoxDomain) -> Result<()> {
        for (option, v) in [("f_tol", self.f_tol), ("x_tol", self.x_tol)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(OptimError::InvalidConfig {
                    option,
                    requirement: "must be finite and > 0",
                });
            }
        }
        if !(self.initial_scale.is_finite()
            && self.initial_scale > 0.0
            && self.initial_scale <= 1.0)
        {
            return Err(OptimError::InvalidConfig {
                option: "initial_scale",
                requirement: "must lie in (0, 1]",
            });
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        if let Some(x0) = &self.start {
            if x0.len() != domain.dim() {
                return Err(OptimError::DimensionMismatch {
                    expected: "start point matching domain dimension",
                    got: x0.len(),
                });
            }
        }
        Ok(())
    }
}

impl Minimizer for NelderMead {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate(domain)?;
        let n = domain.dim();
        let f = CountingObjective::new(objective);

        // Adaptive coefficients (Gao & Han 2012) help in higher dimensions.
        let nf = n as f64;
        let alpha = 1.0;
        let beta = 1.0 + 2.0 / nf; // expansion
        let gamma = 0.75 - 1.0 / (2.0 * nf); // contraction
        let delta = 1.0 - 1.0 / nf.max(2.0); // shrink

        // Initial simplex: start point plus one vertex per dimension.
        let x0 = match &self.start {
            Some(p) => domain.project(p),
            None => domain.center(),
        };
        let widths = domain.widths();
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.clone());
        for i in 0..n {
            let mut v = x0.clone();
            let step = self.initial_scale * widths[i];
            // Step towards whichever side has room.
            let iv = domain.interval(i);
            v[i] = if v[i] + step <= iv.hi() {
                v[i] + step
            } else {
                v[i] - step
            };
            simplex.push(v);
        }
        let mut values: Vec<f64> = simplex.iter().map(|v| f.eval_penalized(v)).collect();

        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;
        let domain_scale = domain.max_width();

        while iterations < self.max_iterations {
            iterations += 1;
            // Order vertices by value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Convergence: value spread and simplex diameter.
            let spread = values[worst] - values[best];
            let diameter = simplex
                .iter()
                .flat_map(|v| simplex[best].iter().zip(v).map(|(a, b)| (a - b).abs()))
                .fold(0.0, f64::max);
            if (spread.is_finite() && spread <= self.f_tol) || diameter <= self.x_tol * domain_scale
            {
                termination = TerminationReason::Converged;
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (i, v) in simplex.iter().enumerate() {
                if i == worst {
                    continue;
                }
                for (c, &vi) in centroid.iter_mut().zip(v) {
                    *c += vi / nf;
                }
            }

            let project_combine = |t: f64| -> Vec<f64> {
                let p: Vec<f64> = centroid
                    .iter()
                    .zip(&simplex[worst])
                    .map(|(&c, &w)| c + t * (c - w))
                    .collect();
                domain.project(&p)
            };

            // Reflection.
            let xr = project_combine(alpha);
            let fr = f.eval_penalized(&xr);
            if fr < values[best] {
                // Expansion.
                let xe = project_combine(beta);
                let fe = f.eval_penalized(&xe);
                if fe < fr {
                    simplex[worst] = xe;
                    values[worst] = fe;
                } else {
                    simplex[worst] = xr;
                    values[worst] = fr;
                }
            } else if fr < values[second_worst] {
                simplex[worst] = xr;
                values[worst] = fr;
            } else {
                // Contraction (outside if the reflection helped at all).
                let (xc, fc) = if fr < values[worst] {
                    let xc = project_combine(gamma);
                    let fc = f.eval_penalized(&xc);
                    (xc, fc)
                } else {
                    let xc = project_combine(-gamma);
                    let fc = f.eval_penalized(&xc);
                    (xc, fc)
                };
                if fc < values[worst].min(fr) {
                    simplex[worst] = xc;
                    values[worst] = fc;
                } else {
                    // Shrink towards the best vertex.
                    let best_point = simplex[best].clone();
                    for (i, v) in simplex.iter_mut().enumerate() {
                        if i == best {
                            continue;
                        }
                        for (vi, &bi) in v.iter_mut().zip(&best_point) {
                            *vi = bi + delta * (*vi - bi);
                        }
                        *v = domain.project(v);
                        values[i] = f.eval_penalized(v);
                    }
                }
            }

            if self.record_trace {
                let best_now = values.iter().copied().fold(f64::INFINITY, f64::min);
                trace.push(TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: best_now,
                });
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("simplex non-empty");
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: simplex[best_idx].clone(),
            best_value,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{booth, rosenbrock, sphere};

    #[test]
    fn solves_sphere_in_five_dimensions() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 5]).unwrap();
        let out = NelderMead::default().minimize(&sphere, &domain).unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
    }

    #[test]
    fn solves_rosenbrock() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
        assert!(out.converged());
    }

    #[test]
    fn respects_start_point() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let out = NelderMead::default()
            .start(vec![1.0, 3.0])
            .minimize(&booth, &domain)
            .unwrap();
        assert!(out.best_value < 1e-10);
        assert!(out.evaluations < 400);
    }

    #[test]
    fn constrained_minimum_on_boundary() {
        // Unconstrained minimum at (−3, −3); box keeps x ≥ 0 → best is (0, 0).
        let domain = BoxDomain::from_bounds(&[(0.0, 5.0), (0.0, 5.0)]).unwrap();
        let f = |x: &[f64]| (x[0] + 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let out = NelderMead::default().minimize(&f, &domain).unwrap();
        assert!(
            out.best_x[0] < 1e-5 && out.best_x[1] < 1e-5,
            "{:?}",
            out.best_x
        );
    }

    #[test]
    fn never_leaves_domain() {
        let domain = BoxDomain::from_bounds(&[(2.0, 5.0), (-1.0, 1.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "evaluated outside domain: {x:?}");
            sphere(x)
        };
        NelderMead::default().minimize(&f, &domain).unwrap();
    }

    #[test]
    fn iteration_budget_is_respected() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .max_iterations(5)
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert_eq!(out.iterations, 5);
        assert_eq!(out.termination, TerminationReason::MaxIterations);
    }

    #[test]
    fn nan_regions_are_avoided() {
        // NaN for x < 0: the simplex should still find the minimum at 0.5.
        let domain = BoxDomain::from_bounds(&[(-2.0, 2.0)]).unwrap();
        let f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                (x[0] - 0.5).powi(2)
            }
        };
        let out = NelderMead::default().minimize(&f, &domain).unwrap();
        assert!((out.best_x[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_start_dimension() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(NelderMead::default()
            .start(vec![0.5, 0.5])
            .minimize(&sphere, &domain)
            .is_err());
    }

    #[test]
    fn trace_is_monotone() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = NelderMead::default()
            .record_trace(true)
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[1].best_value <= w[0].best_value + 1e-12);
        }
    }
}
