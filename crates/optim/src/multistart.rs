//! Multi-start wrapper: restart any local minimizer from scattered
//! starting points and keep the best result.
//!
//! The practical recipe for the paper's setting — cost surfaces are cheap
//! to evaluate and low-dimensional, so a handful of Nelder–Mead runs from
//! a deterministic low-discrepancy scatter reliably finds the global
//! optimum without the tuning burden of the stochastic methods.

use crate::domain::BoxDomain;
use crate::gradient::{GdState, GradientDescent};
use crate::nelder_mead::{NelderMead, NmState};
use crate::trace::HookHandle;
use crate::{
    BatchDifferentiableObjective, BatchObjective, DifferentiableObjective, Minimizer, Objective,
    OptimError, OptimizationOutcome, Result, TerminationReason,
};
use safety_opt_telemetry as telemetry;

/// Multi-start wrapper around an inner [`Minimizer`].
///
/// Start points: the domain center plus points of a deterministic
/// low-discrepancy sequence (Halton bases 2 and 3, extended per
/// dimension), so results are reproducible without an RNG.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::multistart::MultiStart;
/// use safety_opt_optim::nelder_mead::NelderMead;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)])?;
/// let ms = MultiStart::new(NelderMead::default(), 8);
/// let out = ms.minimize(&safety_opt_optim::testfns::himmelblau, &domain)?;
/// assert!(out.best_value < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiStart<M> {
    inner: M,
    starts: usize,
    hook: HookHandle,
}

impl Default for MultiStart<NelderMead> {
    /// Eight Nelder–Mead restarts — a solid general-purpose default.
    fn default() -> Self {
        Self {
            inner: NelderMead::default(),
            starts: 8,
            hook: HookHandle::none(),
        }
    }
}

impl<M> MultiStart<M> {
    /// Wraps `inner`, running it from `starts` different start points.
    pub fn new(inner: M, starts: usize) -> Self {
        Self {
            inner,
            starts,
            hook: HookHandle::none(),
        }
    }

    /// Installs a live per-iteration observer (see [`crate::TraceHook`]):
    /// each restart's inner run reports with its restart index, so an
    /// observer can tell the convergence curves apart. When the wrapper
    /// has no hook, the inner minimizer's own hook (if any) is left
    /// untouched.
    pub fn with_trace_hook(mut self, hook: std::sync::Arc<dyn crate::TraceHook>) -> Self {
        self.hook = HookHandle::new(hook);
        self
    }

    /// The wrapped minimizer.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Number of restarts.
    pub fn starts(&self) -> usize {
        self.starts
    }

    /// Start point of restart `k`: the domain center, then the Halton
    /// scatter (shared by the sequential and lockstep drivers).
    fn start_point(k: usize, domain: &BoxDomain) -> Vec<f64> {
        if k == 0 {
            domain.center()
        } else {
            halton(k - 1, domain.dim())
                .into_iter()
                .enumerate()
                .map(|(d, t)| domain.interval(d).lerp(t))
                .collect()
        }
    }
}

impl MultiStart<NelderMead> {
    /// Runs all restarts **in lockstep** against a [`BatchObjective`]:
    /// each round gathers every live restart's pending probes (a whole
    /// initial simplex, a reflection, a shrink, …) into one batch call,
    /// so a compiled/parallel backend sees `starts`-wide batches instead
    /// of single points.
    ///
    /// Each restart's evaluation sequence — and therefore its outcome —
    /// is identical to the sequential [`Minimizer::minimize`] path for
    /// pointwise-equal objectives; only the interleaving across restarts
    /// changes. Aggregation (best-of, evaluation totals, termination)
    /// matches the sequential wrapper exactly.
    ///
    /// # Errors
    ///
    /// Same conditions as the sequential path: configuration errors, and
    /// [`OptimError::NoFiniteValue`] if every restart failed to see a
    /// finite value.
    pub fn minimize_batch(
        &self,
        objective: &dyn BatchObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        if self.starts == 0 {
            return Err(OptimError::InvalidConfig {
                option: "starts",
                requirement: "must be >= 1",
            });
        }
        // One scope for the whole lockstep drive: rounds interleave
        // every restart's probes into shared batches, so per-restart
        // attribution is impossible here by construction.
        let _scope = telemetry::TraceScope::enter("restarts.lockstep");
        let mut states = Vec::with_capacity(self.starts);
        for k in 0..self.starts {
            let x0 = Self::start_point(k, domain);
            let mut cfg = self.inner.clone().start(x0);
            if self.hook.is_set() {
                cfg = cfg.hook_handle(self.hook.with_restart(k as u64));
            }
            states.push(NmState::new(&cfg, domain)?);
        }
        let mut batch: Vec<Vec<f64>> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        loop {
            batch.clear();
            spans.clear();
            for (idx, state) in states.iter().enumerate() {
                if !state.is_done() {
                    spans.push((idx, state.pending().len()));
                    batch.extend(state.pending().iter().cloned());
                }
            }
            if batch.is_empty() {
                break;
            }
            objective.eval_batch(&batch, &mut values);
            let mut offset = 0;
            for &(idx, len) in &spans {
                states[idx].advance(&values[offset..offset + len]);
                offset += len;
            }
        }
        let mut fold = RestartFold::default();
        for state in states {
            fold.observe(state.into_outcome())?;
        }
        fold.finish()
    }
}

impl MultiStart<GradientDescent> {
    /// Runs all gradient-descent restarts **in lockstep** against a
    /// [`BatchDifferentiableObjective`]: each round gathers every live
    /// restart's pending work — analytic-gradient requests into one
    /// `eval_grad_batch` call (the hook the engine's lane-blocked SoA
    /// adjoint sweep plugs into), Armijo trials and finite-difference
    /// fallback probes into one `eval_batch` call — so a batched backend
    /// sees `starts`-wide batches instead of single points.
    ///
    /// Each restart's evaluation sequence — and therefore its outcome —
    /// is identical to running
    /// [`minimize_differentiable`](Minimizer::minimize_differentiable)
    /// sequentially from the same start points for pointwise-equal
    /// objectives; only the interleaving across restarts changes.
    /// Aggregation (best-of, evaluation totals, termination) matches the
    /// sequential wrapper exactly.
    ///
    /// # Errors
    ///
    /// Same conditions as the sequential path: configuration errors, and
    /// [`OptimError::NoFiniteValue`] if every restart failed to see a
    /// finite value.
    pub fn minimize_batch(
        &self,
        objective: &dyn BatchDifferentiableObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        if self.starts == 0 {
            return Err(OptimError::InvalidConfig {
                option: "starts",
                requirement: "must be >= 1",
            });
        }
        // One scope for the whole lockstep drive (see the Nelder–Mead
        // twin above): rounds interleave restarts, so per-restart
        // attribution is impossible here by construction.
        let _scope = telemetry::TraceScope::enter("restarts.lockstep");
        let dim = domain.dim();
        let mut states = Vec::with_capacity(self.starts);
        for k in 0..self.starts {
            let x0 = Self::start_point(k, domain);
            let mut cfg = self.inner.clone().start(x0);
            if self.hook.is_set() {
                cfg = cfg.hook_handle(self.hook.with_restart(k as u64));
            }
            states.push(GdState::new(&cfg, domain)?);
        }
        let mut vbatch: Vec<Vec<f64>> = Vec::new();
        let mut vvalues: Vec<f64> = Vec::new();
        let mut vspans: Vec<(usize, usize)> = Vec::new();
        let mut gbatch: Vec<Vec<f64>> = Vec::new();
        let mut gvalues: Vec<f64> = Vec::new();
        let mut ggrads: Vec<f64> = Vec::new();
        let mut gidx: Vec<usize> = Vec::new();
        loop {
            vbatch.clear();
            vspans.clear();
            gbatch.clear();
            gidx.clear();
            for (idx, state) in states.iter().enumerate() {
                if state.is_done() {
                    continue;
                }
                if let Some(x) = state.pending_grad() {
                    gidx.push(idx);
                    gbatch.push(x.to_vec());
                } else if !state.pending_values().is_empty() {
                    vspans.push((idx, state.pending_values().len()));
                    vbatch.extend(state.pending_values().iter().cloned());
                }
            }
            if gbatch.is_empty() && vbatch.is_empty() {
                break;
            }
            if !gbatch.is_empty() {
                objective.eval_grad_batch(&gbatch, &mut gvalues, &mut ggrads);
                for (j, &idx) in gidx.iter().enumerate() {
                    states[idx].advance_grad(gvalues[j], &ggrads[j * dim..(j + 1) * dim]);
                }
            }
            if !vbatch.is_empty() {
                objective.eval_batch(&vbatch, &mut vvalues);
                let mut offset = 0;
                for &(idx, len) in &vspans {
                    states[idx].advance_values(&vvalues[offset..offset + len]);
                    offset += len;
                }
            }
        }
        let mut fold = RestartFold::default();
        for state in states {
            fold.observe(state.into_outcome())?;
        }
        fold.finish()
    }
}

/// Shared restart aggregation: best-of selection (strict `<`, earliest
/// restart wins ties), evaluation/iteration totals including
/// finite-value-starved restarts, and the merged termination reason.
/// Both the sequential and the lockstep driver fold through this, so
/// their aggregation semantics can never drift apart.
#[derive(Debug, Default)]
struct RestartFold {
    best: Option<OptimizationOutcome>,
    total_evals: u64,
    total_iters: u64,
    any_converged: bool,
}

impl RestartFold {
    /// Folds one restart's result. `Err(NoFiniteValue)` is tolerated
    /// (its evaluations still count); any other error aborts the fold.
    fn observe(&mut self, run: Result<OptimizationOutcome>) -> Result<()> {
        let run = match run {
            Ok(r) => r,
            Err(OptimError::NoFiniteValue { evaluations }) => {
                self.total_evals += evaluations;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        self.total_evals += run.evaluations;
        self.total_iters += run.iterations;
        self.any_converged |= run.converged();
        if self
            .best
            .as_ref()
            .map(|b| run.best_value < b.best_value)
            .unwrap_or(true)
        {
            self.best = Some(run);
        }
        Ok(())
    }

    /// The aggregated outcome.
    ///
    /// # Errors
    ///
    /// [`OptimError::NoFiniteValue`] if no restart produced one.
    fn finish(self) -> Result<OptimizationOutcome> {
        let mut best = self.best.ok_or(OptimError::NoFiniteValue {
            evaluations: self.total_evals,
        })?;
        best.evaluations = self.total_evals;
        best.iterations = self.total_iters;
        best.termination = if self.any_converged {
            TerminationReason::Converged
        } else {
            TerminationReason::MaxIterations
        };
        Ok(best)
    }
}

/// `i`-th element of the van-der-Corput sequence in `base`.
fn van_der_corput(mut i: usize, base: usize) -> f64 {
    let mut q = 0.0;
    let mut bk = 1.0 / base as f64;
    while i > 0 {
        q += (i % base) as f64 * bk;
        i /= base;
        bk /= base as f64;
    }
    q
}

const PRIMES: [usize; 8] = [2, 3, 5, 7, 11, 13, 17, 19];

/// `k`-th Halton point in `dim` dimensions (unit cube).
fn halton(k: usize, dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|d| van_der_corput(k + 1, PRIMES[d % PRIMES.len()]))
        .collect()
}

/// Trait bound alias: MultiStart works with any minimizer that accepts a
/// start point. We restart by constraining the domain is not possible in
/// general, so we instead pass start points through the supported
/// interface: minimizers expose `start(Vec<f64>)` builders. To stay
/// object-friendly, `MultiStart` is generic over a factory closure.
impl<M: Minimizer + Clone + StartablePoint> Minimizer for MultiStart<M> {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        if self.starts == 0 {
            return Err(OptimError::InvalidConfig {
                option: "starts",
                requirement: "must be >= 1",
            });
        }
        let mut fold = RestartFold::default();
        for k in 0..self.starts {
            let _scope = telemetry::TraceScope::enter(&format!("restart.{k}"));
            let x0 = MultiStart::<M>::start_point(k, domain);
            let mut inner = self.inner.clone().with_start(x0);
            if self.hook.is_set() {
                inner = inner.with_restart_hook(self.hook.with_restart(k as u64));
            }
            let run = inner.minimize(objective, domain);
            fold.observe(run)?;
        }
        fold.finish()
    }

    /// Sequential restarts through the inner minimizer's
    /// **differentiable** entry point, so a gradient-capable inner
    /// algorithm (e.g. [`GradientDescent`]) consumes analytic gradients
    /// from every start — the sequential twin of the lockstep
    /// [`MultiStart::minimize_batch`] driver over the same start points
    /// and the same [`RestartFold`] aggregation.
    fn minimize_differentiable(
        &self,
        objective: &dyn DifferentiableObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        if self.starts == 0 {
            return Err(OptimError::InvalidConfig {
                option: "starts",
                requirement: "must be >= 1",
            });
        }
        let mut fold = RestartFold::default();
        for k in 0..self.starts {
            let _scope = telemetry::TraceScope::enter(&format!("restart.{k}"));
            let x0 = MultiStart::<M>::start_point(k, domain);
            let mut inner = self.inner.clone().with_start(x0);
            if self.hook.is_set() {
                inner = inner.with_restart_hook(self.hook.with_restart(k as u64));
            }
            let run = inner.minimize_differentiable(objective, domain);
            fold.observe(run)?;
        }
        fold.finish()
    }

    fn name(&self) -> &'static str {
        "multi-start"
    }
}

/// Minimizers that accept an explicit start point.
///
/// Implemented by the local methods of this crate so [`MultiStart`] can
/// scatter them; implement it for your own [`Minimizer`] to make it
/// multi-startable.
pub trait StartablePoint {
    /// Returns a copy configured to start at `x0`.
    fn with_start(self, x0: Vec<f64>) -> Self;

    /// Returns a copy whose [`crate::TraceHook`] observations go through
    /// `hook` — how [`MultiStart`] tags each restart with its index. The
    /// default keeps the minimizer unchanged, so methods without hook
    /// support still multi-start (their iterations just go unobserved).
    fn with_restart_hook(self, hook: HookHandle) -> Self
    where
        Self: Sized,
    {
        let _ = hook;
        self
    }
}

impl StartablePoint for NelderMead {
    fn with_start(self, x0: Vec<f64>) -> Self {
        self.start(x0)
    }

    fn with_restart_hook(self, hook: HookHandle) -> Self {
        self.hook_handle(hook)
    }
}

impl StartablePoint for crate::hooke_jeeves::HookeJeeves {
    fn with_start(self, x0: Vec<f64>) -> Self {
        self.start(x0)
    }
}

impl StartablePoint for crate::gradient::GradientDescent {
    fn with_start(self, x0: Vec<f64>) -> Self {
        self.start(x0)
    }

    fn with_restart_hook(self, hook: HookHandle) -> Self {
        self.hook_handle(hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientDescent;
    use crate::testfns::{himmelblau, rastrigin};

    #[test]
    fn halton_points_fill_unit_cube() {
        for k in 0..32 {
            let p = halton(k, 3);
            assert_eq!(p.len(), 3);
            assert!(p.iter().all(|&t| (0.0..1.0).contains(&t)), "{p:?}");
        }
        // First base-2 points: 1/2, 1/4, 3/4, ...
        assert!((halton(0, 1)[0] - 0.5).abs() < 1e-12);
        assert!((halton(1, 1)[0] - 0.25).abs() < 1e-12);
        assert!((halton(2, 1)[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn finds_global_minimum_among_himmelblau_basins() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = MultiStart::default()
            .minimize(&himmelblau, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8, "best = {}", out.best_value);
    }

    #[test]
    fn beats_single_start_on_rastrigin() {
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let single = NelderMead::default()
            .start(vec![3.0, 3.0])
            .minimize(&rastrigin, &domain)
            .unwrap();
        let multi = MultiStart::new(NelderMead::default(), 16)
            .minimize(&rastrigin, &domain)
            .unwrap();
        assert!(multi.best_value <= single.best_value + 1e-9);
        assert!(multi.best_value < 2.0, "multi best = {}", multi.best_value);
    }

    #[test]
    fn works_with_gradient_descent() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = MultiStart::new(GradientDescent::default(), 4)
            .minimize(&crate::testfns::booth, &domain)
            .unwrap();
        assert!(out.best_value < 1e-8);
    }

    #[test]
    fn aggregates_evaluation_counts() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let single = NelderMead::default()
            .minimize(&crate::testfns::sphere, &domain)
            .unwrap();
        let multi = MultiStart::new(NelderMead::default(), 4)
            .minimize(&crate::testfns::sphere, &domain)
            .unwrap();
        assert!(multi.evaluations > single.evaluations);
    }

    #[test]
    fn zero_starts_is_an_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(MultiStart::new(NelderMead::default(), 0)
            .minimize(&crate::testfns::sphere, &domain)
            .is_err());
    }

    #[test]
    fn lockstep_batch_equals_sequential_exactly() {
        // Same restarts, same trajectories: the lockstep driver must
        // reproduce the sequential wrapper bit for bit (best point and
        // value, totals, termination) for a pointwise batch objective.
        for (bounds, f) in [
            (
                vec![(-5.0, 5.0), (-5.0, 5.0)],
                rastrigin as fn(&[f64]) -> f64,
            ),
            (
                vec![(-5.0, 5.0), (-5.0, 5.0)],
                himmelblau as fn(&[f64]) -> f64,
            ),
            (vec![(-4.0, 6.0)], |x: &[f64]| (x[0] - 0.3).powi(2)),
        ] {
            let domain = BoxDomain::from_bounds(&bounds).unwrap();
            for starts in [1usize, 3, 8] {
                let ms = MultiStart::new(NelderMead::default(), starts);
                let seq = ms.minimize(&f, &domain).unwrap();
                let batch = ms.minimize_batch(&f, &domain).unwrap();
                assert_eq!(seq.best_x, batch.best_x, "{starts} starts");
                assert_eq!(seq.best_value.to_bits(), batch.best_value.to_bits());
                assert_eq!(seq.evaluations, batch.evaluations);
                assert_eq!(seq.iterations, batch.iterations);
                assert_eq!(seq.termination, batch.termination);
            }
        }
    }

    #[test]
    fn lockstep_batch_replicates_nan_basin_skipping() {
        let domain = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let f = |x: &[f64]| {
            if x[0] < -0.5 {
                f64::NAN
            } else {
                (x[0] - 0.25).powi(2)
            }
        };
        let ms = MultiStart::new(NelderMead::default(), 6);
        let seq = ms.minimize(&f, &domain).unwrap();
        let batch = ms.minimize_batch(&f, &domain).unwrap();
        assert_eq!(seq.best_x, batch.best_x);
        assert_eq!(seq.evaluations, batch.evaluations);

        // All-NaN objective: both report NoFiniteValue.
        let nan = |_: &[f64]| f64::NAN;
        assert!(matches!(
            ms.minimize_batch(&nan, &domain),
            Err(OptimError::NoFiniteValue { .. })
        ));
    }

    #[test]
    fn lockstep_batch_zero_starts_is_an_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let f = |x: &[f64]| x[0];
        assert!(MultiStart::new(NelderMead::default(), 0)
            .minimize_batch(&f, &domain)
            .is_err());
    }

    #[test]
    fn gd_lockstep_batch_equals_sequential_differentiable_exactly() {
        // An analytic quadratic whose gradient is poisoned on part of
        // the domain, so restarts exercise both the batched
        // analytic-gradient path and the finite-difference fallback.
        struct Quad;
        impl crate::Objective for Quad {
            fn eval(&self, x: &[f64]) -> f64 {
                (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 0.5).powi(2)
            }
        }
        impl crate::DifferentiableObjective for Quad {
            fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
                if x[0] < -2.0 {
                    grad.fill(f64::NAN);
                } else {
                    grad[0] = 2.0 * (x[0] - 1.0);
                    grad[1] = 4.0 * (x[1] + 0.5);
                }
                self.eval(x)
            }
        }
        impl crate::BatchObjective for Quad {
            fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>) {
                out.clear();
                out.extend(points.iter().map(|p| crate::Objective::eval(self, p)));
            }
        }
        impl crate::BatchDifferentiableObjective for Quad {
            fn eval_grad_batch(
                &self,
                points: &[Vec<f64>],
                values: &mut Vec<f64>,
                grads: &mut Vec<f64>,
            ) {
                values.clear();
                grads.clear();
                let mut g = [0.0; 2];
                for p in points {
                    values.push(crate::DifferentiableObjective::value_grad(self, p, &mut g));
                    grads.extend_from_slice(&g);
                }
            }
        }

        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        for starts in [1usize, 3, 8] {
            // Sequential reference: the same start scatter, one
            // `minimize_differentiable` restart at a time, folded by the
            // shared aggregation.
            let mut fold = RestartFold::default();
            for k in 0..starts {
                let cfg = GradientDescent::default()
                    .start(MultiStart::<GradientDescent>::start_point(k, &domain));
                fold.observe(cfg.minimize_differentiable(&Quad, &domain))
                    .unwrap();
            }
            let seq = fold.finish().unwrap();
            let batch = MultiStart::new(GradientDescent::default(), starts)
                .minimize_batch(&Quad, &domain)
                .unwrap();
            assert_eq!(seq.best_x, batch.best_x, "{starts} starts");
            assert_eq!(seq.best_value.to_bits(), batch.best_value.to_bits());
            assert_eq!(seq.evaluations, batch.evaluations, "{starts} starts");
            assert_eq!(seq.iterations, batch.iterations, "{starts} starts");
            assert_eq!(seq.termination, batch.termination, "{starts} starts");
        }
    }

    #[test]
    fn gd_lockstep_zero_starts_is_an_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        struct Flat;
        impl crate::BatchObjective for Flat {
            fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>) {
                out.clear();
                out.resize(points.len(), 0.0);
            }
        }
        impl crate::BatchDifferentiableObjective for Flat {
            fn eval_grad_batch(
                &self,
                points: &[Vec<f64>],
                values: &mut Vec<f64>,
                grads: &mut Vec<f64>,
            ) {
                values.clear();
                values.resize(points.len(), 0.0);
                grads.clear();
                grads.resize(points.len(), 0.0);
            }
        }
        assert!(MultiStart::new(GradientDescent::default(), 0)
            .minimize_batch(&Flat, &domain)
            .is_err());
    }

    #[test]
    fn survives_partial_nan_basins() {
        // Objective NaN on half the domain; restarts landing there are
        // skipped, the rest succeed.
        let domain = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let f = |x: &[f64]| {
            if x[0] < -0.5 {
                f64::NAN
            } else {
                (x[0] - 0.25).powi(2)
            }
        };
        let out = MultiStart::new(NelderMead::default(), 6)
            .minimize(&f, &domain)
            .unwrap();
        assert!((out.best_x[0] - 0.25).abs() < 1e-5);
    }
}
