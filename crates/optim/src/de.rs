//! Differential evolution (DE/rand/1/bin).
//!
//! Population-based global optimizer; the heavyweight option for safety
//! models whose cost surfaces have multiple competing configurations
//! (e.g. several locally-optimal maintenance schedules). Deterministic
//! under a fixed seed.

use crate::domain::BoxDomain;
use crate::trace::HookHandle;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Differential-evolution configuration.
///
/// ```
/// use safety_opt_optim::de::DifferentialEvolution;
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)])?;
/// let out = DifferentialEvolution::default()
///     .seed(42)
///     .minimize(&safety_opt_optim::testfns::rastrigin, &domain)?;
/// assert!(out.best_value < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialEvolution {
    population: usize,
    /// Differential weight `F`.
    weight: f64,
    /// Crossover probability `CR`.
    crossover: f64,
    generations: u64,
    /// Early-stop tolerance on the population value spread.
    f_tol: f64,
    seed: u64,
    record_trace: bool,
    hook: HookHandle,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        Self {
            population: 40,
            weight: 0.7,
            crossover: 0.9,
            generations: 300,
            f_tol: 1e-12,
            seed: 0xDE_2004,
            record_trace: false,
            hook: HookHandle::none(),
        }
    }
}

impl DifferentialEvolution {
    /// Creates an optimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the population size (≥ 4).
    pub fn population(mut self, n: usize) -> Self {
        self.population = n;
        self
    }

    /// Sets the differential weight `F` in `(0, 2]`.
    pub fn weight(mut self, f: f64) -> Self {
        self.weight = f;
        self
    }

    /// Sets the crossover probability `CR` in `[0, 1]`.
    pub fn crossover(mut self, cr: f64) -> Self {
        self.crossover = cr;
        self
    }

    /// Sets the generation budget.
    pub fn generations(mut self, n: u64) -> Self {
        self.generations = n;
        self
    }

    /// Sets the early-stop population-spread tolerance.
    pub fn f_tol(mut self, tol: f64) -> Self {
        self.f_tol = tol;
        self
    }

    /// Sets the RNG seed (runs are deterministic given a seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records a best-so-far trace point per generation.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Installs a live per-generation observer (see [`crate::TraceHook`]);
    /// fires whether or not a trace is recorded.
    pub fn with_trace_hook(mut self, hook: std::sync::Arc<dyn crate::TraceHook>) -> Self {
        self.hook = HookHandle::new(hook);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.population < 4 {
            return Err(OptimError::InvalidConfig {
                option: "population",
                requirement: "must be >= 4",
            });
        }
        if !(self.weight > 0.0 && self.weight <= 2.0) {
            return Err(OptimError::InvalidConfig {
                option: "weight",
                requirement: "must lie in (0, 2]",
            });
        }
        if !(0.0..=1.0).contains(&self.crossover) {
            return Err(OptimError::InvalidConfig {
                option: "crossover",
                requirement: "must lie in [0, 1]",
            });
        }
        if self.generations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "generations",
                requirement: "must be >= 1",
            });
        }
        if !(self.f_tol.is_finite() && self.f_tol >= 0.0) {
            return Err(OptimError::InvalidConfig {
                option: "f_tol",
                requirement: "must be finite and >= 0",
            });
        }
        Ok(())
    }
}

impl DifferentialEvolution {
    /// Synchronous differential evolution through a [`BatchObjective`]:
    /// the initial population and every generation's trial vectors are
    /// evaluated as **one batch per generation**, the hook for compiled
    /// and parallel evaluation backends.
    ///
    /// The generation semantics differ slightly from
    /// [`Minimizer::minimize`]: selection is synchronous (all trials are
    /// judged against the *previous* generation), the textbook parallel
    /// DE variant. Runs are deterministic per seed.
    ///
    /// # Errors
    ///
    /// Same conditions as the scalar path.
    ///
    /// [`BatchObjective`]: crate::BatchObjective
    pub fn minimize_batch(
        &self,
        objective: &dyn crate::BatchObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = domain.dim();
        let np = self.population;
        let mut evaluations = 0u64;

        let mut pop: Vec<Vec<f64>> = (0..np).map(|_| domain.sample(&mut rng)).collect();
        let mut values = Vec::with_capacity(np);
        objective.eval_batch(&pop, &mut values);
        evaluations += np as u64;
        for v in &mut values {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }

        let mut trials: Vec<Vec<f64>> = Vec::with_capacity(np);
        let mut trial_values: Vec<f64> = Vec::with_capacity(np);
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        for _gen in 0..self.generations {
            iterations += 1;
            trials.clear();
            for i in 0..np {
                let mut pick = || loop {
                    let k = rng.gen_range(0..np);
                    if k != i {
                        return k;
                    }
                };
                let (a, b, c) = {
                    let a = pick();
                    let b = loop {
                        let k = pick();
                        if k != a {
                            break k;
                        }
                    };
                    let c = loop {
                        let k = pick();
                        if k != a && k != b {
                            break k;
                        }
                    };
                    (a, b, c)
                };
                let forced = rng.gen_range(0..n);
                let mut trial = pop[i].clone();
                for j in 0..n {
                    if j == forced || rng.gen::<f64>() < self.crossover {
                        let v = pop[a][j] + self.weight * (pop[b][j] - pop[c][j]);
                        trial[j] = domain.interval(j).clamp(v);
                    }
                }
                trials.push(trial);
            }
            objective.eval_batch(&trials, &mut trial_values);
            evaluations += np as u64;
            for (i, trial) in trials.iter().enumerate() {
                let ft = if trial_values[i].is_finite() {
                    trial_values[i]
                } else {
                    f64::INFINITY
                };
                if ft <= values[i] {
                    pop[i].clone_from(trial);
                    values[i] = ft;
                }
            }
            let (min_v, max_v) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            if self.record_trace || self.hook.is_set() {
                let point = TracePoint {
                    iteration: iterations,
                    evaluations,
                    best_value: min_v,
                };
                self.hook.emit(0, &point);
                if self.record_trace {
                    trace.push(point);
                }
            }
            if max_v.is_finite() && (max_v - min_v) <= self.f_tol {
                termination = TerminationReason::Converged;
                break;
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("population non-empty");
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue { evaluations });
        }
        Ok(OptimizationOutcome {
            best_x: pop[best_idx].clone(),
            best_value,
            evaluations,
            iterations,
            termination,
            trace,
        })
    }
}

impl Minimizer for DifferentialEvolution {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        let f = CountingObjective::new(objective);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = domain.dim();
        let np = self.population;

        let mut pop: Vec<Vec<f64>> = (0..np).map(|_| domain.sample(&mut rng)).collect();
        let mut values: Vec<f64> = pop.iter().map(|x| f.eval_penalized(x)).collect();

        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        for _gen in 0..self.generations {
            iterations += 1;
            for i in 0..np {
                // Pick three distinct indices ≠ i.
                let mut pick = || loop {
                    let k = rng.gen_range(0..np);
                    if k != i {
                        return k;
                    }
                };
                let (a, b, c) = {
                    let a = pick();
                    let b = loop {
                        let k = pick();
                        if k != a {
                            break k;
                        }
                    };
                    let c = loop {
                        let k = pick();
                        if k != a && k != b {
                            break k;
                        }
                    };
                    (a, b, c)
                };
                // Mutation + binomial crossover.
                let forced = rng.gen_range(0..n);
                let mut trial = pop[i].clone();
                for j in 0..n {
                    if j == forced || rng.gen::<f64>() < self.crossover {
                        let v = pop[a][j] + self.weight * (pop[b][j] - pop[c][j]);
                        trial[j] = domain.interval(j).clamp(v);
                    }
                }
                let ft = f.eval_penalized(&trial);
                if ft <= values[i] {
                    pop[i] = trial;
                    values[i] = ft;
                }
            }
            let (min_v, max_v) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            if self.record_trace || self.hook.is_set() {
                let point = TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: min_v,
                };
                self.hook.emit(0, &point);
                if self.record_trace {
                    trace.push(point);
                }
            }
            if max_v.is_finite() && (max_v - min_v) <= self.f_tol {
                termination = TerminationReason::Converged;
                break;
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("population non-empty");
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: pop[best_idx].clone(),
            best_value,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "differential-evolution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{rastrigin, rosenbrock, sphere};

    #[test]
    fn solves_rastrigin_globally() {
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let out = DifferentialEvolution::default()
            .seed(3)
            .minimize(&rastrigin, &domain)
            .unwrap();
        assert!(out.best_value < 1e-4, "best = {}", out.best_value);
    }

    #[test]
    fn solves_rosenbrock() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let out = DifferentialEvolution::default()
            .generations(600)
            .minimize(&rosenbrock, &domain)
            .unwrap();
        assert!(out.best_value < 1e-6, "best = {}", out.best_value);
    }

    #[test]
    fn deterministic_given_seed() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0); 3]).unwrap();
        let a = DifferentialEvolution::default()
            .seed(9)
            .minimize(&sphere, &domain)
            .unwrap();
        let b = DifferentialEvolution::default()
            .seed(9)
            .minimize(&sphere, &domain)
            .unwrap();
        assert_eq!(a.best_x, b.best_x);
    }

    #[test]
    fn early_stops_when_population_collapses() {
        let domain = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let out = DifferentialEvolution::default()
            .f_tol(1e-9)
            .minimize(&sphere, &domain)
            .unwrap();
        assert_eq!(out.termination, TerminationReason::Converged);
        assert!(out.iterations < 300);
    }

    #[test]
    fn rejects_bad_config() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(DifferentialEvolution::default()
            .population(3)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(DifferentialEvolution::default()
            .weight(0.0)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(DifferentialEvolution::default()
            .crossover(1.5)
            .minimize(&sphere, &domain)
            .is_err());
    }

    #[test]
    fn stays_inside_domain() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0), (5.0, 6.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "outside: {x:?}");
            sphere(x)
        };
        DifferentialEvolution::default()
            .generations(20)
            .minimize(&f, &domain)
            .unwrap();
    }

    #[test]
    fn batch_path_solves_rastrigin_deterministically() {
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let de = DifferentialEvolution::default().seed(3);
        let a = de.minimize_batch(&rastrigin, &domain).unwrap();
        let b = de.minimize_batch(&rastrigin, &domain).unwrap();
        assert_eq!(a.best_x, b.best_x);
        assert!(a.best_value < 1e-4, "best = {}", a.best_value);
        // One batch per generation: initial population + per-gen trials.
        assert_eq!(a.evaluations, 40 * (a.iterations + 1));
    }

    #[test]
    fn batch_path_handles_partial_infeasibility() {
        let domain = BoxDomain::from_bounds(&[(-2.0, 2.0)]).unwrap();
        let f = |x: &[f64]| {
            if x[0] < -1.0 {
                f64::INFINITY
            } else {
                (x[0] - 0.5).powi(2)
            }
        };
        let out = DifferentialEvolution::default()
            .generations(80)
            .minimize_batch(&f, &domain)
            .unwrap();
        assert!((out.best_x[0] - 0.5).abs() < 1e-3);
    }
}
