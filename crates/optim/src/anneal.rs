//! Simulated annealing.
//!
//! Stochastic global search for cost functions that are multimodal or
//! non-smooth — e.g. safety models with discrete regime changes in their
//! environment model. Gaussian proposals scaled to the domain, Metropolis
//! acceptance, geometric cooling, and a deterministic seed so runs are
//! reproducible.

use crate::domain::BoxDomain;
use crate::trace::HookHandle;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing configuration.
///
/// ```
/// use safety_opt_optim::anneal::SimulatedAnnealing;
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)])?;
/// let out = SimulatedAnnealing::default()
///     .seed(42)
///     .minimize(&safety_opt_optim::testfns::rastrigin, &domain)?;
/// assert!(out.best_value < 1.0); // escapes local minima
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealing {
    initial_temperature: f64,
    cooling: f64,
    iterations_per_temperature: u64,
    temperature_levels: u64,
    /// Proposal standard deviation as a fraction of each dimension width.
    proposal_scale: f64,
    seed: u64,
    record_trace: bool,
    hook: HookHandle,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            initial_temperature: 1.0,
            cooling: 0.93,
            iterations_per_temperature: 60,
            temperature_levels: 120,
            proposal_scale: 0.12,
            seed: 0x5AFE_0907,
            record_trace: false,
            hook: HookHandle::none(),
        }
    }
}

impl SimulatedAnnealing {
    /// Creates an annealer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the starting temperature (relative to objective scale; the
    /// annealer auto-calibrates by multiplying with an initial value
    /// spread estimate).
    pub fn initial_temperature(mut self, t: f64) -> Self {
        self.initial_temperature = t;
        self
    }

    /// Sets the geometric cooling factor in `(0, 1)`.
    pub fn cooling(mut self, c: f64) -> Self {
        self.cooling = c;
        self
    }

    /// Sets proposals per temperature level.
    pub fn iterations_per_temperature(mut self, n: u64) -> Self {
        self.iterations_per_temperature = n;
        self
    }

    /// Sets the number of temperature levels.
    pub fn temperature_levels(mut self, n: u64) -> Self {
        self.temperature_levels = n;
        self
    }

    /// Sets the Gaussian proposal scale (fraction of dimension width).
    pub fn proposal_scale(mut self, s: f64) -> Self {
        self.proposal_scale = s;
        self
    }

    /// Sets the RNG seed (runs are deterministic given a seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records a best-so-far trace point per temperature level.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Installs a live per-temperature-level observer (see
    /// [`crate::TraceHook`]); fires whether or not a trace is recorded.
    pub fn with_trace_hook(mut self, hook: std::sync::Arc<dyn crate::TraceHook>) -> Self {
        self.hook = HookHandle::new(hook);
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.initial_temperature.is_finite() && self.initial_temperature > 0.0) {
            return Err(OptimError::InvalidConfig {
                option: "initial_temperature",
                requirement: "must be finite and > 0",
            });
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err(OptimError::InvalidConfig {
                option: "cooling",
                requirement: "must lie in (0, 1)",
            });
        }
        if self.iterations_per_temperature == 0 || self.temperature_levels == 0 {
            return Err(OptimError::InvalidConfig {
                option: "iterations",
                requirement: "levels and iterations per level must be >= 1",
            });
        }
        if !(self.proposal_scale.is_finite() && self.proposal_scale > 0.0) {
            return Err(OptimError::InvalidConfig {
                option: "proposal_scale",
                requirement: "must be finite and > 0",
            });
        }
        Ok(())
    }
}

/// Standard-normal variate via Box–Muller (two uniforms).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl SimulatedAnnealing {
    /// Population annealing through a [`BatchObjective`]: `chains`
    /// independent Metropolis chains advance in lockstep, and every
    /// step's proposals (one per chain) are evaluated as **one batch** —
    /// the hook for compiled and parallel evaluation backends. The best
    /// point across all chains is reported.
    ///
    /// Runs are deterministic per seed; chain `k` of a `chains = 1` run
    /// follows different proposals than [`Minimizer::minimize`] (the RNG
    /// stream is consumed chain-major per step), but the algorithm and
    /// cooling schedule are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as the scalar path, plus
    /// [`OptimError::InvalidConfig`] for `chains == 0`.
    ///
    /// [`BatchObjective`]: crate::BatchObjective
    pub fn minimize_batch(
        &self,
        objective: &dyn crate::BatchObjective,
        domain: &BoxDomain,
        chains: usize,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        if chains == 0 {
            return Err(OptimError::InvalidConfig {
                option: "chains",
                requirement: "must be >= 1",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let widths = domain.widths();
        let mut evaluations = 0u64;

        // Chain starts: domain center plus random scatter.
        let mut current: Vec<Vec<f64>> = (0..chains)
            .map(|k| {
                if k == 0 {
                    domain.center()
                } else {
                    domain.sample(&mut rng)
                }
            })
            .collect();
        let mut f_current = Vec::with_capacity(chains);
        objective.eval_batch(&current, &mut f_current);
        evaluations += chains as u64;
        for v in &mut f_current {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }

        let start_best = f_current
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, &v)| (i, v))
            .unwrap_or((0, f64::INFINITY));
        let mut best = current[start_best.0].clone();
        let mut f_best = start_best.1;

        // Temperature calibration from the start spread (mirrors the
        // scalar path's probe-based estimate).
        let spread = f_current
            .iter()
            .filter(|v| v.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let spread = if spread.1 > spread.0 {
            spread.1 - spread.0
        } else {
            0.0
        };
        let mut temperature = self.initial_temperature * spread.max(1e-12);

        let mut proposals: Vec<Vec<f64>> = Vec::with_capacity(chains);
        let mut f_proposals: Vec<f64> = Vec::with_capacity(chains);
        let mut trace = Vec::new();
        let mut iterations = 0;

        for _level in 0..self.temperature_levels {
            iterations += 1;
            for _ in 0..self.iterations_per_temperature {
                proposals.clear();
                for chain in &current {
                    let trial: Vec<f64> = chain
                        .iter()
                        .zip(&widths)
                        .enumerate()
                        .map(|(i, (&xi, &w))| {
                            domain
                                .interval(i)
                                .clamp(xi + gaussian(&mut rng) * self.proposal_scale * w)
                        })
                        .collect();
                    proposals.push(trial);
                }
                objective.eval_batch(&proposals, &mut f_proposals);
                evaluations += chains as u64;
                for k in 0..chains {
                    let f_trial = if f_proposals[k].is_finite() {
                        f_proposals[k]
                    } else {
                        f64::INFINITY
                    };
                    let accept = if f_trial <= f_current[k] {
                        true
                    } else if temperature > 0.0 {
                        let delta = f_trial - f_current[k];
                        rng.gen::<f64>() < (-delta / temperature).exp()
                    } else {
                        false
                    };
                    if accept {
                        std::mem::swap(&mut current[k], &mut proposals[k]);
                        f_current[k] = f_trial;
                        if f_trial < f_best {
                            best.clone_from(&current[k]);
                            f_best = f_trial;
                        }
                    }
                }
            }
            temperature *= self.cooling;
            if self.record_trace || self.hook.is_set() {
                let point = TracePoint {
                    iteration: iterations,
                    evaluations,
                    best_value: f_best,
                };
                self.hook.emit(0, &point);
                if self.record_trace {
                    trace.push(point);
                }
            }
        }

        if !f_best.is_finite() {
            return Err(OptimError::NoFiniteValue { evaluations });
        }
        Ok(OptimizationOutcome {
            best_x: best,
            best_value: f_best,
            evaluations,
            iterations,
            termination: TerminationReason::MaxIterations,
            trace,
        })
    }
}

impl Minimizer for SimulatedAnnealing {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        let f = CountingObjective::new(objective);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let widths = domain.widths();

        // Calibrate the temperature to the objective's value scale from a
        // handful of random probes.
        let mut current = domain.center();
        let mut f_current = f.eval_penalized(&current);
        let mut spread = 0.0f64;
        let mut probe_best = (current.clone(), f_current);
        for _ in 0..16 {
            let x = domain.sample(&mut rng);
            let v = f.eval_penalized(&x);
            if v < probe_best.1 {
                probe_best = (x.clone(), v);
            }
            if v.is_finite() && f_current.is_finite() {
                spread = spread.max((v - f_current).abs());
            }
        }
        if probe_best.1 < f_current {
            current = probe_best.0.clone();
            f_current = probe_best.1;
        }
        let mut best = current.clone();
        let mut f_best = f_current;
        let mut temperature = self.initial_temperature * spread.max(1e-12);

        let mut trace = Vec::new();
        let mut iterations = 0;

        for _level in 0..self.temperature_levels {
            iterations += 1;
            for _ in 0..self.iterations_per_temperature {
                let trial: Vec<f64> = current
                    .iter()
                    .zip(&widths)
                    .enumerate()
                    .map(|(i, (&xi, &w))| {
                        domain
                            .interval(i)
                            .clamp(xi + gaussian(&mut rng) * self.proposal_scale * w)
                    })
                    .collect();
                let f_trial = f.eval_penalized(&trial);
                let accept = if f_trial <= f_current {
                    true
                } else if temperature > 0.0 {
                    let delta = f_trial - f_current;
                    rng.gen::<f64>() < (-delta / temperature).exp()
                } else {
                    false
                };
                if accept {
                    current = trial;
                    f_current = f_trial;
                    if f_current < f_best {
                        best = current.clone();
                        f_best = f_current;
                    }
                }
            }
            temperature *= self.cooling;
            if self.record_trace || self.hook.is_set() {
                let point = TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: f_best,
                };
                self.hook.emit(0, &point);
                if self.record_trace {
                    trace.push(point);
                }
            }
        }

        if !f_best.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: best,
            best_value: f_best,
            evaluations: f.count(),
            iterations,
            termination: TerminationReason::MaxIterations,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{rastrigin, sphere};

    #[test]
    fn finds_near_global_minimum_of_rastrigin() {
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let out = SimulatedAnnealing::default()
            .seed(7)
            .minimize(&rastrigin, &domain)
            .unwrap();
        assert!(out.best_value < 1.1, "best = {}", out.best_value);
    }

    #[test]
    fn deterministic_given_seed() {
        let domain = BoxDomain::from_bounds(&[(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let a = SimulatedAnnealing::default()
            .seed(123)
            .minimize(&sphere, &domain)
            .unwrap();
        let b = SimulatedAnnealing::default()
            .seed(123)
            .minimize(&sphere, &domain)
            .unwrap();
        assert_eq!(a.best_x, b.best_x);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn different_seeds_explore_differently() {
        // Asymmetric domain so the center start is not already optimal.
        let domain = BoxDomain::from_bounds(&[(-3.0, 5.12), (-5.12, 2.0)]).unwrap();
        let a = SimulatedAnnealing::default()
            .seed(1)
            .minimize(&rastrigin, &domain)
            .unwrap();
        let b = SimulatedAnnealing::default()
            .seed(2)
            .minimize(&rastrigin, &domain)
            .unwrap();
        // Both should be decent, but the trajectories differ.
        assert_ne!(a.best_x, b.best_x);
        assert!(a.best_value < 2.0 && b.best_value < 2.0);
    }

    #[test]
    fn stays_inside_domain() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0), (10.0, 11.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "outside: {x:?}");
            sphere(x)
        };
        SimulatedAnnealing::default().minimize(&f, &domain).unwrap();
    }

    #[test]
    fn rejects_bad_config() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(SimulatedAnnealing::default()
            .cooling(1.5)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(SimulatedAnnealing::default()
            .initial_temperature(-1.0)
            .minimize(&sphere, &domain)
            .is_err());
        assert!(SimulatedAnnealing::default()
            .proposal_scale(0.0)
            .minimize(&sphere, &domain)
            .is_err());
    }

    #[test]
    fn all_nan_objective_is_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(matches!(
            SimulatedAnnealing::default().minimize(&|_: &[f64]| f64::NAN, &domain),
            Err(OptimError::NoFiniteValue { .. })
        ));
    }

    #[test]
    fn batch_path_finds_minimum_with_lockstep_chains() {
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let a = SimulatedAnnealing::default()
            .seed(7)
            .minimize_batch(&rastrigin, &domain, 8)
            .unwrap();
        let b = SimulatedAnnealing::default()
            .seed(7)
            .minimize_batch(&rastrigin, &domain, 8)
            .unwrap();
        assert_eq!(a.best_x, b.best_x, "deterministic per seed");
        assert!(a.best_value < 1.1, "best = {}", a.best_value);
        assert!(domain.contains(&a.best_x));
        assert!(SimulatedAnnealing::default()
            .minimize_batch(&sphere, &domain, 0)
            .is_err());
    }
}
