//! Compact search domains.
//!
//! The paper restricts free parameters to compact intervals so the minimum
//! of the cost function is guaranteed to exist (Sect. III-B). A
//! [`BoxDomain`] is the Cartesian product of such [`Interval`]s; every
//! optimizer in this crate takes one and guarantees never to evaluate the
//! objective outside it.

use crate::{OptimError, Result};
use rand::Rng;

/// A compact real interval `[lo, hi]` with `lo < hi`, both finite.
///
/// ```
/// use safety_opt_optim::domain::Interval;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let timer_range = Interval::new(5.0, 30.0)?; // minutes
/// assert_eq!(timer_range.clamp(42.0), 30.0);
/// assert!(timer_range.contains(19.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInterval`] unless both bounds are
    /// finite and `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if lo.is_finite() && hi.is_finite() && lo < hi {
            Ok(Self { lo, hi })
        } else {
            Err(OptimError::InvalidInterval { lo, hi })
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `hi − lo` (always positive).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn center(&self) -> f64 {
        self.lo + 0.5 * self.width()
    }

    /// `true` if `x` lies in `[lo, hi]`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Projects `x` onto the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Linear interpolation: `t = 0` maps to `lo`, `t = 1` to `hi`.
    pub fn lerp(&self, t: f64) -> f64 {
        self.clamp(self.lo + t * self.width())
    }

    /// Uniform random point in the interval.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lerp(rng.gen::<f64>())
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The Cartesian product of compact intervals — an axis-aligned box.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// // The Elbtunnel search space: two timer runtimes in [5, 30] minutes.
/// let domain = BoxDomain::from_bounds(&[(5.0, 30.0), (5.0, 30.0)])?;
/// assert_eq!(domain.dim(), 2);
/// assert_eq!(domain.project(&[0.0, 42.0]), vec![5.0, 30.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoxDomain {
    intervals: Vec<Interval>,
}

impl BoxDomain {
    /// Creates a box from explicit intervals.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::EmptyDomain`] if `intervals` is empty.
    pub fn new(intervals: Vec<Interval>) -> Result<Self> {
        if intervals.is_empty() {
            return Err(OptimError::EmptyDomain);
        }
        Ok(Self { intervals })
    }

    /// Creates a box from `(lo, hi)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::EmptyDomain`] for an empty slice and
    /// [`OptimError::InvalidInterval`] for any invalid pair.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Result<Self> {
        let intervals = bounds
            .iter()
            .map(|&(lo, hi)| Interval::new(lo, hi))
            .collect::<Result<Vec<_>>>()?;
        Self::new(intervals)
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.intervals.len()
    }

    /// The intervals making up the box.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn interval(&self, i: usize) -> Interval {
        self.intervals[i]
    }

    /// `true` if every coordinate of `x` lies inside its interval and the
    /// dimensionality matches.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim() && x.iter().zip(&self.intervals).all(|(&v, iv)| iv.contains(v))
    }

    /// Projects `x` coordinate-wise onto the box.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "point/domain dimension mismatch");
        x.iter()
            .zip(&self.intervals)
            .map(|(&v, iv)| iv.clamp(v))
            .collect()
    }

    /// The center of the box.
    pub fn center(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::center).collect()
    }

    /// Width of each dimension.
    pub fn widths(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::width).collect()
    }

    /// Uniform random point in the box.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.intervals.iter().map(|iv| iv.sample(rng)).collect()
    }

    /// The largest dimension width — a useful convergence scale.
    pub fn max_width(&self) -> f64 {
        self.intervals
            .iter()
            .map(Interval::width)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for BoxDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_rejects_bad_bounds() {
        assert!(Interval::new(1.0, 1.0).is_err());
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn interval_geometry() {
        let iv = Interval::new(5.0, 30.0).unwrap();
        assert_eq!(iv.width(), 25.0);
        assert_eq!(iv.center(), 17.5);
        assert!(iv.contains(5.0) && iv.contains(30.0));
        assert!(!iv.contains(4.999));
        assert_eq!(iv.clamp(-10.0), 5.0);
        assert_eq!(iv.clamp(31.0), 30.0);
        assert_eq!(iv.lerp(0.0), 5.0);
        assert_eq!(iv.lerp(1.0), 30.0);
        assert_eq!(iv.lerp(0.5), 17.5);
    }

    #[test]
    fn interval_samples_stay_inside() {
        let iv = Interval::new(-3.0, 7.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(iv.contains(iv.sample(&mut rng)));
        }
    }

    #[test]
    fn box_rejects_empty() {
        assert_eq!(BoxDomain::from_bounds(&[]), Err(OptimError::EmptyDomain));
    }

    #[test]
    fn box_propagates_interval_errors() {
        assert!(matches!(
            BoxDomain::from_bounds(&[(0.0, 1.0), (3.0, 2.0)]),
            Err(OptimError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn box_contains_and_projects() {
        let d = BoxDomain::from_bounds(&[(0.0, 1.0), (10.0, 20.0)]).unwrap();
        assert!(d.contains(&[0.5, 15.0]));
        assert!(!d.contains(&[1.5, 15.0]));
        assert!(!d.contains(&[0.5])); // wrong dimension
        assert_eq!(d.project(&[-1.0, 25.0]), vec![0.0, 20.0]);
        assert_eq!(d.center(), vec![0.5, 15.0]);
        assert_eq!(d.max_width(), 10.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn project_panics_on_wrong_dimension() {
        let d = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let _ = d.project(&[0.5, 0.5]);
    }

    #[test]
    fn box_samples_stay_inside() {
        let d = BoxDomain::from_bounds(&[(0.0, 1.0), (-5.0, 5.0), (100.0, 101.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            assert!(d.contains(&d.sample(&mut rng)));
        }
    }

    #[test]
    fn display_formats() {
        let d = BoxDomain::from_bounds(&[(0.0, 1.0), (5.0, 30.0)]).unwrap();
        assert_eq!(d.to_string(), "[0, 1] × [5, 30]");
    }
}
