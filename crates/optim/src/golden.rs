//! Golden-section search — 1-D minimization without derivatives.
//!
//! Reliable for the unimodal single-parameter problems that appear when
//! all but one free parameter of a safety model are frozen (the paper's
//! Fig. 6 analysis varies only the timer-2 runtime, for example).

use crate::domain::BoxDomain;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason, TracePoint,
};

/// Golden-section search configuration.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::golden::GoldenSection;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(0.0, 10.0)])?;
/// let f = |x: &[f64]| (x[0] - 2.0).powi(2);
/// let out = GoldenSection::default().minimize(&f, &domain)?;
/// assert!((out.best_x[0] - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenSection {
    tol: f64,
    max_iterations: u64,
    record_trace: bool,
}

impl Default for GoldenSection {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            max_iterations: 200,
            record_trace: false,
        }
    }
}

impl GoldenSection {
    /// Creates a search with default settings (`tol = 1e-9`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the absolute bracket-width tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Records a best-so-far trace point per iteration.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.tol.is_finite() && self.tol > 0.0) {
            return Err(OptimError::InvalidConfig {
                option: "tol",
                requirement: "must be finite and > 0",
            });
        }
        if self.max_iterations == 0 {
            return Err(OptimError::InvalidConfig {
                option: "max_iterations",
                requirement: "must be >= 1",
            });
        }
        Ok(())
    }
}

/// `1/φ` — the golden ratio section constant.
const INV_PHI: f64 = 0.618_033_988_749_894_8;

impl Minimizer for GoldenSection {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        if domain.dim() != 1 {
            return Err(OptimError::DimensionMismatch {
                expected: "exactly 1 dimension",
                got: domain.dim(),
            });
        }
        let f = CountingObjective::new(objective);
        let iv = domain.interval(0);
        let (mut a, mut b) = (iv.lo(), iv.hi());
        let mut c = b - INV_PHI * (b - a);
        let mut d = a + INV_PHI * (b - a);
        let mut fc = f.eval_penalized(&[c]);
        let mut fd = f.eval_penalized(&[d]);
        let mut trace = Vec::new();
        let mut iterations = 0;
        let mut termination = TerminationReason::MaxIterations;

        while iterations < self.max_iterations {
            iterations += 1;
            if fc <= fd {
                b = d;
                d = c;
                fd = fc;
                c = b - INV_PHI * (b - a);
                fc = f.eval_penalized(&[c]);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + INV_PHI * (b - a);
                fd = f.eval_penalized(&[d]);
            }
            if self.record_trace {
                trace.push(TracePoint {
                    iteration: iterations,
                    evaluations: f.count(),
                    best_value: fc.min(fd),
                });
            }
            if (b - a).abs() <= self.tol {
                termination = TerminationReason::Converged;
                break;
            }
        }

        let (best_x, best_value) = if fc <= fd { (c, fc) } else { (d, fd) };
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x: vec![best_x],
            best_value,
            evaluations: f.count(),
            iterations,
            termination,
            trace,
        })
    }

    fn name(&self) -> &'static str {
        "golden-section"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::unimodal_1d;

    #[test]
    fn finds_quadratic_minimum() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0)]).unwrap();
        let out = GoldenSection::default()
            .minimize(&|x: &[f64]| (x[0] + 3.0).powi(2) + 1.0, &domain)
            .unwrap();
        assert!((out.best_x[0] + 3.0).abs() < 1e-6);
        assert!((out.best_value - 1.0).abs() < 1e-10);
        assert!(out.converged());
    }

    #[test]
    fn finds_asymmetric_minimum() {
        let domain = BoxDomain::from_bounds(&[(0.0, 10.0)]).unwrap();
        let out = GoldenSection::default()
            .minimize(&unimodal_1d, &domain)
            .unwrap();
        assert!((out.best_x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_minimum_is_approached() {
        // Monotone increasing on the domain → minimum at the left edge.
        let domain = BoxDomain::from_bounds(&[(1.0, 4.0)]).unwrap();
        let out = GoldenSection::default()
            .minimize(&|x: &[f64]| x[0], &domain)
            .unwrap();
        assert!((out.best_x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_multidimensional_domain() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let err = GoldenSection::default()
            .minimize(&crate::testfns::sphere, &domain)
            .unwrap_err();
        assert!(matches!(err, OptimError::DimensionMismatch { got: 2, .. }));
    }

    #[test]
    fn rejects_bad_config() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(GoldenSection::default()
            .tol(0.0)
            .minimize(&|x: &[f64]| x[0], &domain)
            .is_err());
        assert!(GoldenSection::default()
            .max_iterations(0)
            .minimize(&|x: &[f64]| x[0], &domain)
            .is_err());
    }

    #[test]
    fn all_nan_objective_is_an_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let err = GoldenSection::default()
            .minimize(&|_: &[f64]| f64::NAN, &domain)
            .unwrap_err();
        assert!(matches!(err, OptimError::NoFiniteValue { .. }));
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let domain = BoxDomain::from_bounds(&[(0.0, 10.0)]).unwrap();
        let out = GoldenSection::default()
            .record_trace(true)
            .minimize(&unimodal_1d, &domain)
            .unwrap();
        assert!(!out.trace.is_empty());
        // Best-so-far must be non-increasing.
        for w in out.trace.windows(2) {
            assert!(w[1].best_value <= w[0].best_value + 1e-12);
        }
    }

    #[test]
    fn never_evaluates_outside_domain() {
        let domain = BoxDomain::from_bounds(&[(2.0, 5.0)]).unwrap();
        let d2 = domain.clone();
        let f = move |x: &[f64]| {
            assert!(d2.contains(x), "evaluated outside domain: {x:?}");
            (x[0] - 3.0).powi(2)
        };
        GoldenSection::default().minimize(&f, &domain).unwrap();
    }
}
