//! Exhaustive grid search, optionally parallel.
//!
//! The paper explicitly endorses brute force when nothing smarter applies:
//! *"It is possible to test large numbers of combinations in very short
//! time. So this technique gives a good impression about the quantitative
//! dependencies between mean costs and free parameters."* Grid search is
//! also what regenerates the Fig. 5 cost surface: [`GridSearch::evaluate`]
//! returns every grid point with its objective value, ready for plotting.

use crate::domain::BoxDomain;
use crate::{
    CountingObjective, Minimizer, Objective, OptimError, OptimizationOutcome, Result,
    TerminationReason,
};

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridPoint {
    /// Coordinates of the point.
    pub x: Vec<f64>,
    /// Objective value (may be non-finite if the objective produced one).
    pub value: f64,
}

/// Exhaustive search over a regular lattice.
///
/// `points_per_dim` grid lines per dimension, endpoints included.
///
/// ```
/// use safety_opt_optim::domain::BoxDomain;
/// use safety_opt_optim::grid::GridSearch;
/// use safety_opt_optim::Minimizer;
///
/// # fn main() -> Result<(), safety_opt_optim::OptimError> {
/// let domain = BoxDomain::from_bounds(&[(0.0, 4.0), (0.0, 4.0)])?;
/// let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] - 3.0).powi(2);
/// let out = GridSearch::new(41).minimize(&f, &domain)?;
/// assert!((out.best_x[0] - 2.0).abs() < 0.06);
/// assert!((out.best_x[1] - 3.0).abs() < 0.06);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearch {
    points_per_dim: usize,
    threads: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            points_per_dim: 101,
            threads: 1,
        }
    }
}

impl GridSearch {
    /// Creates a grid search with `points_per_dim` lattice lines per
    /// dimension (endpoints included; must be ≥ 2).
    pub fn new(points_per_dim: usize) -> Self {
        Self {
            points_per_dim,
            threads: 1,
        }
    }

    /// Evaluates grid rows on `threads` worker threads (std scoped).
    ///
    /// The objective must be `Sync`; use [`GridSearch::minimize`] from the
    /// [`Minimizer`] trait for the single-threaded version that accepts
    /// any objective.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.points_per_dim < 2 {
            return Err(OptimError::InvalidConfig {
                option: "points_per_dim",
                requirement: "must be >= 2",
            });
        }
        Ok(())
    }

    /// Coordinates of grid line `k` (of `n`) in `interval`. The clamp
    /// guards against the multiply-then-divide rounding 1 ulp past `hi`.
    fn line(&self, lo: f64, hi: f64, k: usize) -> f64 {
        let n = self.points_per_dim;
        (lo + (hi - lo) * k as f64 / (n - 1) as f64).clamp(lo, hi)
    }

    fn point(&self, domain: &BoxDomain, mut index: usize) -> Vec<f64> {
        let n = self.points_per_dim;
        let mut x = Vec::with_capacity(domain.dim());
        for iv in domain.intervals() {
            let k = index % n;
            index /= n;
            x.push(self.line(iv.lo(), iv.hi(), k));
        }
        x
    }

    /// Total number of lattice points for `domain`.
    pub fn total_points(&self, domain: &BoxDomain) -> usize {
        self.points_per_dim.pow(domain.dim() as u32)
    }

    /// Exhaustive minimization through a [`BatchObjective`]: the lattice
    /// is enumerated in fixed-size batches so compiled/parallel backends
    /// amortize per-call overhead over thousands of points.
    ///
    /// Equivalent to [`GridSearch::minimize`] for pointwise-equal
    /// objectives (same lattice, same tie-breaking: the first point of
    /// the enumeration wins ties).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GridSearch::minimize`].
    pub fn minimize_batch(
        &self,
        objective: &dyn crate::BatchObjective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        let total = self.total_points(domain);
        const BATCH: usize = 4096;
        let mut tracker = crate::objective::BatchTracker::new();
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(BATCH.min(total));
        let mut values: Vec<f64> = Vec::with_capacity(BATCH.min(total));
        let mut start = 0;
        while start < total {
            let end = (start + BATCH).min(total);
            points.clear();
            points.extend((start..end).map(|i| self.point(domain, i)));
            objective.eval_batch(&points, &mut values);
            tracker.observe(&points, &values);
            start = end;
        }
        let best_x = tracker.best_x.ok_or(OptimError::NoFiniteValue {
            evaluations: tracker.evaluations,
        })?;
        Ok(OptimizationOutcome {
            best_x,
            best_value: tracker.best_value,
            evaluations: tracker.evaluations,
            iterations: total as u64,
            termination: TerminationReason::Exhausted,
            trace: Vec::new(),
        })
    }

    /// Evaluates the full lattice and returns every point — the raw data
    /// behind cost-surface figures.
    ///
    /// Runs on the configured number of threads when the objective is
    /// `Sync`.
    ///
    /// # Errors
    ///
    /// Returns configuration errors; non-finite objective values are kept
    /// in the output (marked points) rather than treated as errors.
    pub fn evaluate<F>(&self, objective: &F, domain: &BoxDomain) -> Result<Vec<GridPoint>>
    where
        F: Objective + Sync,
    {
        self.validate()?;
        let total = self.total_points(domain);
        if self.threads <= 1 || total < 1024 {
            return Ok((0..total)
                .map(|i| {
                    let x = self.point(domain, i);
                    let value = objective.eval(&x);
                    GridPoint { x, value }
                })
                .collect());
        }
        let chunk = total.div_ceil(self.threads);
        let mut results: Vec<Vec<GridPoint>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..self.threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(total);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    (start..end)
                        .map(|i| {
                            let x = self.point(domain, i);
                            let value = objective.eval(&x);
                            GridPoint { x, value }
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.push(h.join().expect("grid worker panicked"));
            }
        });
        Ok(results.into_iter().flatten().collect())
    }
}

impl Minimizer for GridSearch {
    fn minimize(
        &self,
        objective: &dyn Objective,
        domain: &BoxDomain,
    ) -> Result<OptimizationOutcome> {
        self.validate()?;
        let f = CountingObjective::new(objective);
        let total = self.total_points(domain);
        let mut best_x: Option<Vec<f64>> = None;
        let mut best_value = f64::INFINITY;
        for i in 0..total {
            let x = self.point(domain, i);
            let v = f.eval_penalized(&x);
            if v < best_value || best_x.is_none() {
                best_value = v;
                best_x = Some(x);
            }
        }
        let best_x = best_x.expect("grid has at least 2^dim points");
        if !best_value.is_finite() {
            return Err(OptimError::NoFiniteValue {
                evaluations: f.count(),
            });
        }
        Ok(OptimizationOutcome {
            best_x,
            best_value,
            evaluations: f.count(),
            iterations: total as u64,
            termination: TerminationReason::Exhausted,
            trace: Vec::new(),
        })
    }

    fn name(&self) -> &'static str {
        "grid-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{booth, rastrigin};

    #[test]
    fn lattice_covers_endpoints() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let grid = GridSearch::new(5);
        let pts = grid.evaluate(&|x: &[f64]| x[0], &domain).unwrap();
        let xs: Vec<f64> = pts.iter().map(|p| p.x[0]).collect();
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn finds_global_minimum_of_multimodal_function() {
        // Rastrigin defeats local methods; the grid cannot be fooled.
        let domain = BoxDomain::from_bounds(&[(-5.12, 5.12), (-5.12, 5.12)]).unwrap();
        let out = GridSearch::new(65).minimize(&rastrigin, &domain).unwrap();
        assert!(out.best_value < 0.1, "best = {}", out.best_value);
        assert_eq!(out.termination, TerminationReason::Exhausted);
        assert_eq!(out.evaluations, 65 * 65);
    }

    #[test]
    fn parallel_matches_sequential() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let seq = GridSearch::new(64).evaluate(&booth, &domain).unwrap();
        let par = GridSearch::new(64)
            .threads(4)
            .evaluate(&booth, &domain)
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_tiny_grid() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(GridSearch::new(1)
            .minimize(&|x: &[f64]| x[0], &domain)
            .is_err());
    }

    #[test]
    fn nan_points_are_skipped_not_fatal() {
        let domain = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        // NaN on the negative half; minimum of x² on [0, 1] is at 0.
        let f = |x: &[f64]| if x[0] < 0.0 { f64::NAN } else { x[0] * x[0] };
        let out = GridSearch::new(21).minimize(&f, &domain).unwrap();
        assert_eq!(out.best_x[0], 0.0);
    }

    #[test]
    fn all_nan_is_error() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        assert!(matches!(
            GridSearch::new(5).minimize(&|_: &[f64]| f64::NAN, &domain),
            Err(OptimError::NoFiniteValue { .. })
        ));
    }

    #[test]
    fn batch_path_matches_scalar_minimize() {
        let domain = BoxDomain::from_bounds(&[(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
        let grid = GridSearch::new(73);
        let scalar = grid.minimize(&booth, &domain).unwrap();
        let batch = grid.minimize_batch(&booth, &domain).unwrap();
        assert_eq!(scalar.best_x, batch.best_x);
        assert_eq!(scalar.best_value, batch.best_value);
        assert_eq!(scalar.evaluations, batch.evaluations);
        assert_eq!(batch.termination, TerminationReason::Exhausted);
    }

    #[test]
    fn batch_path_reports_all_infeasible() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0)]).unwrap();
        let f = |_: &[f64]| f64::NAN;
        assert!(matches!(
            GridSearch::new(5).minimize_batch(&f, &domain),
            Err(OptimError::NoFiniteValue { .. })
        ));
    }

    #[test]
    fn three_dimensional_lattice_size() {
        let domain = BoxDomain::from_bounds(&[(0.0, 1.0); 3]).unwrap();
        let grid = GridSearch::new(7);
        assert_eq!(grid.total_points(&domain), 343);
        let out = grid.minimize(&crate::testfns::sphere, &domain).unwrap();
        assert_eq!(out.evaluations, 343);
        assert_eq!(out.best_x, vec![0.0, 0.0, 0.0]);
    }
}
