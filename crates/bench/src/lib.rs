//! Shared helpers for the reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see the experiment index in `DESIGN.md`), printing the series
//! to stdout and writing CSV/JSON artifacts into `results/` at the
//! workspace root. The Criterion benches in `benches/` measure the
//! engines themselves (cut-set algorithms, quantification, optimizers).
//!
//! The throughput smoke bins (`engine_throughput`, `fleet_throughput`,
//! `soa_throughput`) share one measurement loop ([`measure`]) and one
//! JSON schema ([`BenchReport`]) for their `BENCH_*.json` baselines at
//! the workspace root, so trajectory tooling can diff benches across
//! PRs: every file carries `schema`, `name`, `workload`, `threads`,
//! `timestamp`, a `modes` map of [`Measurement`]s keyed by stable ids,
//! and a `speedups` map. The timestamp is **passed in by the caller**
//! (the bins forward `SAFETY_OPT_BENCH_TIMESTAMP`; [`bench_timestamp`]
//! warns when it is unset) — it is never sampled from the clock, so
//! regenerating a baseline under a fixed value diffs clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Workspace root (`CARGO_MANIFEST_DIR` = `crates/bench`, two levels
/// down) — where the `BENCH_*.json` baselines live.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Directory where regeneration binaries drop their artifacts
/// (`results/` next to the workspace `Cargo.toml`), created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created — the harness cannot do
/// anything useful without it.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes `contents` to `results/<name>` and reports the path on stdout.
///
/// # Panics
///
/// Panics on I/O errors (harness binaries want loud failures).
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("[artifact] {}", path.display());
    path
}

/// Formats a row of right-aligned columns for console tables.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// One measured throughput mode of a `BENCH_*.json` baseline.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Stable snake_case id (the key in the JSON `modes` map).
    pub key: &'static str,
    /// Units (points, model·points, …) evaluated per second, best pass.
    pub points_per_sec: f64,
    /// Units evaluated across all timed passes.
    pub total_points: u64,
    /// Total timed wall-clock.
    pub seconds: f64,
}

/// Minimum wall-clock per measured mode.
const MIN_SECONDS: f64 = 0.6;

/// Measures `pass` (one full evaluation of `per_pass` units) until
/// [`MIN_SECONDS`] of wall-clock accumulate, reporting the **best**
/// pass — robust against transient background load (CI runners and the
/// reference container share their core). A warm-up pass runs first
/// (pages, caches, lazy init); `pass`'s checksum is asserted finite so
/// the work cannot be optimized out.
pub fn measure(
    key: &'static str,
    label: &str,
    unit: &str,
    per_pass: usize,
    mut pass: impl FnMut() -> f64,
) -> Measurement {
    let mut checksum = pass();
    let start = Instant::now();
    let mut passes = 0u64;
    let mut best_pass_seconds = f64::INFINITY;
    loop {
        let pass_start = Instant::now();
        checksum += pass();
        best_pass_seconds = best_pass_seconds.min(pass_start.elapsed().as_secs_f64());
        passes += 1;
        if start.elapsed().as_secs_f64() >= MIN_SECONDS {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let total_points = passes * per_pass as u64;
    let points_per_sec = per_pass as f64 / best_pass_seconds;
    assert!(checksum.is_finite());
    println!(
        "{label:<22} {points_per_sec:>12.0} {unit}   \
         (best of {passes} passes, {total_points} {unit_base} in {seconds:.2} s)",
        unit_base = unit.trim_end_matches("/sec"),
    );
    Measurement {
        key,
        points_per_sec,
        total_points,
        seconds,
    }
}

/// One `BENCH_*.json` baseline in the shared schema (see the module
/// docs). Construct, then [`write`](Self::write).
#[derive(Debug, Clone)]
pub struct BenchReport<'a> {
    /// Benchmark id (`"engine_throughput"`, …).
    pub name: &'a str,
    /// Workload id (`"elbtunnel_paper"`, …).
    pub workload: &'a str,
    /// Worker threads the parallel modes used.
    pub threads: usize,
    /// Caller-provided timestamp (never sampled here; pass `""` for
    /// reproducible baselines).
    pub timestamp: &'a str,
    /// Extra scalar facts as `(key, raw JSON value)` pairs, emitted
    /// verbatim at the top level.
    pub extras: Vec<(&'a str, String)>,
    /// The measured modes, in presentation order.
    pub modes: &'a [Measurement],
    /// Named speedup ratios between modes.
    pub speedups: Vec<(&'a str, f64)>,
    /// The gating target as `(speedup key, threshold)`, when one exists.
    pub target: Option<(&'a str, f64)>,
    /// Did the run meet its target?
    pub pass: bool,
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters — the subset these reports can contain).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport<'_> {
    /// Renders the shared JSON schema.
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"safety-opt-bench-v1\",\n");
        json.push_str(&format!("  \"name\": \"{}\",\n", json_escape(self.name)));
        json.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            json_escape(self.workload)
        ));
        json.push_str(&format!("  \"threads\": {},\n", self.threads));
        json.push_str(&format!(
            "  \"timestamp\": \"{}\",\n",
            json_escape(self.timestamp)
        ));
        for (key, value) in &self.extras {
            json.push_str(&format!("  \"{}\": {value},\n", json_escape(key)));
        }
        json.push_str("  \"modes\": {\n");
        for (i, m) in self.modes.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {{ \"points_per_sec\": {:.1}, \"total_points\": {}, \"seconds\": {:.4} }}{}\n",
                m.key,
                m.points_per_sec,
                m.total_points,
                m.seconds,
                if i + 1 < self.modes.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        json.push_str("  \"speedups\": {\n");
        for (i, (key, v)) in self.speedups.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {v:.3}{}\n",
                json_escape(key),
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
        if let Some((key, threshold)) = &self.target {
            json.push_str(&format!(
                "  \"target\": {{ \"speedup\": \"{}\", \"at_least\": {threshold} }},\n",
                json_escape(key)
            ));
        }
        json.push_str(&format!("  \"pass\": {}\n", self.pass));
        json.push_str("}\n");
        json
    }

    /// Writes `BENCH_<stem>.json` at the workspace root and reports the
    /// path on stdout.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (harness binaries want loud failures).
    pub fn write(&self, stem: &str) -> PathBuf {
        let path = workspace_root().join(format!("BENCH_{stem}.json"));
        std::fs::write(&path, self.to_json()).expect("write bench baseline");
        println!("\n[artifact] {}", path.display());
        path
    }
}

/// The caller-provided baseline timestamp: `SAFETY_OPT_BENCH_TIMESTAMP`
/// when set. It is never sampled from the clock — a fixed value
/// regenerates byte-identical baselines — but an *unset* variable now
/// warns on stderr instead of silently emitting `"timestamp": ""`
/// (every committed baseline should say when it was measured; CI
/// exports the variable before the bench steps).
pub fn bench_timestamp() -> String {
    match std::env::var("SAFETY_OPT_BENCH_TIMESTAMP") {
        Ok(ts) if !ts.trim().is_empty() => ts,
        _ => {
            eprintln!(
                "[warn] SAFETY_OPT_BENCH_TIMESTAMP is unset; the baseline will carry an \
                 empty timestamp (export it — e.g. an ISO-8601 date — before running bench bins)"
            );
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created_and_writable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        let path = write_artifact("self_test.txt", "ok\n");
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn bench_report_schema_is_stable() {
        let modes = [
            Measurement {
                key: "scalar",
                points_per_sec: 1234.5,
                total_points: 100,
                seconds: 0.5,
            },
            Measurement {
                key: "soa",
                points_per_sec: 2469.0,
                total_points: 200,
                seconds: 0.5,
            },
        ];
        let report = BenchReport {
            name: "demo",
            workload: "unit \"test\"",
            threads: 2,
            timestamp: "",
            extras: vec![("tape_ops", "14".to_string())],
            modes: &modes,
            speedups: vec![("soa_vs_scalar", 2.0)],
            target: Some(("soa_vs_scalar", 1.5)),
            pass: true,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"safety-opt-bench-v1\""));
        assert!(json.contains("\"workload\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"tape_ops\": 14,"));
        assert!(json.contains("\"scalar\": { \"points_per_sec\": 1234.5"));
        assert!(json.contains("\"soa_vs_scalar\": 2.000"));
        assert!(json.contains("\"at_least\": 1.5"));
        assert!(json.contains("\"pass\": true"));
        // Every mode key appears exactly once, comma-separated.
        assert_eq!(json.matches("points_per_sec").count(), 2);
    }

    #[test]
    fn bench_timestamp_forwards_the_env_override() {
        // Serial with itself only: no other test reads this variable.
        std::env::set_var("SAFETY_OPT_BENCH_TIMESTAMP", "2026-07-29");
        assert_eq!(bench_timestamp(), "2026-07-29");
        std::env::set_var("SAFETY_OPT_BENCH_TIMESTAMP", "  ");
        assert_eq!(bench_timestamp(), "", "blank counts as unset");
        std::env::remove_var("SAFETY_OPT_BENCH_TIMESTAMP");
        assert_eq!(bench_timestamp(), "");
    }

    #[test]
    fn measure_counts_passes() {
        let m = measure("noop", "noop", "points/sec", 10, || 1.0);
        assert_eq!(m.key, "noop");
        assert!(m.points_per_sec > 0.0);
        assert!(m.total_points >= 10);
        assert!(m.seconds >= 0.6);
    }
}
