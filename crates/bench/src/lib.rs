//! Shared helpers for the reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see the experiment index in `DESIGN.md`), printing the series
//! to stdout and writing CSV/JSON artifacts into `results/` at the
//! workspace root. The Criterion benches in `benches/` measure the
//! engines themselves (cut-set algorithms, quantification, optimizers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Directory where regeneration binaries drop their artifacts
/// (`results/` next to the workspace `Cargo.toml`), created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created — the harness cannot do
/// anything useful without it.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let dir = root.join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes `contents` to `results/<name>` and reports the path on stdout.
///
/// # Panics
///
/// Panics on I/O errors (harness binaries want loud failures).
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("[artifact] {}", path.display());
    path
}

/// Formats a row of right-aligned columns for console tables.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created_and_writable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        let path = write_artifact("self_test.txt", "ok\n");
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
