//! E8 — evaluation-engine throughput: points/sec of the scalar `pprob`
//! interpreter vs. the compiled op-tape vs. compiled + parallel batches,
//! on the Elbtunnel cost function.
//!
//! Writes `BENCH_engine.json` at the workspace root as the performance
//! baseline (CI runs this as a smoke test).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin engine_throughput`
//!
//! With `--enforce`, exits non-zero when compiled+parallel falls below
//! the 5× speedup target — meant for the quiet reference machine;
//! shared CI runners record the baseline without gating on wall-clock.
//! The compiled-vs-scalar equivalence check is always enforced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_core::compile::CompiledModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use std::path::Path;
use std::time::Instant;

/// Points in the measurement working set.
const N_POINTS: usize = 20_000;
/// Minimum wall-clock per measured mode.
const MIN_SECONDS: f64 = 0.6;
/// Acceptance threshold: compiled+parallel vs. scalar points/sec.
const TARGET_SPEEDUP: f64 = 5.0;

struct Measurement {
    label: &'static str,
    points_per_sec: f64,
    total_points: u64,
    seconds: f64,
}

fn measure(label: &'static str, points: &[Vec<f64>], mut pass: impl FnMut() -> f64) -> Measurement {
    // Warm-up pass (pages, caches, lazy init).
    let mut checksum = pass();
    let start = Instant::now();
    let mut passes = 0u64;
    // Throughput is the *best* pass: robust against transient background
    // load (CI runners and the reference container share their core).
    let mut best_pass_seconds = f64::INFINITY;
    loop {
        let pass_start = Instant::now();
        checksum += pass();
        best_pass_seconds = best_pass_seconds.min(pass_start.elapsed().as_secs_f64());
        passes += 1;
        if start.elapsed().as_secs_f64() >= MIN_SECONDS {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let total_points = passes * points.len() as u64;
    let points_per_sec = points.len() as f64 / best_pass_seconds;
    // Keep the checksum observable so the work cannot be optimized out.
    assert!(checksum.is_finite());
    println!(
        "{label:<22} {points_per_sec:>12.0} points/sec   \
         (best of {passes} passes, {total_points} points in {seconds:.2} s)"
    );
    Measurement {
        label,
        points_per_sec,
        total_points,
        seconds,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Engine throughput — Elbtunnel cost function f_cost(T1, T2)\n");

    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sequential = CompiledModel::compile_with_threads(&model, 1)?;
    let parallel = CompiledModel::compile_with_threads(&model, threads)?;

    let mut rng = StdRng::seed_from_u64(0x5AFE_2004);
    let (lo, hi) = paper.timer_domain;
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();

    // Correctness gate before timing anything: compiled == scalar.
    let compiled_costs = sequential.cost_batch(&points)?;
    let mut worst = 0.0f64;
    for (p, &fast) in points.iter().zip(&compiled_costs) {
        let scalar = model.cost(p)?;
        worst = worst.max((scalar - fast).abs());
    }
    println!("equivalence check     worst |scalar - compiled| = {worst:.2e}\n");
    assert!(worst <= 1e-12, "compiled path diverged from scalar");

    let scalar = measure("scalar interpreter", &points, || {
        let mut acc = 0.0;
        for p in &points {
            acc += model.cost(p).unwrap_or(f64::INFINITY);
        }
        acc
    });
    let compiled = measure("compiled tape", &points, || {
        sequential
            .cost_batch(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });
    let compiled_parallel = measure("compiled + parallel", &points, || {
        parallel
            .cost_batch(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });

    let speedup_compiled = compiled.points_per_sec / scalar.points_per_sec;
    let speedup_parallel = compiled_parallel.points_per_sec / scalar.points_per_sec;
    let pass = speedup_parallel >= TARGET_SPEEDUP;
    println!();
    println!("compiled vs scalar            : {speedup_compiled:.2}x");
    println!(
        "compiled+parallel vs scalar   : {speedup_parallel:.2}x  (target >= {TARGET_SPEEDUP}x)"
    );
    println!("threads                       : {threads}");
    println!(
        "tape ops                      : {}",
        sequential.tape().n_ops()
    );
    println!(
        "verdict                       : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"engine_throughput\",\n");
    json.push_str("  \"model\": \"elbtunnel_paper\",\n");
    json.push_str(&format!("  \"n_points\": {N_POINTS},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"tape_ops\": {},\n  \"worst_abs_deviation\": {worst:e},\n",
        sequential.tape().n_ops()
    ));
    json.push_str("  \"modes\": {\n");
    for (i, m) in [&scalar, &compiled, &compiled_parallel].iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"points_per_sec\": {:.1}, \"total_points\": {}, \"seconds\": {:.4} }}{}\n",
            m.label.replace(' ', "_"),
            m.points_per_sec,
            m.total_points,
            m.seconds,
            if i < 2 { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_compiled_vs_scalar\": {speedup_compiled:.3},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_compiled_parallel_vs_scalar\": {speedup_parallel:.3},\n"
    ));
    json.push_str(&format!("  \"target_speedup\": {TARGET_SPEEDUP},\n"));
    json.push_str(&format!("  \"pass\": {pass}\n"));
    json.push_str("}\n");

    // BENCH_engine.json lives at the workspace root (CARGO_MANIFEST_DIR =
    // crates/bench, two levels down).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    let path = root.join("BENCH_engine.json");
    std::fs::write(&path, &json)?;
    println!("\n[artifact] {}", path.display());

    if !pass {
        eprintln!(
            "engine_throughput: below the {TARGET_SPEEDUP}x target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
