//! E8 — evaluation-engine throughput: points/sec of the scalar `pprob`
//! interpreter vs. the compiled op-tape vs. compiled + parallel batches,
//! on the Elbtunnel cost function.
//!
//! Writes `BENCH_engine.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema, as the performance baseline
//! (CI runs this as a smoke test).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin engine_throughput`
//!
//! With `--enforce`, exits non-zero when compiled+parallel falls below
//! the 5× speedup target — meant for the quiet reference machine;
//! shared CI runners record the baseline without gating on wall-clock.
//! The compiled-vs-scalar equivalence check is always enforced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;

/// Points in the measurement working set.
const N_POINTS: usize = 20_000;
/// Acceptance threshold: compiled+parallel vs. scalar points/sec.
const TARGET_SPEEDUP: f64 = 5.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Engine throughput — Elbtunnel cost function f_cost(T1, T2)\n");

    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sequential = CompiledModel::compile_with_threads(&model, 1)?;
    let parallel = CompiledModel::compile_with_threads(&model, threads)?;

    let mut rng = StdRng::seed_from_u64(0x5AFE_2004);
    let (lo, hi) = paper.timer_domain;
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();

    // Correctness gate before timing anything: compiled == scalar.
    let compiled_costs = sequential.cost_batch(&points)?;
    let mut worst = 0.0f64;
    for (p, &fast) in points.iter().zip(&compiled_costs) {
        let scalar = model.cost(p)?;
        worst = worst.max((scalar - fast).abs());
    }
    println!("equivalence check     worst |scalar - compiled| = {worst:.2e}\n");
    assert!(worst <= 1e-12, "compiled path diverged from scalar");

    let scalar = measure(
        "scalar_interpreter",
        "scalar interpreter",
        "points/sec",
        N_POINTS,
        || {
            let mut acc = 0.0;
            for p in &points {
                acc += model.cost(p).unwrap_or(f64::INFINITY);
            }
            acc
        },
    );
    let compiled = measure(
        "compiled_tape",
        "compiled tape",
        "points/sec",
        N_POINTS,
        || {
            sequential
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );
    let compiled_parallel = measure(
        "compiled_parallel",
        "compiled + parallel",
        "points/sec",
        N_POINTS,
        || {
            parallel
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );

    let speedup_compiled = compiled.points_per_sec / scalar.points_per_sec;
    let speedup_parallel = compiled_parallel.points_per_sec / scalar.points_per_sec;
    let pass = speedup_parallel >= TARGET_SPEEDUP;
    println!();
    println!("compiled vs scalar            : {speedup_compiled:.2}x");
    println!(
        "compiled+parallel vs scalar   : {speedup_parallel:.2}x  (target >= {TARGET_SPEEDUP}x)"
    );
    println!("threads                       : {threads}");
    println!(
        "tape ops                      : {}",
        sequential.tape().n_ops()
    );
    println!(
        "verdict                       : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [scalar, compiled, compiled_parallel];
    BenchReport {
        name: "engine_throughput",
        workload: "elbtunnel_paper",
        threads,
        timestamp: &timestamp,
        extras: vec![
            ("n_points", N_POINTS.to_string()),
            ("tape_ops", sequential.tape().n_ops().to_string()),
            ("worst_abs_deviation", format!("{worst:e}")),
        ],
        modes: &modes,
        speedups: vec![
            ("compiled_vs_scalar", speedup_compiled),
            ("compiled_parallel_vs_scalar", speedup_parallel),
        ],
        target: Some(("compiled_parallel_vs_scalar", TARGET_SPEEDUP)),
        pass,
    }
    .write("engine");

    if !pass {
        eprintln!(
            "engine_throughput: below the {TARGET_SPEEDUP}x target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
