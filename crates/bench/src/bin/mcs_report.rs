//! E6 — Sect. IV-B: the fault trees of both hazards, their minimal cut
//! sets from all three engines, and quantification/importance reports at
//! the initial configuration.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin mcs_report`

use safety_opt_bench::write_artifact;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_elbtunnel::fault_trees::{self, names};
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::importance::ImportanceReport;
use safety_opt_fta::quant::ProbabilityMap;
use safety_opt_fta::render::{to_ascii, to_dot};
use safety_opt_fta::{mcs, tree::FaultTree};

fn report(tree: &FaultTree) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {} ==", tree.name());
    print!("{}", to_ascii(tree)?);
    let by_mocus = mcs::mocus(tree)?;
    let by_bottom_up = mcs::bottom_up(tree)?;
    let bdd = TreeBdd::build(tree)?;
    let by_bdd = bdd.minimal_cut_sets()?;
    assert_eq!(by_mocus, by_bottom_up);
    assert_eq!(by_bottom_up, by_bdd);
    println!(
        "minimal cut sets: {} (MOCUS ≡ bottom-up ≡ BDD; BDD has {} nodes)",
        by_mocus.len(),
        bdd.node_count()
    );
    for cs in by_mocus.iter() {
        println!(
            "  {{{}}}  (failures: {}, conditions: {})",
            cs.names(tree).join(", "),
            cs.failures(tree).len(),
            cs.conditions(tree).len()
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E6 — fault trees and minimal cut sets (Sect. IV-B)\n");
    let collision = fault_trees::collision_tree()?;
    let false_alarm = fault_trees::false_alarm_tree()?;
    report(&collision)?;
    report(&false_alarm)?;

    // Quantification + importance of the false-alarm tree at (30, 30).
    let m = ElbtunnelModel::paper();
    let (t1, t2) = (30.0, 30.0);
    let activation = m.p_ohv + (1.0 - m.p_ohv) * m.p_fd_lbpre * m.p_fd_lbpost(t1);
    let probs = ProbabilityMap::from_fn(&false_alarm, |leaf| {
        match false_alarm.node(false_alarm.leaf(leaf)).name() {
            names::HV_ODFINAL => m.p_hv_odfinal(t2),
            names::FD_ODFINAL => 1e-2 * m.p_hv_odfinal(t2),
            names::HV_ODLEFT => 5e-3,
            names::FD_ODLEFT => 1e-4,
            names::OHV_PRESENT => m.p_ohv,
            names::ODFINAL_ACTIVE => activation,
            other => panic!("unmapped leaf {other}"),
        }
    })?;
    let importance = ImportanceReport::compute(&false_alarm, &probs)?;
    println!(
        "== importance, false-alarm tree at (T1, T2) = (30, 30) — P(HAlr) = {:.3e} ==",
        importance.hazard_probability
    );
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}",
        "event", "Birnbaum", "Fussell-V.", "RAW", "criticality"
    );
    for leaf in &importance.leaves {
        println!(
            "{:<16} {:>12.3e} {:>12.3e} {:>10.2} {:>10.3e}",
            leaf.name, leaf.birnbaum, leaf.fussell_vesely, leaf.raw, leaf.criticality
        );
    }
    let hv = importance.by_name(names::HV_ODFINAL).unwrap();
    println!(
        "\npaper: HV_ODfinal dominates HAlr \"by two orders of magnitude\" — its\n\
         Fussell-Vesely share here is {:.1} %.",
        100.0 * hv.fussell_vesely
    );

    write_artifact("hcol_tree.dot", &to_dot(&collision)?);
    write_artifact("halr_tree.dot", &to_dot(&false_alarm)?);
    Ok(())
}
