//! `telemetry_report` — runs a representative Elbtunnel workload with
//! full telemetry *and* full structured tracing, then renders what the
//! observability stack saw as a human-readable report:
//!
//! * the global counter aggregates (tape compilation, memo cache,
//!   batch execution),
//! * per-[`TraceScope`](telemetry::TraceScope) latency percentiles
//!   (p50/p90/p99 over the span histograms attributed to each scope),
//! * the compiled tape's hot-op table (per-op forward/adjoint sweep
//!   time, lane-blocked vs scalar path),
//! * a digest of the structured event stream (per-kind counts, scopes
//!   seen, drop counter).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin telemetry_report`
//!
//! The modes are forced programmatically (`telemetry full`, trace
//! `full`) — the `SAFETY_OPT_TELEMETRY` / `SAFETY_OPT_TRACE` env
//! variables are ignored so the report is self-contained.

use safety_opt_core::compile::CompiledModel;
use safety_opt_core::optimize::SafetyOptimizer;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// One side of the profiled surface sweep (`GRID`² points).
const GRID: usize = 60;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::set_mode(telemetry::TelemetryMode::Full);
    telemetry::set_trace_mode(telemetry::TraceMode::Full);

    println!("# Telemetry report — Elbtunnel study under telemetry=full, trace=full\n");

    // The representative workload: the study's own optimizer run (the
    // sequential multi-start path, so the trace carries `compile` and
    // `restart.k` scopes) followed by a profiled batch sweep over the
    // cost surface (populates the per-op profiler on both sweep
    // directions).
    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let optimum = SafetyOptimizer::new(&model).run()?;
    println!(
        "workload: optimizer -> {}, then a {GRID}x{GRID} cost+gradient sweep\n",
        optimum.point()
    );

    let compiled = CompiledModel::compile(&model)?;
    {
        let _scope = telemetry::TraceScope::enter("report.sweep");
        let (lo, hi) = paper.timer_domain;
        let step = (hi - lo) / (GRID - 1) as f64;
        let pts: Vec<Vec<f64>> = (0..GRID)
            .flat_map(|i| (0..GRID).map(move |j| vec![lo + i as f64 * step, lo + j as f64 * step]))
            .collect();
        compiled.cost_batch(&pts)?;
        compiled.gradient_batch(&pts)?;
    }

    let snap = telemetry::snapshot();

    println!("## Global counters (non-zero)\n");
    for (name, value) in snap.counters.iter().filter(|&&(_, v)| v > 0) {
        println!("  {name:<34} {value:>12}");
    }

    println!("\n## Per-scope latency percentiles\n");
    if snap.scopes.is_empty() {
        println!("  (no scoped attribution recorded)");
    }
    println!(
        "  {:<20} {:<28} {:>8} {:>10} {:>10} {:>10}",
        "scope", "histogram", "count", "p50", "p90", "p99"
    );
    for scope in &snap.scopes {
        for h in &scope.histograms {
            // Only `*_nanos` histograms carry time; the rest (lane
            // widths, ...) render as raw bucket bounds.
            let fmt: fn(u64) -> String = if h.name.ends_with("_nanos") {
                fmt_nanos
            } else {
                |v| v.to_string()
            };
            println!(
                "  {:<20} {:<28} {:>8} {:>10} {:>10} {:>10}",
                scope.name,
                h.name,
                h.count,
                fmt(h.p50),
                fmt(h.p90),
                fmt(h.p99),
            );
        }
        for (name, value) in &scope.counters {
            println!("  {:<20} {name:<28} {value:>8}", scope.name);
        }
    }

    println!("\n## Hot ops (compiled Elbtunnel tape, surface sweep)\n");
    print!("{}", compiled.profile_report().render_table());

    let events = telemetry::trace::take_events();
    let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut scopes: BTreeSet<String> = BTreeSet::new();
    for e in &events {
        *kinds.entry(e.kind.name()).or_default() += 1;
        if let Some(s) = &e.scope {
            scopes.insert(s.clone());
        }
    }
    println!(
        "\n## Event stream: {} events ({} dropped)\n",
        events.len(),
        telemetry::trace::dropped_events()
    );
    for (kind, n) in &kinds {
        println!("  {kind:<16} {n:>8}");
    }
    println!(
        "  scopes seen: {}",
        scopes.into_iter().collect::<Vec<_>>().join(", ")
    );
    Ok(())
}

/// Renders a nanosecond histogram-bucket bound compactly (`840ns`,
/// `13.2us`, `1.50ms`, `2.10s`).
fn fmt_nanos(n: u64) -> String {
    let n = n as f64;
    if n < 1e3 {
        format!("{n:.0}ns")
    } else if n < 1e6 {
        format!("{:.1}us", n / 1e3)
    } else if n < 1e9 {
        format!("{:.2}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}
