//! Scaling study — the paper's "how does the control scale if the
//! traffic increases?" question (Sect. IV-C.2), extended into a full
//! growth ladder: per traffic level, the re-optimized timers, the cost,
//! and the alarm rates of the original vs LB4 designs.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin traffic_scaling`

use safety_opt_bench::{row, write_artifact};
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_elbtunnel::scenarios::{growth_ladder, scaling_study};
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Traffic-growth scaling study\n");
    let base = ElbtunnelModel::paper();
    let outcomes = scaling_study(&base, &growth_ladder())?;

    let widths = [8usize, 8, 8, 13, 16, 13];
    println!(
        "{}",
        row(
            &[
                "traffic".into(),
                "T1*".into(),
                "T2*".into(),
                "f_cost*".into(),
                "alarm (orig)".into(),
                "alarm (LB4)".into()
            ],
            &widths
        )
    );
    let mut csv = String::from("factor,t1,t2,cost,alarm_rate_original,alarm_rate_with_lb4\n");
    for o in &outcomes {
        println!(
            "{}",
            row(
                &[
                    format!("{:.1}x", o.scenario.ohv_factor),
                    format!("{:.2}", o.optimal_timers.0),
                    format!("{:.2}", o.optimal_timers.1),
                    format!("{:.4e}", o.optimal_cost),
                    format!("{:.1} %", 100.0 * o.alarm_rate_original),
                    format!("{:.1} %", 100.0 * o.alarm_rate_with_lb4),
                ],
                &widths
            )
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            o.scenario.ohv_factor,
            o.optimal_timers.0,
            o.optimal_timers.1,
            o.optimal_cost,
            o.alarm_rate_original,
            o.alarm_rate_with_lb4
        );
    }
    println!(
        "\nreading: the original design saturates — already at modest growth nearly\n\
         every correctly driving OHV trips an alarm, and no timer setting can fix\n\
         it (the paper: \"the complex control system [is] almost obsolete\"). The\n\
         LB4 fix keeps the alarm rate bounded by the transit-time exposure."
    );
    write_artifact("traffic_scaling.csv", &csv);
    Ok(())
}
