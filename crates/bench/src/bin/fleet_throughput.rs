//! E9 — model-fleet throughput: models·points/sec of the per-model
//! compile-and-evaluate loop vs. the shared-arena fleet, on the
//! Elbtunnel **uncertainty workload** (a Monte-Carlo family of sampled
//! models that differ only in the uncertain constants λ_HV and P(OHV)).
//!
//! Writes `BENCH_fleet.json` at the workspace root. The headline number
//! is the **one-core** comparison: cross-model hash-consing alone must
//! pay for itself (the shared collision subtree evaluates once per
//! point for the whole fleet instead of once per model).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin fleet_throughput`
//!
//! With `--enforce`, exits non-zero when the one-core fleet path does
//! not beat the per-model loop. The fleet-vs-per-model bitwise
//! equivalence check is always enforced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::fleet::CompiledFleet;
use safety_opt_core::model::SafetyModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use std::path::Path;
use std::time::Instant;

/// Sampled models per Monte-Carlo batch.
const N_MODELS: usize = 128;
/// Evaluation points per pass.
const N_POINTS: usize = 96;
/// Minimum wall-clock per measured mode.
const MIN_SECONDS: f64 = 0.6;

struct Measurement {
    model_points_per_sec: f64,
    total_model_points: u64,
    seconds: f64,
}

fn measure(label: &'static str, per_pass: usize, mut pass: impl FnMut() -> f64) -> Measurement {
    // Warm-up pass (pages, caches, lazy init).
    let mut checksum = pass();
    let start = Instant::now();
    let mut passes = 0u64;
    // Throughput is the *best* pass: robust against transient background
    // load (CI runners and the reference container share their core).
    let mut best_pass_seconds = f64::INFINITY;
    loop {
        let pass_start = Instant::now();
        checksum += pass();
        best_pass_seconds = best_pass_seconds.min(pass_start.elapsed().as_secs_f64());
        passes += 1;
        if start.elapsed().as_secs_f64() >= MIN_SECONDS {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let total_model_points = passes * per_pass as u64;
    let model_points_per_sec = per_pass as f64 / best_pass_seconds;
    // Keep the checksum observable so the work cannot be optimized out.
    assert!(checksum.is_finite());
    println!(
        "{label:<22} {model_points_per_sec:>12.0} model·points/sec   \
         (best of {passes} passes, {total_model_points} model·points in {seconds:.2} s)"
    );
    Measurement {
        model_points_per_sec,
        total_model_points,
        seconds,
    }
}

/// The uncertainty family: the paper's calibrated model with λ_HV known
/// to ±30 % and P(OHV) to ±25 %.
fn sample_family(n: usize, seed: u64) -> Vec<SafetyModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut m = ElbtunnelModel::paper();
            m.lambda_hv *= 0.7 + 0.6 * rng.gen::<f64>();
            m.p_ohv = (m.p_ohv * (0.75 + 0.5 * rng.gen::<f64>())).min(1.0);
            m.build().expect("paper model builds")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Fleet throughput — {N_MODELS} sampled Elbtunnel models x {N_POINTS} points\n");

    let models = sample_family(N_MODELS, 0x5AFE_F1EE);
    let paper = ElbtunnelModel::paper();
    let (lo, hi) = paper.timer_domain;
    let mut rng = StdRng::seed_from_u64(0x5AFE_2026);
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();
    let per_pass = N_MODELS * N_POINTS;

    let compile_loop_start = Instant::now();
    let compiled: Vec<CompiledModel> = models
        .iter()
        .map(|m| CompiledModel::compile_with_threads(m, 1))
        .collect::<Result<_, _>>()?;
    let per_model_compile_seconds = compile_loop_start.elapsed().as_secs_f64();

    let fleet_compile_start = Instant::now();
    let fleet = CompiledFleet::compile_with_threads(&models, 1)?;
    let fleet_compile_seconds = fleet_compile_start.elapsed().as_secs_f64();
    let threads = safety_opt_engine::default_threads();
    let fleet_parallel = CompiledFleet::compile_with_threads(&models, threads)?;

    let per_model_ops: usize = (0..fleet.n_models())
        .map(|k| fleet.fleet().model_ops(k))
        .sum();
    println!(
        "arena: {} ops for {} models ({} per-model ops, {:.1} % shared)\n",
        fleet.fleet().tape().n_ops(),
        fleet.n_models(),
        per_model_ops,
        100.0 * fleet.sharing()
    );

    // Correctness gate before timing anything: fleet == per-model loop,
    // bit for bit.
    let fleet_costs = fleet.costs_all(&points)?;
    for (k, c) in compiled.iter().enumerate() {
        let loop_costs = c.cost_batch(&points)?;
        for (i, &v) in loop_costs.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                fleet_costs[i * N_MODELS + k].to_bits(),
                "fleet diverged from per-model path (model {k}, point {i})"
            );
        }
    }
    println!("equivalence check     fleet == per-model loop, 0 ULP\n");

    let loop_mode = measure("per-model loop", per_pass, || {
        let mut acc = 0.0;
        for c in &compiled {
            acc += c
                .cost_batch(&points)
                .map(|v| v.iter().sum::<f64>())
                .unwrap_or(0.0);
        }
        acc
    });
    let fleet_mode = measure("fleet (1 core)", per_pass, || {
        fleet
            .costs_all(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });
    let fleet_par_mode = measure("fleet + parallel", per_pass, || {
        fleet_parallel
            .costs_all(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });

    let speedup = fleet_mode.model_points_per_sec / loop_mode.model_points_per_sec;
    let speedup_par = fleet_par_mode.model_points_per_sec / loop_mode.model_points_per_sec;
    let pass = speedup > 1.0;
    println!();
    println!("fleet vs per-model loop (1 core): {speedup:.2}x  (target > 1x)");
    println!("fleet + parallel vs loop        : {speedup_par:.2}x  ({threads} threads)");
    println!(
        "compile: per-model loop {:.1} ms, fleet {:.1} ms",
        1e3 * per_model_compile_seconds,
        1e3 * fleet_compile_seconds
    );
    println!(
        "verdict                         : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fleet_throughput\",\n");
    json.push_str("  \"workload\": \"elbtunnel_uncertainty\",\n");
    json.push_str(&format!(
        "  \"n_models\": {N_MODELS},\n  \"n_points\": {N_POINTS},\n  \"threads\": {threads},\n"
    ));
    json.push_str(&format!(
        "  \"arena_ops\": {},\n  \"per_model_ops\": {},\n  \"sharing\": {:.4},\n",
        fleet.fleet().tape().n_ops(),
        per_model_ops,
        fleet.sharing()
    ));
    json.push_str(&format!(
        "  \"compile_seconds\": {{ \"per_model_loop\": {per_model_compile_seconds:.5}, \"fleet\": {fleet_compile_seconds:.5} }},\n"
    ));
    json.push_str("  \"modes\": {\n");
    for (i, (key, m)) in [
        ("per_model_loop", &loop_mode),
        ("fleet_one_core", &fleet_mode),
        ("fleet_parallel", &fleet_par_mode),
    ]
    .into_iter()
    .enumerate()
    {
        json.push_str(&format!(
            "    \"{key}\": {{ \"model_points_per_sec\": {:.1}, \"total_model_points\": {}, \"seconds\": {:.4} }}{}\n",
            m.model_points_per_sec,
            m.total_model_points,
            m.seconds,
            if i < 2 { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_fleet_vs_loop_one_core\": {speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_fleet_parallel_vs_loop\": {speedup_par:.3},\n"
    ));
    json.push_str(&format!("  \"pass\": {pass}\n"));
    json.push_str("}\n");

    // BENCH_fleet.json lives at the workspace root (CARGO_MANIFEST_DIR =
    // crates/bench, two levels down).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    let path = root.join("BENCH_fleet.json");
    std::fs::write(&path, &json)?;
    println!("\n[artifact] {}", path.display());

    if !pass {
        eprintln!(
            "fleet_throughput: fleet did not beat the per-model loop{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
