//! E9 — model-fleet throughput: models·points/sec of the per-model
//! compile-and-evaluate loop vs. the shared-arena fleet, on the
//! Elbtunnel **uncertainty workload** (a Monte-Carlo family of sampled
//! models that differ only in the uncertain constants λ_HV and P(OHV)).
//!
//! Writes `BENCH_fleet.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema. The headline number is the
//! **one-core** comparison: cross-model hash-consing alone must pay for
//! itself (the shared collision subtree evaluates once per point for
//! the whole fleet instead of once per model).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin fleet_throughput`
//!
//! With `--enforce`, exits non-zero when the one-core fleet path does
//! not beat the per-model loop. The fleet-vs-per-model bitwise
//! equivalence check is always enforced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::fleet::CompiledFleet;
use safety_opt_core::model::SafetyModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use std::time::Instant;

/// Sampled models per Monte-Carlo batch.
const N_MODELS: usize = 128;
/// Evaluation points per pass.
const N_POINTS: usize = 96;

/// The uncertainty family: the paper's calibrated model with λ_HV known
/// to ±30 % and P(OHV) to ±25 %.
fn sample_family(n: usize, seed: u64) -> Vec<SafetyModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut m = ElbtunnelModel::paper();
            m.lambda_hv *= 0.7 + 0.6 * rng.gen::<f64>();
            m.p_ohv = (m.p_ohv * (0.75 + 0.5 * rng.gen::<f64>())).min(1.0);
            m.build().expect("paper model builds")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Fleet throughput — {N_MODELS} sampled Elbtunnel models x {N_POINTS} points\n");

    let models = sample_family(N_MODELS, 0x5AFE_F1EE);
    let paper = ElbtunnelModel::paper();
    let (lo, hi) = paper.timer_domain;
    let mut rng = StdRng::seed_from_u64(0x5AFE_2026);
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();
    let per_pass = N_MODELS * N_POINTS;

    let compile_loop_start = Instant::now();
    let compiled: Vec<CompiledModel> = models
        .iter()
        .map(|m| CompiledModel::compile_with_threads(m, 1))
        .collect::<Result<_, _>>()?;
    let per_model_compile_seconds = compile_loop_start.elapsed().as_secs_f64();

    let fleet_compile_start = Instant::now();
    let fleet = CompiledFleet::compile_with_threads(&models, 1)?;
    let fleet_compile_seconds = fleet_compile_start.elapsed().as_secs_f64();
    let threads = safety_opt_engine::default_threads();
    let fleet_parallel = CompiledFleet::compile_with_threads(&models, threads)?;

    let per_model_ops: usize = (0..fleet.n_models())
        .map(|k| fleet.fleet().model_ops(k))
        .sum();
    println!(
        "arena: {} ops for {} models ({} per-model ops, {:.1} % shared)\n",
        fleet.fleet().tape().n_ops(),
        fleet.n_models(),
        per_model_ops,
        100.0 * fleet.sharing()
    );

    // Correctness gate before timing anything: fleet == per-model loop,
    // bit for bit.
    let fleet_costs = fleet.costs_all(&points)?;
    for (k, c) in compiled.iter().enumerate() {
        let loop_costs = c.cost_batch(&points)?;
        for (i, &v) in loop_costs.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                fleet_costs[i * N_MODELS + k].to_bits(),
                "fleet diverged from per-model path (model {k}, point {i})"
            );
        }
    }
    println!("equivalence check     fleet == per-model loop, 0 ULP\n");

    let unit = "model-points/sec";
    let loop_mode = measure("per_model_loop", "per-model loop", unit, per_pass, || {
        let mut acc = 0.0;
        for c in &compiled {
            acc += c
                .cost_batch(&points)
                .map(|v| v.iter().sum::<f64>())
                .unwrap_or(0.0);
        }
        acc
    });
    let fleet_mode = measure("fleet_one_core", "fleet (1 core)", unit, per_pass, || {
        fleet
            .costs_all(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });
    let fleet_par_mode = measure("fleet_parallel", "fleet + parallel", unit, per_pass, || {
        fleet_parallel
            .costs_all(&points)
            .map(|v| v.iter().sum())
            .unwrap_or(0.0)
    });

    let speedup = fleet_mode.points_per_sec / loop_mode.points_per_sec;
    let speedup_par = fleet_par_mode.points_per_sec / loop_mode.points_per_sec;
    let pass = speedup >= 1.0;
    println!();
    println!("fleet vs per-model loop (1 core): {speedup:.2}x  (target >= 1x)");
    println!("fleet + parallel vs loop        : {speedup_par:.2}x  ({threads} threads)");
    println!(
        "compile: per-model loop {:.1} ms, fleet {:.1} ms",
        1e3 * per_model_compile_seconds,
        1e3 * fleet_compile_seconds
    );
    println!(
        "verdict                         : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [loop_mode, fleet_mode, fleet_par_mode];
    BenchReport {
        name: "fleet_throughput",
        workload: "elbtunnel_uncertainty",
        threads,
        timestamp: &timestamp,
        extras: vec![
            ("n_models", N_MODELS.to_string()),
            ("n_points", N_POINTS.to_string()),
            ("arena_ops", fleet.fleet().tape().n_ops().to_string()),
            ("per_model_ops", per_model_ops.to_string()),
            ("sharing", format!("{:.4}", fleet.sharing())),
            (
                "compile_seconds",
                format!(
                    "{{ \"per_model_loop\": {per_model_compile_seconds:.5}, \"fleet\": {fleet_compile_seconds:.5} }}"
                ),
            ),
        ],
        modes: &modes,
        speedups: vec![
            ("fleet_vs_loop_one_core", speedup),
            ("fleet_parallel_vs_loop", speedup_par),
        ],
        target: Some(("fleet_vs_loop_one_core", 1.0)),
        pass,
    }
    .write("fleet");

    if !pass {
        eprintln!(
            "fleet_throughput: fleet did not beat the per-model loop{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
