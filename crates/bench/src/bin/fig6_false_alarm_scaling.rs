//! E3/E4 — regenerates **Fig. 6**: probability of a false alarm for a
//! correctly driving OHV vs timer-2 runtime, for the original design
//! ("without_LB4"), the LB4 fix ("with_LB4"), and the LB-at-ODfinal fix
//! discussed in the text (≈ 4 %).
//!
//! Each analytic curve is cross-checked by the discrete-event simulator.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin fig6_false_alarm_scaling`

use safety_opt_bench::{row, write_artifact};
use safety_opt_elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_opt_elbtunnel::sim::{simulate, SimConfig};
use std::fmt::Write as _;

const EPISODES: u64 = 50_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Fig. 6 — P(false alarm | correctly driving OHV) vs timer-2 runtime\n");
    let model = ElbtunnelModel::paper();
    let variants = [Variant::Original, Variant::WithLb4, Variant::LbAtOdFinal];
    let widths = [6usize, 14, 14, 14, 14, 14, 14];

    let header: Vec<String> = std::iter::once("T2".to_string())
        .chain(
            variants
                .iter()
                .flat_map(|v| [format!("{v} (ana)"), format!("{v} (sim)")]),
        )
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = String::from("t2,variant,analytic,simulated,sim_lo95,sim_hi95\n");
    let t2_values: Vec<f64> = (0..21).map(|i| 5.0 + i as f64).collect();
    for (i, &t2) in t2_values.iter().enumerate() {
        let mut cells = vec![format!("{t2:.0}")];
        for variant in variants {
            let ana = scaling::false_alarm_given_correct_ohv(&model, variant, t2)?;
            let report = simulate(
                &SimConfig::paper(19.0, t2, variant),
                EPISODES,
                9000 + i as u64,
            );
            let sim = report.false_alarm_given_correct.p_hat();
            let (lo, hi) = report.false_alarm_given_correct.wilson_interval(0.95)?;
            cells.push(format!("{:.3}", ana));
            cells.push(format!("{:.3}", sim));
            let _ = writeln!(csv, "{t2},{variant},{ana},{sim},{lo},{hi}");
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\npaper anchors:");
    let p = scaling::false_alarm_given_correct_ohv(&model, Variant::Original, 15.6)?;
    println!(
        "  without_LB4 @ 15.6 min : {:.1} %  (paper: more than 80 %)",
        100.0 * p
    );
    let p = scaling::false_alarm_given_correct_ohv(&model, Variant::Original, 30.0)?;
    println!(
        "  without_LB4 @ 30 min   : {:.1} %  (paper: more than 95 %)",
        100.0 * p
    );
    let p = scaling::false_alarm_given_correct_ohv(&model, Variant::WithLb4, 15.6)?;
    println!(
        "  with_LB4    @ 15.6 min : {:.1} %  (paper: ≈ 40 %)",
        100.0 * p
    );
    let p = scaling::false_alarm_given_correct_ohv(&model, Variant::LbAtOdFinal, 15.6)?;
    println!(
        "  LB at ODfinal          : {:.1} %  (paper: ≈ 4 %)",
        100.0 * p
    );

    write_artifact("fig6_false_alarm_scaling.csv", &csv);
    Ok(())
}
