//! E5 — the text claim "a runtime of less than 10 minutes will make the
//! risk for a collision unacceptably high": sweeps `P(HCol)` over the
//! timer-2 runtime, analytically and by simulation.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin collision_sweep`

use safety_opt_bench::{row, write_artifact};
use safety_opt_elbtunnel::analytic::{ElbtunnelModel, Variant};
use safety_opt_elbtunnel::sim::{simulate, SimConfig};
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E5 — collision risk vs timer-2 runtime\n");
    let model = ElbtunnelModel::paper();
    let baseline = model.p_collision(19.0, 15.6)?;

    let widths = [6usize, 14, 12, 22];
    println!(
        "{}",
        row(
            &[
                "T2".into(),
                "P(HCol)".into(),
                "× optimum".into(),
                "sim P(OT2 | wrong lane)".into()
            ],
            &widths
        )
    );
    let mut csv = String::from("t2,p_collision,ratio_vs_optimum,sim_collision_given_wrong\n");
    for (i, &t2) in [30.0, 20.0, 15.6, 12.0, 10.0, 9.0, 8.0, 7.0, 6.0, 5.0]
        .iter()
        .enumerate()
    {
        let p = model.p_collision(19.0, t2)?;
        let ratio = p / baseline;
        // Simulated conditional collision probability for wrong-lane OHVs
        // (the mechanism behind the analytic tail).
        let report = simulate(
            &SimConfig::paper(19.0, t2, Variant::Original),
            150_000,
            7000 + i as u64,
        );
        let sim = report.collision_given_wrong_lane.p_hat();
        println!(
            "{}",
            row(
                &[
                    format!("{t2:.1}"),
                    format!("{p:.4e}"),
                    format!("{ratio:.1}"),
                    format!("{sim:.4}"),
                ],
                &widths
            )
        );
        let _ = writeln!(csv, "{t2},{p},{ratio},{sim}");
    }
    println!(
        "\npaper: below ≈ 10 minutes the collision risk becomes unacceptably high —\n\
         the table shows the risk exploding by orders of magnitude exactly there."
    );
    write_artifact("collision_sweep.csv", &csv);
    Ok(())
}
