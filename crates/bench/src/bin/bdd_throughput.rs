//! E12 — industrial-scale BDD throughput: the SCRAM-style preprocessing
//! pipeline plus module-wise BDD construction on a synthetic
//! 1000+-gate fault tree ([`synth::modular_tree`]), vs. the monolithic
//! single-BDD baseline.
//!
//! Writes `BENCH_bdd.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema. The headline numbers:
//!
//! * **pipeline wall-clock** — preprocess + per-module BDDs + compose +
//!   quantify once must finish in under [`TARGET_SECONDS`] on the
//!   1000+-gate tree;
//! * **peak BDD size** — the largest per-module BDD must be smaller
//!   than the monolithic BDD of the same (preprocessed) tree: module
//!   composition bounds the expensive object by the largest independent
//!   block, which is the entire point of the subsystem.
//!
//! A modular-vs-monolithic ≤ 1e-12 equivalence check always gates the
//! run before anything is timed.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin bdd_throughput`
//!
//! With `--enforce`, exits non-zero when either headline target fails.

use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_engine::BatchEvaluator;
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::modular::ModularPlan;
use safety_opt_fta::preprocess::{preprocess, PreprocessOutcome};
use safety_opt_fta::synth::{modular_tree, ModularTreeConfig};
use safety_opt_fta::tree::{FaultTree, NodeKind};
use std::time::Instant;

/// Wall-clock budget for the full preprocess → modular BDDs → compose →
/// quantify-once pipeline on the 1000+-gate tree.
const TARGET_SECONDS: f64 = 1.0;
/// Batch size for the tape-eval throughput modes.
const N_POINTS: usize = 4096;

fn gate_count(ft: &FaultTree) -> usize {
    ft.iter()
        .filter(|(_, n)| matches!(n.kind(), NodeKind::Gate { .. }))
        .count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    let config = ModularTreeConfig {
        modules: 48,
        sections_per_module: 12,
        leaves_per_section: 4,
        leaf_probability: 1e-3,
    };
    let ft = modular_tree(config);
    let gates = gate_count(&ft);
    assert!(
        gates >= 1000,
        "industrial workload must have >= 1000 gates, got {gates}"
    );
    println!(
        "# Industrial-scale BDD throughput — modular_tree: {gates} gates, {} leaves\n",
        ft.leaves().len()
    );

    // Timed once, end to end: the full pipeline a cold caller pays.
    let pipeline_start = Instant::now();
    let pre = preprocess(&ft)?;
    let tree = match &pre.outcome {
        PreprocessOutcome::Tree(t) => t,
        PreprocessOutcome::Constant(_) => unreachable!("workload is not constant"),
    };
    let plan = ModularPlan::build(tree)?;
    let tape = plan.leaf_tape();
    let probs: Vec<f64> = (0..tree.leaves().len())
        .map(|i| tree.node(tree.leaf(i)).probability().unwrap_or(0.0))
        .collect();
    let p_modular = tape.eval(&probs);
    let pipeline_seconds = pipeline_start.elapsed().as_secs_f64();

    // The monolithic baseline (not part of the pipeline budget).
    let mono = TreeBdd::build(tree)?;
    let p_mono = mono
        .probability(&tree.stored_probabilities()?)
        .expect("stored probabilities are total");
    let scale = p_mono.abs().max(1.0);
    assert!(
        (p_modular - p_mono).abs() <= 1e-12 * scale,
        "modular plan diverged from the monolithic BDD: {p_modular} vs {p_mono}"
    );
    println!("equivalence check     modular == monolithic, P(top) = {p_mono:.6e}\n");

    let nodes_before = mono.node_count();
    let nodes_after = plan.node_count();
    let largest = plan.largest_module_nodes();
    let report = &pre.report;

    let mono_tape = mono.shannon_plan().leaf_tape();
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|k| {
            probs
                .iter()
                .map(|&p| (p * (0.25 + 1.5 * ((k % 97) as f64 / 97.0))).clamp(0.0, 1.0))
                .collect()
        })
        .collect();

    let build_mode = measure("modular_build", "modular build", "builds/sec", 1, || {
        let pre = preprocess(&ft).unwrap();
        let t = pre.tree().expect("not constant");
        ModularPlan::build(t).unwrap().node_count() as f64
    });
    let modular_eval = measure(
        "modular_tape_eval",
        "modular tape eval",
        "points/sec",
        N_POINTS,
        || {
            BatchEvaluator::new(&tape, 1)
                .costs(&points)
                .iter()
                .sum::<f64>()
        },
    );
    let mono_eval = measure(
        "monolithic_tape_eval",
        "monolithic tape eval",
        "points/sec",
        N_POINTS,
        || {
            BatchEvaluator::new(&mono_tape, 1)
                .costs(&points)
                .iter()
                .sum::<f64>()
        },
    );

    let eval_ratio = modular_eval.points_per_sec / mono_eval.points_per_sec;
    let peak_reduced = largest < nodes_before;
    let pass = pipeline_seconds < TARGET_SECONDS && peak_reduced;
    println!();
    println!("pipeline wall-clock (preprocess+modular+quantify) : {pipeline_seconds:.4} s  (target < {TARGET_SECONDS} s)");
    println!(
        "gates before -> after preprocessing               : {} -> {}",
        report.gates_before, report.gates_after
    );
    println!("BDD nodes monolithic -> modular total             : {nodes_before} -> {nodes_after}");
    println!(
        "largest per-module BDD                            : {largest} nodes  (modules: {})",
        plan.modules().len()
    );
    println!("modular vs monolithic tape eval                   : {eval_ratio:.2}x");
    println!(
        "verdict                                           : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [build_mode, modular_eval, mono_eval];
    BenchReport {
        name: "bdd_throughput",
        workload: "modular_tree_48x12x4",
        threads: 1,
        timestamp: &timestamp,
        extras: vec![
            ("gates", gates.to_string()),
            ("leaves", ft.leaves().len().to_string()),
            ("pipeline_seconds", format!("{pipeline_seconds:.6}")),
            ("gates_before", report.gates_before.to_string()),
            ("gates_after", report.gates_after.to_string()),
            ("constants_folded", report.constants_folded.to_string()),
            ("gates_normalized", report.gates_normalized.to_string()),
            ("gates_coalesced", report.gates_coalesced.to_string()),
            ("modules", plan.modules().len().to_string()),
            ("bdd_nodes_monolithic", nodes_before.to_string()),
            ("bdd_nodes_modular_total", nodes_after.to_string()),
            ("bdd_nodes_largest_module", largest.to_string()),
        ],
        modes: &modes,
        speedups: vec![("modular_vs_monolithic_tape_eval", eval_ratio)],
        target: None,
        pass,
    }
    .write("bdd");

    if !pass {
        eprintln!(
            "bdd_throughput: pipeline {pipeline_seconds:.3}s (target < {TARGET_SECONDS}s), \
             largest module {largest} vs monolithic {nodes_before} nodes{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
