//! E2 — regenerates the optimal-configuration results of Sect. IV-C.2:
//! optimal timer runtimes, the improvement over the engineers' initial
//! (30, 30) configuration, and the per-hazard deltas — with every
//! optimizer of the library as a cross-check (ablation A1's accuracy
//! side).
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin table_optimum`

use safety_opt_bench::{row, write_artifact};
use safety_opt_core::optimize::{ConfigurationComparison, SafetyOptimizer};
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_elbtunnel::constants as c;
use safety_opt_optim::anneal::SimulatedAnnealing;
use safety_opt_optim::de::DifferentialEvolution;
use safety_opt_optim::gradient::GradientDescent;
use safety_opt_optim::grid::GridSearch;
use safety_opt_optim::hooke_jeeves::HookeJeeves;
use safety_opt_optim::multistart::MultiStart;
use safety_opt_optim::nelder_mead::NelderMead;
use safety_opt_optim::Minimizer;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Table — optimal timer configuration (paper Sect. IV-C.2)\n");
    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;

    let algorithms: Vec<Box<dyn Minimizer>> = vec![
        Box::new(MultiStart::new(NelderMead::default(), 8)),
        Box::new(NelderMead::default()),
        Box::new(HookeJeeves::default()),
        Box::new(GradientDescent::default()),
        Box::new(GridSearch::new(501)),
        Box::new(SimulatedAnnealing::default().seed(2004)),
        Box::new(DifferentialEvolution::default().seed(2004)),
    ];

    let widths = [24usize, 9, 9, 13, 11];
    println!(
        "{}",
        row(
            &[
                "algorithm".into(),
                "T1*".into(),
                "T2*".into(),
                "f_cost*".into(),
                "evals".into()
            ],
            &widths
        )
    );
    let mut csv = String::from("algorithm,t1,t2,cost,evaluations\n");
    for algo in &algorithms {
        let optimum = SafetyOptimizer::new(&model)
            .with_minimizer(algo.as_ref())
            .run()?;
        let t1 = optimum.point().value("timer1").unwrap();
        let t2 = optimum.point().value("timer2").unwrap();
        println!(
            "{}",
            row(
                &[
                    algo.name().into(),
                    format!("{t1:.2}"),
                    format!("{t2:.2}"),
                    format!("{:.6e}", optimum.cost()),
                    format!("{}", optimum.outcome().evaluations),
                ],
                &widths
            )
        );
        let _ = writeln!(
            csv,
            "{},{t1},{t2},{},{}",
            algo.name(),
            optimum.cost(),
            optimum.outcome().evaluations
        );
    }
    println!(
        "\npaper: optimum ≈ ({}, {}) min",
        c::PAPER_OPTIMUM_MIN.0,
        c::PAPER_OPTIMUM_MIN.1
    );

    // The headline claims, at the default optimizer's solution.
    let optimum = SafetyOptimizer::new(&model).run()?;
    let initial = [c::INITIAL_TIMERS_MIN.0, c::INITIAL_TIMERS_MIN.1];
    let cmp = ConfigurationComparison::compute(&model, &initial, optimum.point().values())?;
    println!("\nvs initial (30, 30):");
    print!("{cmp}");
    let alarm = cmp.hazard("false-alarm").unwrap();
    let col = cmp.hazard("collision").unwrap();
    println!(
        "false-alarm improvement : {:.2} %   (paper: ~10 %)",
        -100.0 * alarm.relative_change
    );
    println!(
        "collision-risk change   : {:+.3} %   (paper: < 0.1 %)",
        100.0 * col.relative_change
    );

    write_artifact("table_optimum.csv", &csv);
    Ok(())
}
