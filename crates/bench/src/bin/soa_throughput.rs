//! E10 — SoA backend throughput: points/sec of the scalar
//! point-at-a-time backend vs. the op-at-a-time SoA backend on the
//! Elbtunnel **surface workload** (a dense cost-surface grid over the
//! timer domain — the shape of every sweep the analysis front-ends run).
//!
//! Writes `BENCH_soa.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema. The headline number is the
//! **one-core** comparison: lane-blocked op sweeps must pay for
//! themselves through amortized dispatch and vectorized n-ary kernels
//! alone, before any thread-level parallelism.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin soa_throughput`
//!
//! With `--enforce`, exits non-zero when the one-core SoA path falls
//! below the 1.5× speedup target — meant for the quiet reference
//! machine; shared CI runners record the baseline without gating on
//! wall-clock. The SoA↔scalar **bitwise** (0 ULP) equivalence check is
//! always enforced.

use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_engine::ExecBackend;

/// Grid resolution per timer axis (N_SIDE² points per pass).
const N_SIDE: usize = 141;
/// Acceptance threshold: SoA vs. scalar points/sec on one core.
const TARGET_SPEEDUP: f64 = 1.5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    let n_points = N_SIDE * N_SIDE;
    println!("# SoA backend throughput — Elbtunnel cost surface, {N_SIDE}x{N_SIDE} grid\n");

    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let scalar = CompiledModel::compile_with_threads(&model, 1)?.with_backend(ExecBackend::Scalar);
    let soa = CompiledModel::compile_with_threads(&model, 1)?.with_backend(ExecBackend::Soa);
    let threads = safety_opt_engine::default_threads();
    let soa_parallel =
        CompiledModel::compile_with_threads(&model, threads)?.with_backend(ExecBackend::Soa);

    // The surface workload: the dense (T1, T2) grid every cost-surface /
    // sensitivity sweep evaluates.
    let (lo, hi) = paper.timer_domain;
    let step = (hi - lo) / (N_SIDE - 1) as f64;
    let points: Vec<Vec<f64>> = (0..n_points)
        .map(|i| {
            vec![
                lo + step * (i / N_SIDE) as f64,
                lo + step * (i % N_SIDE) as f64,
            ]
        })
        .collect();

    // Correctness gate before timing anything: SoA == scalar, bit for
    // bit, costs and hazards.
    let (sc, sh) = scalar.cost_and_hazards_batch(&points)?;
    let (fc, fh) = soa.cost_and_hazards_batch(&points)?;
    for (i, (a, b)) in sc.iter().zip(&fc).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "SoA diverged from scalar backend (cost, point {i})"
        );
    }
    for (i, (a, b)) in sh.iter().zip(&fh).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "SoA diverged from scalar backend (hazard slot {i})"
        );
    }
    println!("equivalence check     soa == scalar backend, 0 ULP\n");

    let scalar_mode = measure(
        "scalar_one_core",
        "scalar (1 core)",
        "points/sec",
        n_points,
        || {
            scalar
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );
    let soa_mode = measure(
        "soa_one_core",
        "soa (1 core)",
        "points/sec",
        n_points,
        || {
            soa.cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );
    let soa_par_mode = measure(
        "soa_parallel",
        "soa + parallel",
        "points/sec",
        n_points,
        || {
            soa_parallel
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );

    let speedup = soa_mode.points_per_sec / scalar_mode.points_per_sec;
    let speedup_par = soa_par_mode.points_per_sec / scalar_mode.points_per_sec;
    let pass = speedup >= TARGET_SPEEDUP;
    println!();
    println!("soa vs scalar (1 core)   : {speedup:.2}x  (target >= {TARGET_SPEEDUP}x)");
    println!("soa + parallel vs scalar : {speedup_par:.2}x  ({threads} threads)");
    println!("tape ops                 : {}", scalar.tape().n_ops());
    println!(
        "verdict                  : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [scalar_mode, soa_mode, soa_par_mode];
    BenchReport {
        name: "soa_throughput",
        workload: "elbtunnel_surface",
        threads,
        timestamp: &timestamp,
        extras: vec![
            ("n_points", n_points.to_string()),
            ("tape_ops", scalar.tape().n_ops().to_string()),
        ],
        modes: &modes,
        speedups: vec![
            ("soa_vs_scalar_one_core", speedup),
            ("soa_parallel_vs_scalar", speedup_par),
        ],
        target: Some(("soa_vs_scalar_one_core", TARGET_SPEEDUP)),
        pass,
    }
    .write("soa");

    if !pass {
        eprintln!(
            "soa_throughput: below the {TARGET_SPEEDUP}x target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
