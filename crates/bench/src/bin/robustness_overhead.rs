//! E13 — robustness overhead: points/sec of the compiled-tape batch path
//! on the Elbtunnel cost function through the fault-tolerant entry
//! points, against the infallible baseline measured first in the same
//! process.
//!
//! The fault-injection harness and the panic-isolated pool are
//! contractually near-free when disarmed; this bench enforces the cost
//! side of that contract (the chaos suite enforces the behavioral side):
//!
//! * `guarded` (disarmed failpoints, `try_costs` through the
//!   `catch_unwind`-per-chunk pool): ≥ 0.99× the infallible baseline —
//!   the disarmed fast path is one relaxed atomic load per chunk, and
//!   `catch_unwind` on the never-unwinding path is free,
//! * `deadline` (same plus a generous cooperative deadline checked
//!   per chunk): recorded but not gated (one `Instant::now` per chunk),
//! * bit-identity between the baseline and the guarded sweep is
//!   asserted in-process before anything is timed.
//!
//! Writes `BENCH_robustness.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin robustness_overhead`
//!
//! With `--enforce`, exits non-zero when the gate fails — CI runs this
//! gated: within each interleaved round the modes run back-to-back and
//! the gate takes the best per-round ratio, so genuine overhead (which
//! shows in every round) fails the gate while a one-round runner stall
//! does not.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_engine::EvalDeadline;
use std::time::Duration;

/// Points in the measurement working set (matches `engine_throughput`).
const N_POINTS: usize = 20_000;
/// Acceptance threshold: guarded vs baseline throughput ratio (≤1%
/// loss with every failpoint disarmed).
const GUARDED_FLOOR: f64 = 0.99;
/// Interleaved measurement rounds per mode (best pass wins). More
/// rounds than the other overhead benches: the gate is a 1% floor on a
/// path whose true overhead is one atomic load, so the estimate must
/// sit below the runner's pass-to-pass jitter.
const ROUNDS: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Robustness overhead — Elbtunnel cost function, fault-tolerant batch path\n");

    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let compiled = CompiledModel::compile_with_threads(&model, threads)?;

    let mut rng = StdRng::seed_from_u64(0x5AFE_2004);
    let (lo, hi) = paper.timer_domain;
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();

    // Bit-identity between the infallible path and the guarded path is
    // part of the robustness contract — assert it before timing.
    let reference = compiled.cost_batch(&points)?;
    let guarded = compiled.try_cost_batch(&points, None)?;
    assert_eq!(
        reference, guarded,
        "the guarded sweep must be bit-identical to the infallible path"
    );
    let far_away = EvalDeadline::after(Duration::from_secs(24 * 3600));
    let with_deadline = compiled.try_cost_batch(&points, Some(&far_away))?;
    assert_eq!(
        reference, with_deadline,
        "a generous deadline must not change a single bit"
    );

    // Interleave the modes across several rounds; within a round the
    // modes run back-to-back, so slow drift on a shared runner
    // (thermal, co-tenants) cancels out of the per-round ratio. The
    // gate takes the **best per-round ratio**: genuine overhead shows
    // up in every round, while a stall that happens to land on the
    // guarded slot of one round does not fail the bench. The reported
    // throughputs are still each mode's best pass across all rounds.
    enum Mode {
        Infallible,
        Guarded,
        Deadline,
    }
    let mode_plan = [
        ("baseline", "baseline (infallible)", Mode::Infallible),
        ("guarded", "guarded (try, disarmed)", Mode::Guarded),
        ("deadline", "guarded + deadline", Mode::Deadline),
    ];
    let mut best: Vec<Option<safety_opt_bench::Measurement>> = vec![None; mode_plan.len()];
    let mut ratio_guarded = f64::NEG_INFINITY;
    let mut ratio_deadline = f64::NEG_INFINITY;
    for round in 0..ROUNDS {
        println!("-- round {} of {ROUNDS} --", round + 1);
        let mut round_pps = [0.0f64; 3];
        for (slot, (key, label, mode)) in mode_plan.iter().enumerate() {
            let m = measure(key, label, "points/sec", N_POINTS, || {
                let costs = match mode {
                    Mode::Infallible => compiled.cost_batch(&points),
                    Mode::Guarded => compiled.try_cost_batch(&points, None),
                    Mode::Deadline => compiled.try_cost_batch(&points, Some(&far_away)),
                };
                costs.map(|v| v.iter().sum()).unwrap_or(0.0)
            });
            round_pps[slot] = m.points_per_sec;
            match &mut best[slot] {
                Some(b) => {
                    b.points_per_sec = b.points_per_sec.max(m.points_per_sec);
                    b.total_points += m.total_points;
                    b.seconds += m.seconds;
                }
                empty => *empty = Some(m),
            }
        }
        ratio_guarded = ratio_guarded.max(round_pps[1] / round_pps[0]);
        ratio_deadline = ratio_deadline.max(round_pps[2] / round_pps[0]);
    }
    let mut it = best.into_iter().map(|m| m.expect("every mode measured"));
    let (baseline, guarded, deadline) =
        (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());

    let pass = ratio_guarded >= GUARDED_FLOOR;

    println!();
    println!("guarded vs baseline    : {ratio_guarded:.4}  (best round; floor {GUARDED_FLOOR})");
    println!("deadline vs baseline   : {ratio_deadline:.4}  (best round; not gated)");
    println!("threads                : {threads}");
    println!(
        "verdict                : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [baseline, guarded, deadline];
    BenchReport {
        name: "robustness_overhead",
        workload: "elbtunnel_paper",
        threads,
        timestamp: &timestamp,
        extras: vec![("n_points", N_POINTS.to_string())],
        modes: &modes,
        speedups: vec![
            ("guarded_vs_baseline", ratio_guarded),
            ("deadline_vs_baseline", ratio_deadline),
        ],
        target: Some(("guarded_vs_baseline", GUARDED_FLOOR)),
        pass,
    }
    .write("robustness");

    if !pass {
        eprintln!(
            "robustness_overhead: overhead gate failed{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
