//! E1 — regenerates **Fig. 5**: the cost function `f_cost(T1, T2)` around
//! its minimum (paper window: T1 ∈ [15, 20], T2 ∈ [15, 18]).
//!
//! Prints the grid minimum, the paper's band check, and an ASCII heat
//! map; writes the full surface as CSV for external plotting.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin fig5_cost_surface`

use safety_opt_bench::write_artifact;
use safety_opt_core::surface::CostSurface;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Fig. 5 — cost surface around the minimum\n");

    // The paper zooms into T1 ∈ [15, 20] × T2 ∈ [15, 18].
    let mut windowed = ElbtunnelModel::paper();
    windowed.timer_domain = (15.0, 20.0);
    let model = windowed.build()?;
    let (t1, t2) = ElbtunnelModel::timer_ids(&model);
    let reference = model.space().center();
    let surface = CostSurface::evaluate(&model, t1, t2, &reference, 81, 81)?;

    let (mx, my, mv) = surface.minimum();
    println!("grid minimum : f({mx:.3}, {my:.3}) = {mv:.6e}");
    println!("paper        : minimum near (19, 15.6), band ≈ 0.0046 … 0.0047");
    println!(
        "band check   : {}",
        if (0.0046..0.0047).contains(&mv) {
            "INSIDE the paper's band"
        } else {
            "outside band"
        }
    );

    println!("\nASCII heat map (low = ' ', high = '@', * = minimum):");
    // A coarser grid keeps the map terminal-sized.
    let coarse = CostSurface::evaluate(&model, t1, t2, &reference, 60, 24)?;
    print!("{}", coarse.to_ascii());

    write_artifact("fig5_cost_surface.csv", &surface.to_csv());

    // Also emit the full-domain surface for context (T ∈ [5, 30]²).
    let full_model = ElbtunnelModel::paper().build()?;
    let (ft1, ft2) = ElbtunnelModel::timer_ids(&full_model);
    let full_ref = full_model.space().center();
    let full = CostSurface::evaluate(&full_model, ft1, ft2, &full_ref, 101, 101)?;
    write_artifact("fig5_cost_surface_full_domain.csv", &full.to_csv());
    Ok(())
}
