//! E11 — exact-quantification throughput: points/sec of the per-point
//! BDD oracle (`TreeBdd::probability` with freshly evaluated leaf
//! probabilities, the pre-subsystem way to get exact numbers) vs. the
//! **compiled BDD Shannon tape** (`QuantMethod::BddExact` lowered onto
//! the engine's fused `MulAdd` ops) on the Elbtunnel fault trees over a
//! dense timer grid.
//!
//! Writes `BENCH_exact.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema. The headline number is the
//! **one-core** comparison: the compiled tape must win on batched leaf
//! kernels + flat op sweeps alone (no per-point `HashMap` memo, no
//! per-point `ProbabilityMap`), before thread-level parallelism. A
//! compiled rare-event mode is recorded alongside, so the baseline also
//! documents what exactness costs *on the tape* (spoiler: the Shannon
//! ops are in the same ballpark as the cut-set sum).
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin exact_throughput`
//!
//! With `--enforce`, exits non-zero when the one-core compiled tape
//! falls below the 3× target over the per-point oracle. The
//! compiled↔oracle ≤ 1e-12 equivalence check is always enforced.

use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::model::{Hazard, QuantMethod, SafetyModel};
use safety_opt_core::param::ParamValues;
use safety_opt_core::param::ParameterSpace;
use safety_opt_core::pprob::{constant, exposure, overtime, product, scaled, sum, ProbExpr};
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_elbtunnel::fault_trees::{collision_tree, false_alarm_tree, names};
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::quant::ProbabilityMap;
use safety_opt_fta::tree::FaultTree;

/// Grid resolution per timer axis (N_SIDE² points per pass).
const N_SIDE: usize = 141;
/// Acceptance threshold: compiled exact tape vs. per-point BDD oracle,
/// points/sec on one core.
const TARGET_SPEEDUP: f64 = 3.0;

/// The Elbtunnel hazards as (tree, leaf substitution) pairs — the real
/// Sect. IV-B fault trees with the calibrated parameterized leaves.
fn hazards(m: &ElbtunnelModel, space: &mut ParameterSpace) -> Vec<(FaultTree, Vec<ProbExpr>, f64)> {
    let (lo, hi) = m.timer_domain;
    let t1 = space.parameter("timer1", lo, hi).unwrap();
    let t2 = space.parameter("timer2", lo, hi).unwrap();
    let transit = m.transit_distribution().unwrap();
    let activation = sum([
        constant(m.p_ohv).unwrap(),
        scaled(
            1.0 - m.p_ohv,
            product([
                constant(m.p_fd_lbpre).unwrap(),
                exposure(m.lambda_fd_lb, t1),
            ]),
        )
        .unwrap(),
    ]);

    let mut out = Vec::new();
    for (ft, cost) in [
        (collision_tree().unwrap(), m.cost_collision),
        (false_alarm_tree().unwrap(), m.cost_false_alarm),
    ] {
        let exprs: Vec<ProbExpr> = (0..ft.leaves().len())
            .map(|leaf| match ft.node(ft.leaf(leaf)).name() {
                names::OT1 => overtime(transit, t1),
                names::OT2 => overtime(transit, t2),
                names::MD_ODLEFT | names::MD_ODFINAL => constant(1e-5).unwrap(),
                names::HV_ODFINAL => exposure(m.lambda_hv, t2),
                names::FD_ODFINAL => scaled(1e-2, exposure(m.lambda_hv, t2)).unwrap(),
                names::HV_ODLEFT => constant(5e-3).unwrap(),
                names::FD_ODLEFT => constant(1e-4).unwrap(),
                names::OHV_CRITICAL => constant(m.p_ohv_critical).unwrap(),
                names::OHV_PRESENT => constant(m.p_ohv).unwrap(),
                names::ODFINAL_ACTIVE => activation.clone(),
                other => unreachable!("unexpected leaf {other}"),
            })
            .collect();
        out.push((ft, exprs, cost));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    let n_points = N_SIDE * N_SIDE;
    println!("# Exact quantification throughput — Elbtunnel fault trees, {N_SIDE}x{N_SIDE} grid\n");

    let m = ElbtunnelModel::paper();
    let mut space = ParameterSpace::new();
    let trees = hazards(&m, &mut space);

    // The compiled side: hazards from the same trees + expressions,
    // lowered under both quantification methods.
    let mut exact_model = SafetyModel::new(space).with_quant_method(QuantMethod::BddExact);
    for (ft, exprs, cost) in &trees {
        let hazard = Hazard::from_fault_tree(ft, |leaf| Ok(exprs[leaf].clone()))?;
        exact_model = exact_model.hazard(hazard, *cost);
    }
    let rare_model = exact_model
        .clone()
        .with_quant_method(QuantMethod::RareEvent);
    let exact = CompiledModel::compile_with_threads(&exact_model, 1)?;
    let rare = CompiledModel::compile_with_threads(&rare_model, 1)?;
    let threads = safety_opt_engine::default_threads();
    let exact_parallel = CompiledModel::compile_with_threads(&exact_model, threads)?;

    // The oracle side: BDDs built once (that part is compile-time
    // either way), probabilities per point.
    let bdds: Vec<TreeBdd> = trees
        .iter()
        .map(|(ft, _, _)| TreeBdd::build(ft).unwrap())
        .collect();
    let per_point = |x: &[f64]| -> f64 {
        let params = ParamValues::new(x);
        let mut cost = 0.0;
        for ((ft, exprs, weight), bdd) in trees.iter().zip(&bdds) {
            let pm = ProbabilityMap::from_fn(ft, |leaf| {
                exprs[leaf]
                    .eval(&params)
                    .expect("calibrated leaves evaluate")
            })
            .expect("calibrated leaves are probabilities");
            cost += weight * bdd.probability(&pm).expect("probability map is total");
        }
        cost
    };

    let (lo, hi) = m.timer_domain;
    let step = (hi - lo) / (N_SIDE - 1) as f64;
    let points: Vec<Vec<f64>> = (0..n_points)
        .map(|i| {
            vec![
                lo + step * (i / N_SIDE) as f64,
                lo + step * (i % N_SIDE) as f64,
            ]
        })
        .collect();

    // Correctness gate before timing anything: compiled exact tape ==
    // per-point BDD oracle, ≤ 1e-12 relative.
    let compiled_costs = exact.cost_batch(&points)?;
    let mut max_rel = 0.0f64;
    for (i, p) in points.iter().enumerate() {
        let want = per_point(p);
        let got = compiled_costs[i];
        let rel = (got - want).abs() / want.abs().max(1.0);
        assert!(
            rel <= 1e-12,
            "compiled exact tape diverged from the BDD oracle at {p:?}: {got} vs {want}"
        );
        max_rel = max_rel.max(rel);
    }
    println!("equivalence check     compiled == TreeBdd::probability, max rel {max_rel:.2e}\n");

    // The measured approximation error the subsystem removes: the
    // rare-event cost over-estimate at the paper optimum.
    let opt = [19.0, 15.6];
    let gap = (rare.cost(&opt)? - exact.cost(&opt)?) / exact.cost(&opt)?;

    let oracle_mode = measure(
        "bdd_per_point",
        "per-point BDD oracle",
        "points/sec",
        n_points,
        || points.iter().map(|p| per_point(p)).sum(),
    );
    let exact_mode = measure(
        "compiled_exact_one_core",
        "compiled exact (1 core)",
        "points/sec",
        n_points,
        || {
            exact
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );
    let rare_mode = measure(
        "compiled_rare_event",
        "compiled rare-event",
        "points/sec",
        n_points,
        || {
            rare.cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );
    let parallel_mode = measure(
        "compiled_exact_parallel",
        "compiled exact + parallel",
        "points/sec",
        n_points,
        || {
            exact_parallel
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        },
    );

    let speedup = exact_mode.points_per_sec / oracle_mode.points_per_sec;
    let speedup_par = parallel_mode.points_per_sec / oracle_mode.points_per_sec;
    let exactness_cost = exact_mode.points_per_sec / rare_mode.points_per_sec;
    let pass = speedup >= TARGET_SPEEDUP;
    println!();
    println!(
        "compiled exact vs per-point BDD (1 core) : {speedup:.2}x  (target >= {TARGET_SPEEDUP}x)"
    );
    println!("compiled exact + parallel vs per-point   : {speedup_par:.2}x  ({threads} threads)");
    println!("compiled exact vs compiled rare-event    : {exactness_cost:.2}x");
    println!(
        "exact tape ops                           : {}",
        exact.tape().n_ops()
    );
    println!(
        "rare-event tape ops                      : {}",
        rare.tape().n_ops()
    );
    println!("rare-event cost over-estimate at optimum : {:.3e}", gap);
    println!(
        "verdict                                  : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [oracle_mode, exact_mode, rare_mode, parallel_mode];
    BenchReport {
        name: "exact_throughput",
        workload: "elbtunnel_fault_trees",
        threads,
        timestamp: &timestamp,
        extras: vec![
            ("n_points", n_points.to_string()),
            ("exact_tape_ops", exact.tape().n_ops().to_string()),
            ("rare_event_tape_ops", rare.tape().n_ops().to_string()),
            (
                "rare_event_cost_overestimate_at_optimum",
                format!("{gap:.6e}"),
            ),
        ],
        modes: &modes,
        speedups: vec![
            ("compiled_exact_vs_per_point_one_core", speedup),
            ("compiled_exact_parallel_vs_per_point", speedup_par),
            ("compiled_exact_vs_compiled_rare_event", exactness_cost),
        ],
        target: Some(("compiled_exact_vs_per_point_one_core", TARGET_SPEEDUP)),
        pass,
    }
    .write("exact");

    if !pass {
        eprintln!(
            "exact_throughput: below the {TARGET_SPEEDUP}x target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
