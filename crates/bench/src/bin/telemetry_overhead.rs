//! E12 — telemetry overhead: points/sec of the compiled-tape batch path
//! on the Elbtunnel cost function with telemetry `off`, `counters`, and
//! `full`, plus the structured-trace modes (`events` and `full`, on top
//! of full telemetry), against an `off` baseline measured first in the
//! same process.
//!
//! The telemetry subsystem is contractually observation-only and
//! near-free when disabled; this bench enforces the cost side of that
//! contract (the equivalence suites enforce the bit-identity side):
//!
//! * `off`: ≤ 1% slower than the baseline (same mode, re-measured —
//!   the noise floor of the gate itself; tracing is also off, so this
//!   doubles as the trace-off gate),
//! * `counters`: ≤ 3% slower than the baseline,
//! * `full`: recorded but not gated (span clock reads are real work,
//!   and the mode is a diagnostics opt-in),
//! * `trace_events` (`SAFETY_OPT_TRACE=events` on `counters`
//!   telemetry, the production pairing): ≤ 3% slower than the baseline
//!   — the event ring buffer is a few relaxed atomics plus a
//!   sharded-mutex push per span/scope, far off the per-point hot
//!   path, and scoped attribution buffers thread-locally,
//! * `trace_full` (full telemetry + the per-op tape profiler): recorded
//!   but not gated (a clock read per op is real, intentional work — the
//!   mode is the deep-dive diagnostics opt-in).
//!
//! Writes `BENCH_telemetry.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema, plus a sample telemetry
//! snapshot (`results/telemetry_snapshot.json`, captured after the
//! `full`-mode passes) so CI archives what the registry actually emits.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin telemetry_overhead`
//!
//! With `--enforce`, exits non-zero when a gate fails — CI runs this
//! gated: the best-of-passes measurement loop absorbs transient runner
//! load, and the gated modes differ only in a few relaxed atomic adds.
//!
//! The modes are forced programmatically ([`telemetry::set_mode`] and
//! [`telemetry::set_trace_mode`]) so one process measures every mode on
//! identical warmed state; the `SAFETY_OPT_TELEMETRY` and
//! `SAFETY_OPT_TRACE` env variables are ignored here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safety_opt_bench::{bench_timestamp, measure, write_artifact, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_telemetry as telemetry;

/// Points in the measurement working set (matches `engine_throughput`).
const N_POINTS: usize = 20_000;
/// Acceptance threshold: `off` vs baseline throughput ratio (≤1% loss).
const OFF_FLOOR: f64 = 0.99;
/// Acceptance threshold: `counters` vs baseline throughput ratio
/// (≤3% loss).
const COUNTERS_FLOOR: f64 = 0.97;
/// Acceptance threshold: `trace_events` vs baseline throughput ratio
/// (≤3% loss).
const TRACE_EVENTS_FLOOR: f64 = 0.97;
/// Interleaved measurement rounds per mode (best pass wins).
const ROUNDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!("# Telemetry overhead — Elbtunnel cost function, compiled batch path\n");

    let paper = ElbtunnelModel::paper();
    let model = paper.build()?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let compiled = CompiledModel::compile_with_threads(&model, threads)?;

    let mut rng = StdRng::seed_from_u64(0x5AFE_2004);
    let (lo, hi) = paper.timer_domain;
    let points: Vec<Vec<f64>> = (0..N_POINTS)
        .map(|_| {
            vec![
                lo + rng.gen::<f64>() * (hi - lo),
                lo + rng.gen::<f64>() * (hi - lo),
            ]
        })
        .collect();

    let run_mode = |key: &'static str,
                    label: &str,
                    mode: telemetry::TelemetryMode,
                    trace: telemetry::TraceMode| {
        telemetry::set_mode(mode);
        telemetry::set_trace_mode(trace);
        let m = measure(key, label, "points/sec", N_POINTS, || {
            let _scope = telemetry::TraceScope::enter("bench.sweep");
            compiled
                .cost_batch(&points)
                .map(|v| v.iter().sum())
                .unwrap_or(0.0)
        });
        // Drain the ring between passes so every trace-mode pass fills
        // it from empty instead of inheriting drop-oldest churn.
        telemetry::trace::clear_events();
        m
    };

    // Bit-identity across modes is enforced by the equivalence suites;
    // assert the cheap end of it here too before timing anything: every
    // telemetry and trace mode must leave the floats untouched.
    telemetry::set_mode(telemetry::TelemetryMode::Off);
    telemetry::set_trace_mode(telemetry::TraceMode::Off);
    let reference = compiled.cost_batch(&points)?;
    for trace in [telemetry::TraceMode::Events, telemetry::TraceMode::Full] {
        telemetry::set_mode(telemetry::TelemetryMode::Full);
        telemetry::set_trace_mode(trace);
        let instrumented = compiled.cost_batch(&points)?;
        assert_eq!(
            reference, instrumented,
            "telemetry and tracing must be observation-only (trace {trace:?})"
        );
    }
    telemetry::set_mode(telemetry::TelemetryMode::Off);
    telemetry::set_trace_mode(telemetry::TraceMode::Off);
    telemetry::trace::clear_events();

    // Interleave the modes across several rounds and keep each mode's
    // best pass: slow drift on a shared runner (thermal, co-tenants)
    // then biases every mode equally instead of penalizing whichever
    // mode happened to run during a stall.
    let mode_plan = [
        (
            "baseline_off",
            "baseline (off)",
            telemetry::TelemetryMode::Off,
            telemetry::TraceMode::Off,
        ),
        (
            "off",
            "off (re-measured)",
            telemetry::TelemetryMode::Off,
            telemetry::TraceMode::Off,
        ),
        (
            "counters",
            "counters",
            telemetry::TelemetryMode::Counters,
            telemetry::TraceMode::Off,
        ),
        (
            "full",
            "full",
            telemetry::TelemetryMode::Full,
            telemetry::TraceMode::Off,
        ),
        (
            "trace_events",
            "trace events (counters telemetry)",
            telemetry::TelemetryMode::Counters,
            telemetry::TraceMode::Events,
        ),
        (
            "trace_full",
            "trace full (full telemetry, profiler)",
            telemetry::TelemetryMode::Full,
            telemetry::TraceMode::Full,
        ),
    ];
    let mut best: Vec<Option<safety_opt_bench::Measurement>> = vec![None; mode_plan.len()];
    for round in 0..ROUNDS {
        println!("-- round {} of {ROUNDS} --", round + 1);
        for (slot, &(key, label, mode, trace)) in mode_plan.iter().enumerate() {
            let m = run_mode(key, label, mode, trace);
            match &mut best[slot] {
                Some(b) => {
                    b.points_per_sec = b.points_per_sec.max(m.points_per_sec);
                    b.total_points += m.total_points;
                    b.seconds += m.seconds;
                }
                empty => *empty = Some(m),
            }
        }
    }
    let mut it = best.into_iter().map(|m| m.expect("every mode measured"));
    let (baseline, off, counters, full, trace_events, trace_full) = (
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
    );
    // Re-run full mode last so the archived snapshot reflects a
    // full-mode sweep (spans included).
    telemetry::set_mode(telemetry::TelemetryMode::Full);
    telemetry::set_trace_mode(telemetry::TraceMode::Off);
    let _ = compiled.cost_batch(&points)?;

    // Archive what the registry saw during the full-mode passes.
    let snapshot = telemetry::snapshot();
    write_artifact("telemetry_snapshot.json", &snapshot.to_json());

    let ratio_off = off.points_per_sec / baseline.points_per_sec;
    let ratio_counters = counters.points_per_sec / baseline.points_per_sec;
    let ratio_full = full.points_per_sec / baseline.points_per_sec;
    let ratio_trace_events = trace_events.points_per_sec / baseline.points_per_sec;
    let ratio_trace_full = trace_full.points_per_sec / baseline.points_per_sec;
    let off_ok = ratio_off >= OFF_FLOOR;
    let counters_ok = ratio_counters >= COUNTERS_FLOOR;
    let trace_events_ok = ratio_trace_events >= TRACE_EVENTS_FLOOR;
    let pass = off_ok && counters_ok && trace_events_ok;

    println!();
    println!("off vs baseline          : {ratio_off:.4}  (floor {OFF_FLOOR})");
    println!("counters vs baseline     : {ratio_counters:.4}  (floor {COUNTERS_FLOOR})");
    println!("full vs baseline         : {ratio_full:.4}  (not gated)");
    println!("trace events vs baseline : {ratio_trace_events:.4}  (floor {TRACE_EVENTS_FLOOR})");
    println!("trace full vs baseline   : {ratio_trace_full:.4}  (not gated)");
    println!("threads                  : {threads}");
    println!(
        "verdict                  : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [baseline, off, counters, full, trace_events, trace_full];
    BenchReport {
        name: "telemetry_overhead",
        workload: "elbtunnel_paper",
        threads,
        timestamp: &timestamp,
        extras: vec![
            ("n_points", N_POINTS.to_string()),
            ("counters_floor", COUNTERS_FLOOR.to_string()),
            ("trace_events_floor", TRACE_EVENTS_FLOOR.to_string()),
        ],
        modes: &modes,
        speedups: vec![
            ("off_vs_baseline", ratio_off),
            ("counters_vs_baseline", ratio_counters),
            ("full_vs_baseline", ratio_full),
            ("trace_events_vs_baseline", ratio_trace_events),
            ("trace_full_vs_baseline", ratio_trace_full),
        ],
        target: Some(("off_vs_baseline", OFF_FLOOR)),
        pass,
    }
    .write("telemetry");

    if !pass {
        eprintln!(
            "telemetry_overhead: overhead gate failed{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
