//! E7 — validation: discrete-event simulation vs the analytic model on
//! every quantity both can produce, with 99 % Wilson intervals (16
//! simultaneous coverage cells — 95 % would be expected to miss one by
//! chance).
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin sim_vs_analytic`

use safety_opt_bench::{row, write_artifact};
use safety_opt_elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_opt_elbtunnel::sim::{simulate, SimConfig};
use std::fmt::Write as _;

const EPISODES: u64 = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E7 — simulator vs analytic model ({EPISODES} episodes per cell)\n");
    let model = ElbtunnelModel::paper();
    let widths = [16usize, 8, 12, 12, 20, 9];
    println!(
        "{}",
        row(
            &[
                "quantity".into(),
                "T2".into(),
                "analytic".into(),
                "simulated".into(),
                "99% interval".into(),
                "covered".into()
            ],
            &widths
        )
    );
    let mut csv = String::from("quantity,t2,analytic,simulated,lo99,hi99,covered\n");
    let mut all_covered = true;
    let mut check = |name: &str, t2: f64, analytic: f64, sim: f64, lo: f64, hi: f64| {
        let covered = analytic >= lo && analytic <= hi;
        all_covered &= covered;
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{t2:.1}"),
                    format!("{analytic:.5}"),
                    format!("{sim:.5}"),
                    format!("[{lo:.5}, {hi:.5}]"),
                    if covered { "yes".into() } else { "NO".into() },
                ],
                &widths
            )
        );
        let _ = writeln!(csv, "{name},{t2},{analytic},{sim},{lo},{hi},{covered}");
    };

    for (i, &t2) in [8.0, 12.0, 15.6, 20.0, 25.0].iter().enumerate() {
        let report = simulate(
            &SimConfig::paper(19.0, t2, Variant::Original),
            EPISODES,
            100 + i as u64,
        );
        let est = &report.false_alarm_given_correct;
        let (lo, hi) = est.wilson_interval(0.99)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&model, Variant::Original, t2)?;
        check("fa|correct,orig", t2, analytic, est.p_hat(), lo, hi);
    }
    for (i, &t2) in [10.0, 15.6].iter().enumerate() {
        let report = simulate(
            &SimConfig::paper(19.0, t2, Variant::LbAtOdFinal),
            EPISODES,
            300 + i as u64,
        );
        let est = &report.false_alarm_given_correct;
        let (lo, hi) = est.wilson_interval(0.99)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&model, Variant::LbAtOdFinal, t2)?;
        check("fa|correct,LBod", t2, analytic, est.p_hat(), lo, hi);
    }
    for (i, &t2) in [7.0, 9.0, 12.0].iter().enumerate() {
        let report = simulate(
            &SimConfig::paper(30.0, t2, Variant::Original),
            EPISODES,
            400 + i as u64,
        );
        let est = &report.overtime2;
        let (lo, hi) = est.wilson_interval(0.99)?;
        let analytic = model.p_overtime(t2)?;
        check("P(OT2)", t2, analytic, est.p_hat(), lo, hi);
    }

    for (i, &t2) in [10.0, 15.6, 25.0].iter().enumerate() {
        let report = simulate(
            &SimConfig::paper(19.0, t2, Variant::WithLb4),
            EPISODES,
            500 + i as u64,
        );
        let est = &report.false_alarm_given_correct;
        let (lo, hi) = est.wilson_interval(0.99)?;
        let analytic = scaling::false_alarm_given_correct_ohv(&model, Variant::WithLb4, t2)?;
        check("fa|correct,LB4", t2, analytic, est.p_hat(), lo, hi);
    }

    println!(
        "\noverall: {}",
        if all_covered {
            "every analytic value inside its 99 % simulation interval"
        } else {
            "COVERAGE FAILURES above"
        }
    );
    write_artifact("sim_vs_analytic.csv", &csv);
    Ok(())
}
