//! A3 — ablation: constraint probabilities ON (the paper's Eq. 2) vs OFF
//! (classical worst-case quantitative FTA, `P(Constraints) = 1`).
//!
//! The paper argues that setting the constraint probabilities to 1
//! reproduces the classical formula but wildly overestimates the risk;
//! this harness quantifies that, and shows the optimizer would pick a
//! *different* (worse) configuration without constraints.
//!
//! Run with: `cargo run --release -p safety-opt-bench --bin constraint_ablation`

use safety_opt_bench::{row, write_artifact};
use safety_opt_core::optimize::SafetyOptimizer;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# A3 — constraint probabilities: Eq. 2 vs worst-case (P = 1)\n");
    let with = ElbtunnelModel::paper();
    // Worst case: every constraint certain — an OHV is always present and
    // always heading the wrong way.
    let mut without = ElbtunnelModel::paper();
    without.p_ohv = 1.0;
    without.p_ohv_critical = 1.0;

    let widths = [26usize, 16, 16, 10];
    println!(
        "{}",
        row(
            &[
                "quantity (at 19, 15.6)".into(),
                "with constraints".into(),
                "worst case".into(),
                "factor".into()
            ],
            &widths
        )
    );
    let mut csv = String::from("quantity,with_constraints,worst_case,factor\n");
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "P(HCol)",
            with.p_collision(19.0, 15.6)?,
            without.p_collision(19.0, 15.6)?,
        ),
        (
            "P(HAlr)",
            with.p_false_alarm(19.0, 15.6),
            without.p_false_alarm(19.0, 15.6),
        ),
        ("f_cost", with.cost(19.0, 15.6)?, without.cost(19.0, 15.6)?),
    ];
    for (name, a, b) in rows {
        let factor = b / a;
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{a:.4e}"),
                    format!("{b:.4e}"),
                    format!("{factor:.1}x"),
                ],
                &widths
            )
        );
        let _ = writeln!(csv, "{name},{a},{b},{factor}");
    }

    // What configuration would the worst-case analyst pick?
    let with_model = with.build()?;
    let without_model = without.build()?;
    let opt_with = SafetyOptimizer::new(&with_model).run()?;
    let opt_without = SafetyOptimizer::new(&without_model).run()?;
    println!("\noptimum with constraints   : {}", opt_with.point());
    println!("optimum in the worst case  : {}", opt_without.point());

    // Evaluate the worst-case-chosen configuration under the *real*
    // (constrained) model: the cost of ignoring the environment.
    let misconfigured = with_model.cost(opt_without.point().values())?;
    let proper = opt_with.cost();
    println!(
        "\nreal mean cost of the worst-case configuration: {misconfigured:.4e}\n\
         real mean cost of the constrained optimum     : {proper:.4e}\n\
         penalty for ignoring constraint probabilities : {:+.2} %",
        100.0 * (misconfigured - proper) / proper
    );
    let _ = writeln!(
        csv,
        "penalty_percent,{},,",
        100.0 * (misconfigured - proper) / proper
    );

    // The same story at fault-tree level, via the Sect. II-D.1 bounds.
    let tree = safety_opt_elbtunnel::fault_trees::false_alarm_tree()?;
    let activation = with.p_ohv + (1.0 - with.p_ohv) * with.p_fd_lbpre * with.p_fd_lbpost(19.0);
    let probs = safety_opt_fta::quant::ProbabilityMap::from_fn(&tree, |leaf| {
        use safety_opt_elbtunnel::fault_trees::names;
        match tree.node(tree.leaf(leaf)).name() {
            names::HV_ODFINAL => with.p_hv_odfinal(15.6),
            names::FD_ODFINAL => 1e-2 * with.p_hv_odfinal(15.6),
            names::HV_ODLEFT => 5e-3,
            names::FD_ODLEFT => 1e-4,
            names::OHV_PRESENT => with.p_ohv,
            names::ODFINAL_ACTIVE => activation,
            _ => unreachable!(),
        }
    })?;
    let report = safety_opt_fta::constraints::ConstraintReport::compute(&tree, &probs)?;
    println!("\nfault-tree-level constraint bounds (false-alarm tree at (19, 15.6)):");
    println!(
        "  P(HAlr) with independence bound : {:.4e}",
        report.hazard_probability_independent()
    );
    println!(
        "  P(HAlr) dependence-safe bound   : {:.4e}",
        report.hazard_probability_dependent()
    );
    println!(
        "  P(HAlr) worst case (classical)  : {:.4e}",
        report.hazard_probability_worst_case()
    );
    println!(
        "  constraints collected           : {:?}",
        report.all_conditions()
    );
    write_artifact("constraint_ablation.csv", &csv);
    Ok(())
}
