//! E11 — gradient throughput: gradients/sec of central differences
//! (`2·dim` tape sweeps per gradient) vs. the reverse-mode **adjoint
//! pass** (one forward + one backward sweep, cost independent of the
//! dimension) on two workloads:
//!
//! * a 10-parameter synthetic hazard family (the ≥8-dim regime where
//!   the `O(dim)` finite-difference cost bites — this is the gated
//!   headline number), and
//! * the 2-parameter Elbtunnel objective (recorded for context; at
//!   `dim = 2` finite differences only pay 4 sweeps, so the adjoint win
//!   is structural, not dramatic).
//!
//! Writes `BENCH_grad.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin grad_throughput`
//!
//! With `--enforce`, exits non-zero when the adjoint pass falls below
//! the 3× gradients/sec target on the synthetic family. Unlike the
//! wall-clock-sensitive throughput bins, CI *does* enforce this gate:
//! both sides run on the same core in the same process, and the win is
//! algorithmic (dimension-independent sweeps vs. `2·dim` sweeps), so a
//! noisy runner cannot flip the verdict. The adjoint↔central-difference
//! agreement check always runs first.

use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::model::{Hazard, SafetyModel};
use safety_opt_core::param::ParameterSpace;
use safety_opt_core::pprob::{complement, constant, exposure, overtime};
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_stats::dist::TruncatedNormal;

/// Synthetic-family parameter count (the issue's "≥8-dim" regime).
const SYN_DIM: usize = 10;
/// Points per measured pass.
const SYN_POINTS: usize = 256;
const ELB_POINTS: usize = 1024;
/// Acceptance threshold: adjoint vs. central-difference gradients/sec
/// on the synthetic family, one core.
const TARGET_SPEEDUP: f64 = 3.0;

/// A dense `SYN_DIM`-parameter safety model: one hazard per timer
/// (overtime + averted-overtime/exposure cut sets coupling neighboring
/// timers), the shape the paper's method produces for larger systems.
fn synthetic_model() -> SafetyModel {
    let mut space = ParameterSpace::new();
    let params: Vec<_> = (0..SYN_DIM)
        .map(|i| space.parameter(format!("t{i}"), 1.0, 30.0).unwrap())
        .collect();
    let mut model = SafetyModel::new(space);
    for i in 0..SYN_DIM {
        let d = TruncatedNormal::lower_bounded(4.0 + 0.3 * i as f64, 2.0, 0.0).unwrap();
        let next = params[(i + 1) % SYN_DIM];
        let crit = constant(1e-3 * (1.0 + i as f64)).unwrap();
        let hazard = Hazard::builder(format!("h{i}"))
            .residual("rest", 1e-8)
            .cut_set("overtime", [crit.clone(), overtime(d, params[i])])
            .cut_set(
                "averted",
                [
                    crit,
                    complement(overtime(d, params[i])),
                    exposure(0.05 + 0.01 * i as f64, next),
                ],
            )
            .build();
        model = model.hazard(hazard, 10.0 + 1e4 * (i % 3) as f64);
    }
    model
}

fn grid_points(dim: usize, n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let u = ((i * dim + j) as f64 * 0.618_033_988_749_894_9).fract();
                    lo + (hi - lo) * u
                })
                .collect()
        })
        .collect()
}

/// One full batch of central-difference gradients: `2·dim` probe points
/// per gradient, all sharded through one `cost_batch` call (the same
/// batching advantage the adjoint side gets), returning a checksum.
fn fd_gradients(compiled: &CompiledModel, points: &[Vec<f64>], h: f64, out: &mut Vec<f64>) -> f64 {
    let dim = compiled.dim();
    let mut probes = Vec::with_capacity(points.len() * 2 * dim);
    for p in points {
        for i in 0..dim {
            let mut hi = p.clone();
            hi[i] += h;
            probes.push(hi);
            let mut lo = p.clone();
            lo[i] -= h;
            probes.push(lo);
        }
    }
    let costs = compiled.cost_batch(&probes).expect("fd probes evaluate");
    out.clear();
    let mut checksum = 0.0;
    for pt in 0..points.len() {
        for i in 0..dim {
            let fp = costs[pt * 2 * dim + 2 * i];
            let fm = costs[pt * 2 * dim + 2 * i + 1];
            let g = (fp - fm) / (2.0 * h);
            out.push(g);
            checksum += g;
        }
    }
    checksum
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    println!(
        "# Gradient throughput — adjoint pass vs central differences \
         ({SYN_DIM}-dim synthetic family + Elbtunnel)\n"
    );

    let synthetic = synthetic_model();
    let syn = CompiledModel::compile_with_threads(&synthetic, 1)?;
    let syn_points = grid_points(SYN_DIM, SYN_POINTS, 2.0, 29.0);

    let paper = ElbtunnelModel::paper();
    let elb_model = paper.build()?;
    let elb = CompiledModel::compile_with_threads(&elb_model, 1)?;
    let (lo, hi) = paper.timer_domain;
    let elb_points = grid_points(2, ELB_POINTS, lo + 0.5, hi - 0.5);

    // Correctness gate before timing anything: adjoint == central
    // differences within mixed tolerance on both workloads (the FD step
    // is large enough that the reference's own cancellation error stays
    // below the bound).
    let fd_h = 1e-4;
    for (label, compiled, points) in [
        ("synthetic", &syn, &syn_points),
        ("elbtunnel", &elb, &elb_points),
    ] {
        let mut fd = Vec::new();
        fd_gradients(compiled, &points[..16.min(points.len())], fd_h, &mut fd);
        let (_, adj) = compiled.gradient_batch(&points[..16.min(points.len())])?;
        for (i, (a, f)) in adj.iter().zip(&fd).enumerate() {
            // Mixed tolerance: the absolute floor absorbs the
            // reference's own subtractive-cancellation noise
            // (≈ε·|cost|/h) on near-zero components; the adversarial
            // rigor lives in `engine/tests/grad_equivalence.rs`.
            let scale = a.abs().max(f.abs());
            assert!(
                (a - f).abs() <= 1e-4 * scale + 1e-9,
                "{label}: adjoint diverged from central differences at slot {i}: {a} vs {f}"
            );
        }
    }
    println!("equivalence check     adjoint == central differences (mixed 1e-4 tol)\n");

    let mut fd_buf = Vec::new();
    let syn_fd = measure(
        "fd_synthetic_one_core",
        "fd 10-dim (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || fd_gradients(&syn, &syn_points, fd_h, &mut fd_buf),
    );
    let syn_adj = measure(
        "adjoint_synthetic_one_core",
        "adjoint 10-dim (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || {
            let (_, g) = syn.gradient_batch(&syn_points).expect("adjoint batch");
            g.iter().sum()
        },
    );
    let elb_fd = measure(
        "fd_elbtunnel_one_core",
        "fd elbtunnel (1 core)",
        "gradients/sec",
        ELB_POINTS,
        || fd_gradients(&elb, &elb_points, fd_h, &mut fd_buf),
    );
    let elb_adj = measure(
        "adjoint_elbtunnel_one_core",
        "adjoint elbtunnel (1 core)",
        "gradients/sec",
        ELB_POINTS,
        || {
            let (_, g) = elb.gradient_batch(&elb_points).expect("adjoint batch");
            g.iter().sum()
        },
    );

    let speedup_syn = syn_adj.points_per_sec / syn_fd.points_per_sec;
    let speedup_elb = elb_adj.points_per_sec / elb_fd.points_per_sec;
    let pass = speedup_syn >= TARGET_SPEEDUP;
    println!();
    println!(
        "adjoint vs fd, {SYN_DIM}-dim synthetic : {speedup_syn:.2}x  (target >= {TARGET_SPEEDUP}x)"
    );
    println!("adjoint vs fd, elbtunnel (dim 2) : {speedup_elb:.2}x  (recorded, not gated)");
    println!("synthetic tape ops               : {}", syn.tape().n_ops());
    println!(
        "verdict                          : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [syn_fd, syn_adj, elb_fd, elb_adj];
    BenchReport {
        name: "grad_throughput",
        workload: "synthetic10_plus_elbtunnel",
        threads: 1,
        timestamp: &timestamp,
        extras: vec![
            ("synthetic_dim", SYN_DIM.to_string()),
            ("synthetic_points", SYN_POINTS.to_string()),
            ("elbtunnel_points", ELB_POINTS.to_string()),
            ("synthetic_tape_ops", syn.tape().n_ops().to_string()),
        ],
        modes: &modes,
        speedups: vec![
            ("adjoint_vs_fd_synthetic", speedup_syn),
            ("adjoint_vs_fd_elbtunnel", speedup_elb),
        ],
        target: Some(("adjoint_vs_fd_synthetic", TARGET_SPEEDUP)),
        pass,
    }
    .write("grad");

    if !pass {
        eprintln!(
            "grad_throughput: below the {TARGET_SPEEDUP}x target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
        if enforce {
            std::process::exit(1);
        }
    }
    Ok(())
}
