//! E11 — gradient throughput: gradients/sec of central differences
//! (`2·dim` tape sweeps per gradient) vs. the reverse-mode **adjoint
//! pass** (one forward + one backward sweep, cost independent of the
//! dimension) on two workloads:
//!
//! * a 10-parameter synthetic hazard family (the ≥8-dim regime where
//!   the `O(dim)` finite-difference cost bites — this is the gated
//!   headline number), and
//! * the 2-parameter Elbtunnel objective (recorded for context; at
//!   `dim = 2` finite differences only pay 4 sweeps, so the adjoint win
//!   is structural, not dramatic).
//!
//! On top of the adjoint-vs-FD ratio, the bin splits the adjoint into
//! its two execution backends — `adjoint_scalar` (one point at a time)
//! vs `adjoint_soa` (the lane-blocked structure-of-arrays sweep) — and
//! gates the SoA adjoint at ≥1.4× the scalar adjoint on one core, after
//! asserting the two backends agree **bit for bit** (the 0-ULP contract
//! pinned adversarially in `engine/tests/grad_soa_equivalence.rs`).
//!
//! Writes `BENCH_grad.json` at the workspace root in the shared
//! [`safety_opt_bench::BenchReport`] schema.
//!
//! Run with: `cargo run --release -p safety_opt_bench --bin grad_throughput`
//!
//! With `--enforce`, exits non-zero when either gate fails (adjoint
//! ≥3× central differences, SoA adjoint ≥1.4× scalar adjoint). Unlike
//! the wall-clock-sensitive throughput bins, CI *does* enforce these
//! gates: both sides of each ratio run on the same core in the same
//! process, and the wins are structural (dimension-independent sweeps
//! vs. `2·dim` sweeps; lane-blocked register files vs. pointwise
//! dispatch), so a noisy runner cannot flip the verdicts. The
//! adjoint↔central-difference and SoA↔scalar agreement checks always
//! run first.
//!
//! With `--thread-scaling` (and more than one available core), also
//! measures the SoA adjoint at 2 and `available_parallelism()` worker
//! threads and records the scaling curve in the report extras —
//! recorded, never gated, since multi-thread wall-clock is exactly what
//! shared runners distort.

use safety_opt_bench::{bench_timestamp, measure, BenchReport};
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::model::{Hazard, SafetyModel};
use safety_opt_core::param::ParameterSpace;
use safety_opt_core::pprob::{complement, constant, exposure, overtime};
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_engine::{BatchEvaluator, ExecBackend};
use safety_opt_stats::dist::TruncatedNormal;

/// Synthetic-family parameter count (the issue's "≥8-dim" regime).
const SYN_DIM: usize = 10;
/// Points per measured pass.
const SYN_POINTS: usize = 256;
const ELB_POINTS: usize = 1024;
/// Acceptance threshold: adjoint vs. central-difference gradients/sec
/// on the synthetic family, one core.
const TARGET_SPEEDUP: f64 = 3.0;
/// Acceptance threshold: SoA adjoint vs. scalar adjoint gradients/sec
/// on the synthetic family, one core.
const TARGET_SOA_SPEEDUP: f64 = 1.4;

/// A dense `SYN_DIM`-parameter safety model: one hazard per timer
/// (overtime + averted-overtime/exposure cut sets coupling neighboring
/// timers), the shape the paper's method produces for larger systems.
fn synthetic_model() -> SafetyModel {
    let mut space = ParameterSpace::new();
    let params: Vec<_> = (0..SYN_DIM)
        .map(|i| space.parameter(format!("t{i}"), 1.0, 30.0).unwrap())
        .collect();
    let mut model = SafetyModel::new(space);
    for i in 0..SYN_DIM {
        let d = TruncatedNormal::lower_bounded(4.0 + 0.3 * i as f64, 2.0, 0.0).unwrap();
        let next = params[(i + 1) % SYN_DIM];
        let crit = constant(1e-3 * (1.0 + i as f64)).unwrap();
        let hazard = Hazard::builder(format!("h{i}"))
            .residual("rest", 1e-8)
            .cut_set("overtime", [crit.clone(), overtime(d, params[i])])
            .cut_set(
                "averted",
                [
                    crit,
                    complement(overtime(d, params[i])),
                    exposure(0.05 + 0.01 * i as f64, next),
                ],
            )
            .build();
        model = model.hazard(hazard, 10.0 + 1e4 * (i % 3) as f64);
    }
    model
}

fn grid_points(dim: usize, n: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let u = ((i * dim + j) as f64 * 0.618_033_988_749_894_9).fract();
                    lo + (hi - lo) * u
                })
                .collect()
        })
        .collect()
}

/// One full batch of central-difference gradients: `2·dim` probe points
/// per gradient, all sharded through one `cost_batch` call (the same
/// batching advantage the adjoint side gets), returning a checksum.
fn fd_gradients(compiled: &CompiledModel, points: &[Vec<f64>], h: f64, out: &mut Vec<f64>) -> f64 {
    let dim = compiled.dim();
    let mut probes = Vec::with_capacity(points.len() * 2 * dim);
    for p in points {
        for i in 0..dim {
            let mut hi = p.clone();
            hi[i] += h;
            probes.push(hi);
            let mut lo = p.clone();
            lo[i] -= h;
            probes.push(lo);
        }
    }
    let costs = compiled.cost_batch(&probes).expect("fd probes evaluate");
    out.clear();
    let mut checksum = 0.0;
    for pt in 0..points.len() {
        for i in 0..dim {
            let fp = costs[pt * 2 * dim + 2 * i];
            let fm = costs[pt * 2 * dim + 2 * i + 1];
            let g = (fp - fm) / (2.0 * h);
            out.push(g);
            checksum += g;
        }
    }
    checksum
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enforce = std::env::args().any(|a| a == "--enforce");
    let thread_scaling = std::env::args().any(|a| a == "--thread-scaling");
    println!(
        "# Gradient throughput — adjoint pass vs central differences \
         ({SYN_DIM}-dim synthetic family + Elbtunnel)\n"
    );

    let synthetic = synthetic_model();
    let syn = CompiledModel::compile_with_threads(&synthetic, 1)?;
    let syn_points = grid_points(SYN_DIM, SYN_POINTS, 2.0, 29.0);

    let paper = ElbtunnelModel::paper();
    let elb_model = paper.build()?;
    let elb = CompiledModel::compile_with_threads(&elb_model, 1)?;
    let (lo, hi) = paper.timer_domain;
    let elb_points = grid_points(2, ELB_POINTS, lo + 0.5, hi - 0.5);

    // Correctness gate before timing anything: adjoint == central
    // differences within mixed tolerance on both workloads (the FD step
    // is large enough that the reference's own cancellation error stays
    // below the bound).
    let fd_h = 1e-4;
    for (label, compiled, points) in [
        ("synthetic", &syn, &syn_points),
        ("elbtunnel", &elb, &elb_points),
    ] {
        let mut fd = Vec::new();
        fd_gradients(compiled, &points[..16.min(points.len())], fd_h, &mut fd);
        let (_, adj) = compiled.gradient_batch(&points[..16.min(points.len())])?;
        for (i, (a, f)) in adj.iter().zip(&fd).enumerate() {
            // Mixed tolerance: the absolute floor absorbs the
            // reference's own subtractive-cancellation noise
            // (≈ε·|cost|/h) on near-zero components; the adversarial
            // rigor lives in `engine/tests/grad_equivalence.rs`.
            let scale = a.abs().max(f.abs());
            assert!(
                (a - f).abs() <= 1e-4 * scale + 1e-9,
                "{label}: adjoint diverged from central differences at slot {i}: {a} vs {f}"
            );
        }
    }
    println!("equivalence check     adjoint == central differences (mixed 1e-4 tol)");

    // Backend gate: the lane-blocked SoA adjoint must equal the scalar
    // adjoint bit for bit before its throughput means anything.
    {
        let (sv, sg) = BatchEvaluator::new(syn.tape(), 1)
            .backend(ExecBackend::Scalar)
            .eval_grad_batch(&syn_points);
        let (bv, bg) = BatchEvaluator::new(syn.tape(), 1)
            .backend(ExecBackend::Soa)
            .eval_grad_batch(&syn_points);
        assert!(
            sv.iter().zip(&bv).all(|(a, b)| a.to_bits() == b.to_bits())
                && sg.iter().zip(&bg).all(|(a, b)| a.to_bits() == b.to_bits()),
            "SoA adjoint diverged bitwise from the scalar adjoint"
        );
    }
    println!("equivalence check     soa adjoint == scalar adjoint (bitwise)\n");

    let mut fd_buf = Vec::new();
    let syn_fd = measure(
        "fd_synthetic_one_core",
        "fd 10-dim (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || fd_gradients(&syn, &syn_points, fd_h, &mut fd_buf),
    );
    let syn_adj = measure(
        "adjoint_synthetic_one_core",
        "adjoint 10-dim (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || {
            let (_, g) = syn.gradient_batch(&syn_points).expect("adjoint batch");
            g.iter().sum()
        },
    );
    let elb_fd = measure(
        "fd_elbtunnel_one_core",
        "fd elbtunnel (1 core)",
        "gradients/sec",
        ELB_POINTS,
        || fd_gradients(&elb, &elb_points, fd_h, &mut fd_buf),
    );
    let elb_adj = measure(
        "adjoint_elbtunnel_one_core",
        "adjoint elbtunnel (1 core)",
        "gradients/sec",
        ELB_POINTS,
        || {
            let (_, g) = elb.gradient_batch(&elb_points).expect("adjoint batch");
            g.iter().sum()
        },
    );
    // The two adjoint backends head to head, forced through the engine
    // seam on one worker so the ratio isolates the lane-blocked sweep
    // itself (`CompiledModel::gradient_batch` above uses the process
    // default backend, i.e. SoA unless `SAFETY_OPT_BACKEND` overrides).
    let adj_scalar = measure(
        "adjoint_scalar_one_core",
        "adjoint scalar (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || {
            let (_, g) = BatchEvaluator::new(syn.tape(), 1)
                .backend(ExecBackend::Scalar)
                .eval_grad_batch(&syn_points);
            g.iter().sum()
        },
    );
    let adj_soa = measure(
        "adjoint_soa_one_core",
        "adjoint soa (1 core)",
        "gradients/sec",
        SYN_POINTS,
        || {
            let (_, g) = BatchEvaluator::new(syn.tape(), 1)
                .backend(ExecBackend::Soa)
                .eval_grad_batch(&syn_points);
            g.iter().sum()
        },
    );

    // Optional thread-scaling leg: recorded, never gated (multi-thread
    // wall-clock is exactly what shared runners distort).
    let mut scaling = Vec::new();
    if thread_scaling {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            let mut counts = vec![2];
            if cores > 2 {
                counts.push(cores);
            }
            for threads in counts {
                let m = measure(
                    "adjoint_soa_threads",
                    &format!("adjoint soa ({threads} threads)"),
                    "gradients/sec",
                    SYN_POINTS,
                    || {
                        let (_, g) = BatchEvaluator::new(syn.tape(), threads)
                            .backend(ExecBackend::Soa)
                            .eval_grad_batch(&syn_points);
                        g.iter().sum()
                    },
                );
                scaling.push((threads, m.points_per_sec));
            }
        } else {
            println!("thread scaling        skipped (one available core)");
        }
    }

    let speedup_syn = syn_adj.points_per_sec / syn_fd.points_per_sec;
    let speedup_elb = elb_adj.points_per_sec / elb_fd.points_per_sec;
    let speedup_soa = adj_soa.points_per_sec / adj_scalar.points_per_sec;
    let pass_fd = speedup_syn >= TARGET_SPEEDUP;
    let pass_soa = speedup_soa >= TARGET_SOA_SPEEDUP;
    let pass = pass_fd && pass_soa;
    println!();
    println!(
        "adjoint vs fd, {SYN_DIM}-dim synthetic : {speedup_syn:.2}x  (target >= {TARGET_SPEEDUP}x)"
    );
    println!(
        "soa vs scalar adjoint, one core  : {speedup_soa:.2}x  (target >= {TARGET_SOA_SPEEDUP}x)"
    );
    println!("adjoint vs fd, elbtunnel (dim 2) : {speedup_elb:.2}x  (recorded, not gated)");
    for (threads, pps) in &scaling {
        println!(
            "soa adjoint, {threads} threads          : {:.2}x one-core  (recorded, not gated)",
            pps / adj_soa.points_per_sec
        );
    }
    println!("synthetic tape ops               : {}", syn.tape().n_ops());
    println!(
        "verdict                          : {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let timestamp = bench_timestamp();
    let modes = [syn_fd, syn_adj, adj_scalar, adj_soa, elb_fd, elb_adj];
    let scaling_json = format!(
        "[{}]",
        scaling
            .iter()
            .map(|(t, pps)| format!("{{ \"threads\": {t}, \"points_per_sec\": {pps:.1} }}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    BenchReport {
        name: "grad_throughput",
        workload: "synthetic10_plus_elbtunnel",
        threads: 1,
        timestamp: &timestamp,
        extras: vec![
            ("synthetic_dim", SYN_DIM.to_string()),
            ("synthetic_points", SYN_POINTS.to_string()),
            ("elbtunnel_points", ELB_POINTS.to_string()),
            ("synthetic_tape_ops", syn.tape().n_ops().to_string()),
            (
                "target_adjoint_soa_vs_scalar",
                format!("{TARGET_SOA_SPEEDUP}"),
            ),
            ("adjoint_soa_thread_scaling", scaling_json),
        ],
        modes: &modes,
        speedups: vec![
            ("adjoint_vs_fd_synthetic", speedup_syn),
            ("adjoint_vs_fd_elbtunnel", speedup_elb),
            ("adjoint_soa_vs_scalar_synthetic", speedup_soa),
        ],
        target: Some(("adjoint_vs_fd_synthetic", TARGET_SPEEDUP)),
        pass,
    }
    .write("grad");

    if !pass_fd {
        eprintln!(
            "grad_throughput: adjoint below the {TARGET_SPEEDUP}x vs-fd target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
    }
    if !pass_soa {
        eprintln!(
            "grad_throughput: soa adjoint below the {TARGET_SOA_SPEEDUP}x vs-scalar target{}",
            if enforce {
                ""
            } else {
                " (not enforced; pass --enforce to gate)"
            }
        );
    }
    if !pass && enforce {
        std::process::exit(1);
    }
    Ok(())
}
