//! A1 — optimizer comparison on the Elbtunnel cost function: wall time
//! per full minimization for each algorithm (accuracy and evaluation
//! counts are reported by the `table_optimum` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use safety_opt_core::optimize::SafetyOptimizer;
use safety_opt_elbtunnel::analytic::ElbtunnelModel;
use safety_opt_optim::anneal::SimulatedAnnealing;
use safety_opt_optim::de::DifferentialEvolution;
use safety_opt_optim::gradient::GradientDescent;
use safety_opt_optim::grid::GridSearch;
use safety_opt_optim::hooke_jeeves::HookeJeeves;
use safety_opt_optim::multistart::MultiStart;
use safety_opt_optim::nelder_mead::NelderMead;
use safety_opt_optim::Minimizer;

fn bench_optimizers_on_elbtunnel(c: &mut Criterion) {
    let model = ElbtunnelModel::paper().build().unwrap();
    let algorithms: Vec<(&str, Box<dyn Minimizer>)> = vec![
        ("nelder_mead", Box::new(NelderMead::default())),
        (
            "multistart_nm_8",
            Box::new(MultiStart::new(NelderMead::default(), 8)),
        ),
        ("hooke_jeeves", Box::new(HookeJeeves::default())),
        ("gradient_descent", Box::new(GradientDescent::default())),
        ("grid_101", Box::new(GridSearch::new(101))),
        (
            "simulated_annealing",
            Box::new(SimulatedAnnealing::default().seed(1)),
        ),
        (
            "differential_evolution",
            Box::new(DifferentialEvolution::default().seed(1).generations(120)),
        ),
    ];
    let mut group = c.benchmark_group("optimize_elbtunnel");
    for (name, algo) in &algorithms {
        group.bench_function(*name, |b| {
            b.iter(|| {
                SafetyOptimizer::new(&model)
                    .with_minimizer(algo.as_ref())
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cost_evaluation(c: &mut Criterion) {
    // The primitive everything above is built from.
    let model = ElbtunnelModel::paper().build().unwrap();
    c.bench_function("cost_function_single_eval", |b| {
        b.iter(|| model.cost(&[19.0, 15.6]).unwrap())
    });
    let paper = ElbtunnelModel::paper();
    c.bench_function("analytic_formula_single_eval", |b| {
        b.iter(|| paper.cost(19.0, 15.6).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimizers_on_elbtunnel, bench_cost_evaluation
);
criterion_main!(benches);
