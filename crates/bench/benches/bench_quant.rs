//! Quantification-engine benchmarks: the paper's rare-event formula vs
//! the exact methods, importance measures, and the statistics substrate
//! primitives they lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::importance::ImportanceReport;
use safety_opt_fta::mcs;
use safety_opt_fta::quant::{inclusion_exclusion, min_cut_upper_bound, rare_event};
use safety_opt_fta::synth::or_of_ands;
use safety_opt_stats::dist::{ContinuousDistribution, TruncatedNormal};
use safety_opt_stats::special::{erfc, inverse_normal_cdf};

fn bench_quant_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantification");
    for &m in &[8usize, 16] {
        let tree = or_of_ands(m, 3, 0.01);
        let probs = tree.stored_probabilities().unwrap();
        let sets = mcs::bottom_up(&tree).unwrap();
        group.bench_with_input(BenchmarkId::new("rare_event", m), &m, |b, _| {
            b.iter(|| rare_event(&sets, &probs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("min_cut_ub", m), &m, |b, _| {
            b.iter(|| min_cut_upper_bound(&sets, &probs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("inclusion_exclusion", m), &m, |b, _| {
            b.iter(|| inclusion_exclusion(&sets, &probs).unwrap())
        });
        let bdd = TreeBdd::build(&tree).unwrap();
        group.bench_with_input(BenchmarkId::new("bdd_exact", m), &m, |b, _| {
            b.iter(|| bdd.probability(&probs).unwrap())
        });
    }
    group.finish();
}

fn bench_importance(c: &mut Criterion) {
    let tree = or_of_ands(10, 3, 0.01);
    let probs = tree.stored_probabilities().unwrap();
    c.bench_function("importance_report_30_leaves", |b| {
        b.iter(|| ImportanceReport::compute(&tree, &probs).unwrap())
    });
}

fn bench_stats_primitives(c: &mut Criterion) {
    c.bench_function("erfc_deep_tail", |b| b.iter(|| erfc(7.5)));
    c.bench_function("inverse_normal_cdf", |b| {
        b.iter(|| inverse_normal_cdf(0.975).unwrap())
    });
    let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
    c.bench_function("truncated_normal_sf", |b| b.iter(|| transit.sf(19.0)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_quant_methods, bench_importance, bench_stats_primitives
);
criterion_main!(benches);
