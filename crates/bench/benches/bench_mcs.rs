//! A2 — minimal-cut-set engine comparison: MOCUS vs bottom-up vs BDD on
//! parametric tree families (sweeping size), plus subsumption
//! minimization in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::mcs;
use safety_opt_fta::synth::{and_of_ors, or_of_ands, random_tree, RandomTreeConfig};
use safety_opt_fta::{CutSet, CutSetCollection};

fn bench_engines_on_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcs_engines");
    // and_of_ors(m, n): n^m cut sets — the hard case for cut-set algebra.
    for &(m, n) in &[(2usize, 4usize), (3, 4), (4, 4)] {
        let tree = and_of_ors(m, n, 0.01);
        let label = format!("and{m}_of_or{n}");
        group.bench_with_input(BenchmarkId::new("mocus", &label), &tree, |b, t| {
            b.iter(|| mcs::mocus(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bottom_up", &label), &tree, |b, t| {
            b.iter(|| mcs::bottom_up(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd", &label), &tree, |b, t| {
            b.iter(|| TreeBdd::build(t).unwrap().minimal_cut_sets().unwrap())
        });
    }
    // or_of_ands(m, n): m cut sets — the easy, wide case.
    for &(m, n) in &[(32usize, 3usize), (128, 3)] {
        let tree = or_of_ands(m, n, 0.01);
        let label = format!("or{m}_of_and{n}");
        group.bench_with_input(BenchmarkId::new("mocus", &label), &tree, |b, t| {
            b.iter(|| mcs::mocus(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bottom_up", &label), &tree, |b, t| {
            b.iter(|| mcs::bottom_up(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd", &label), &tree, |b, t| {
            b.iter(|| TreeBdd::build(t).unwrap().minimal_cut_sets().unwrap())
        });
    }
    group.finish();
}

fn bench_random_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcs_random_trees");
    for &gates in &[8usize, 16, 32] {
        let config = RandomTreeConfig {
            num_leaves: 12,
            num_gates: gates,
            max_inputs: 3,
            leaf_probability: 0.05,
            gate_reuse: 0.5,
        };
        let tree = random_tree(config, 42);
        group.bench_with_input(BenchmarkId::new("bottom_up", gates), &tree, |b, t| {
            b.iter(|| mcs::bottom_up(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bdd", gates), &tree, |b, t| {
            b.iter(|| TreeBdd::build(t).unwrap().minimal_cut_sets().unwrap())
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    // Subsumption minimization over many random sets.
    let sets: Vec<CutSet> = (0..2000u64)
        .map(|i| {
            let a = (i * 2654435761) % 64;
            let b = (i * 40503) % 64;
            let c = (i * 69069) % 64;
            CutSet::from_leaves([a as usize, b as usize, c as usize])
        })
        .collect();
    c.bench_function("cutset_minimize_2000", |b| {
        b.iter(|| CutSetCollection::from_sets(sets.clone()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engines_on_families, bench_random_trees, bench_minimization
);
criterion_main!(benches);
