//! Wall-time of regenerating each paper artifact: the Fig. 5 surface
//! grid, the Fig. 6 series, the E2 optimization, and a simulation batch —
//! one benchmark per experiment of the index in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use safety_opt_core::optimize::SafetyOptimizer;
use safety_opt_core::surface::CostSurface;
use safety_opt_elbtunnel::analytic::{scaling, ElbtunnelModel, Variant};
use safety_opt_elbtunnel::sim::{simulate, SimConfig};

fn bench_fig5(c: &mut Criterion) {
    let mut windowed = ElbtunnelModel::paper();
    windowed.timer_domain = (15.0, 20.0);
    let model = windowed.build().unwrap();
    let (t1, t2) = ElbtunnelModel::timer_ids(&model);
    let reference = model.space().center();
    c.bench_function("fig5_surface_41x41", |b| {
        b.iter(|| CostSurface::evaluate(&model, t1, t2, &reference, 41, 41).unwrap())
    });
}

fn bench_fig6(c: &mut Criterion) {
    let model = ElbtunnelModel::paper();
    c.bench_function("fig6_series_original_41pts", |b| {
        b.iter(|| scaling::figure6_series(&model, Variant::Original, 5.0, 25.0, 41).unwrap())
    });
    c.bench_function("fig6_series_with_lb4_41pts", |b| {
        // Each point integrates over the transit distribution.
        b.iter(|| scaling::figure6_series(&model, Variant::WithLb4, 5.0, 25.0, 41).unwrap())
    });
}

fn bench_optimum(c: &mut Criterion) {
    let model = ElbtunnelModel::paper().build().unwrap();
    c.bench_function("table_optimum_default_strategy", |b| {
        b.iter(|| SafetyOptimizer::new(&model).run().unwrap())
    });
}

fn bench_simulation(c: &mut Criterion) {
    let config = SimConfig::paper(19.0, 15.6, Variant::Original);
    c.bench_function("sim_10k_episodes", |b| {
        b.iter(|| simulate(&config, 10_000, 7))
    });
    let lb4 = SimConfig::paper(19.0, 15.6, Variant::WithLb4);
    c.bench_function("sim_10k_episodes_with_lb4", |b| {
        b.iter(|| simulate(&lb4, 10_000, 7))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5, bench_fig6, bench_optimum, bench_simulation
);
criterion_main!(benches);
