//! Runtime telemetry for the safety-optimization workspace: atomic
//! counters, power-of-two-bucketed histograms, and monotonic-clock spans
//! behind a process-global registry — with **zero dependencies** and
//! near-zero cost when disabled.
//!
//! # Modes
//!
//! Telemetry has three levels, selected once per process by the
//! `SAFETY_OPT_TELEMETRY` environment variable (`off` — the default —
//! `counters`, or `full`; anything else panics loudly, mirroring the
//! other `SAFETY_OPT_*` knobs) or programmatically via [`set_mode`]:
//!
//! * [`TelemetryMode::Off`] — every instrumentation site reduces to one
//!   relaxed atomic load and a predictable branch.
//! * [`TelemetryMode::Counters`] — [`Counter`]s record; histograms and
//!   spans stay disabled (no clock reads on hot paths).
//! * [`TelemetryMode::Full`] — counters, [`Histogram`]s, and [`span`]
//!   timings all record, and subsystems may emit one-time diagnostics.
//!
//! # Instrumentation model
//!
//! Sites declare `static` [`Counter`]s and [`Histogram`]s (`const`
//! constructors, no life-before-main). On first use an instrument
//! registers itself with the process-global [`Registry`], so
//! [`snapshot`] sees exactly the instruments the process exercised:
//!
//! ```
//! use safety_opt_telemetry as telemetry;
//!
//! static SWEEPS: telemetry::Counter = telemetry::Counter::new("demo.sweeps");
//!
//! telemetry::set_mode(telemetry::TelemetryMode::Counters);
//! SWEEPS.add(3);
//! assert_eq!(SWEEPS.get(), 3);
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.sweeps"), Some(3));
//! telemetry::reset();
//! telemetry::set_mode(telemetry::TelemetryMode::Off);
//! ```
//!
//! Instrumentation is **observation-only** by contract: enabling any
//! mode must never change a computed result (the engine's 0-ULP
//! equivalence suites run with telemetry forced on to enforce this).
//!
//! # Tracing
//!
//! The [`trace`] module layers *structured* observability on top of
//! the registry: named [`TraceScope`]s attribute counters and spans to
//! a request / model / restart instead of only the process globals, a
//! fixed-capacity event ring buffer records scope begins/ends, span
//! completions, failpoint firings, degradation fallbacks, deadline
//! expiries, and cache evictions, and [`trace::export_jsonl`] /
//! [`trace::export_chrome_trace`] render the stream for machines and
//! for Perfetto. It has its own knob (`SAFETY_OPT_TRACE`), orthogonal
//! to the telemetry mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

pub use trace::{
    set_trace_mode, trace_events_enabled, trace_mode, trace_profiling_enabled, EventKind,
    ScopeHandle, ScopeSnapshot, TraceMode, TraceScope,
};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much the process records. Ordered: each level includes the
/// previous one's recordings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TelemetryMode {
    /// Nothing records; every site costs one atomic load + branch.
    Off = 0,
    /// Counters record; histograms, spans, and diagnostics stay off.
    Counters = 1,
    /// Everything records, including span timings (clock reads) and
    /// one-time diagnostics.
    Full = 2,
}

impl TelemetryMode {
    /// The mode's canonical lowercase name (`off`/`counters`/`full`).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Counters => "counters",
            TelemetryMode::Full => "full",
        }
    }
}

/// Sentinel: the env var has not been consulted yet.
const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Parses a `SAFETY_OPT_TELEMETRY` override. `None` or an empty/blank
/// string means "not set" (the default, [`TelemetryMode::Off`],
/// applies).
///
/// # Panics
///
/// Panics on any other unrecognized value — a typo silently disabling
/// telemetry would be worse than a crash at startup.
pub fn parse_mode_override(raw: Option<&str>) -> Option<TelemetryMode> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match raw {
        "off" => Some(TelemetryMode::Off),
        "counters" => Some(TelemetryMode::Counters),
        "full" => Some(TelemetryMode::Full),
        other => panic!(
            "SAFETY_OPT_TELEMETRY must be one of off, counters, full \
             (got {other:?})"
        ),
    }
}

#[cold]
fn init_mode() -> TelemetryMode {
    let env = std::env::var("SAFETY_OPT_TELEMETRY").ok();
    let mode = parse_mode_override(env.as_deref()).unwrap_or(TelemetryMode::Off);
    // A racing initializer computes the same value; last store wins.
    MODE.store(mode as u8, Ordering::Relaxed);
    mode
}

/// The process-wide telemetry mode: the `SAFETY_OPT_TELEMETRY`
/// environment override, read once on first query, unless
/// [`set_mode`] replaced it.
#[inline]
pub fn mode() -> TelemetryMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TelemetryMode::Off,
        1 => TelemetryMode::Counters,
        2 => TelemetryMode::Full,
        _ => init_mode(),
    }
}

/// Overrides the telemetry mode for the whole process — the in-process
/// switch the equivalence suites and the overhead bench drive.
pub fn set_mode(mode: TelemetryMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// `true` when counters record ([`TelemetryMode::Counters`] or above).
#[inline]
pub fn counters_enabled() -> bool {
    mode() >= TelemetryMode::Counters
}

/// `true` when histograms, spans, and diagnostics record
/// ([`TelemetryMode::Full`]).
#[inline]
pub fn full_enabled() -> bool {
    mode() == TelemetryMode::Full
}

/// A named monotonic event counter (one relaxed `fetch_add` per
/// recording). Declare as a `static`; the counter registers itself with
/// the global [`Registry`] on first use.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed counter named `name` (use dotted lowercase paths, e.g.
    /// `engine.cache.hits`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when counters are enabled; a no-op (one load + branch)
    /// otherwise.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if counters_enabled() {
            self.record(n);
        }
    }

    /// Adds `n` unconditionally (mode already checked by the caller).
    /// The global aggregate updates first; when tracing is on and a
    /// [`TraceScope`] is active, the add is *also* attributed to the
    /// scope (never instead — scoped attribution leaves the process
    /// globals bit-for-bit untouched).
    fn record(&'static self, n: u64) {
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
        if trace::trace_events_enabled() {
            trace::scoped_counter_add(self.name, n);
        }
    }

    /// Current value (readable in every mode).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock_registry().counters.push(self);
        }
    }
}

/// Number of power-of-two histogram buckets: bucket 0 holds the value
/// 0, bucket `i > 0` holds values in `[2^(i−1), 2^i)`.
const BUCKETS: usize = 65;

/// A named histogram over `u64` samples with power-of-two buckets plus
/// exact count and sum. Records only in [`TelemetryMode::Full`] (every
/// observation is ~3 relaxed `fetch_add`s). Declare as a `static`; it
/// registers itself with the global [`Registry`] on first use.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// An empty histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        // Array-init idiom for a non-Copy element on the 1.75 MSRV
        // (inline-const array expressions need 1.79); the const is a
        // *template* for fresh zeros, never a shared binding.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index of `value`.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_le(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records `value` when [`full_enabled`]; a no-op otherwise.
    #[inline]
    pub fn observe(&'static self, value: u64) {
        if full_enabled() {
            self.record(value);
        }
    }

    /// Records `value` unconditionally (mode already checked by the
    /// caller, e.g. at [`span`] creation). Like [`Counter`] adds, the
    /// sample is additionally attributed to the active [`TraceScope`]
    /// (if any) when tracing is on — the global aggregate is untouched.
    fn record(&'static self, value: u64) {
        self.ensure_registered();
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if trace::trace_events_enabled() {
            trace::scoped_hist_record(self.name, value);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile (`0 < p <= 100`) of the recorded samples,
    /// as the inclusive upper bound of the bucket containing the
    /// rank-⌈p/100·count⌉ sample — an upper estimate within the
    /// power-of-two bucket resolution. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        percentile_of_buckets(&counts, p)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock_registry().histograms.push(self);
        }
    }
}

/// An in-flight [`span`] timing. Dropping it records the elapsed
/// monotonic nanoseconds into its histogram — only if telemetry was in
/// [`TelemetryMode::Full`] when the span started — and emits a
/// [`trace::EventKind::Span`] event if tracing was in
/// [`TraceMode::Events`] or above when it started. With both off, the
/// span never reads the clock.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
    /// Record into the histogram on drop (telemetry full at start).
    record: bool,
    /// Emit a trace event on drop (tracing on at start).
    emit: bool,
    /// Start timestamp in trace-epoch nanos (0 unless `emit`).
    start_ts: u64,
}

/// Starts timing a region against `hist`. Reads the monotonic clock
/// only when [`TelemetryMode::Full`] or a tracing mode is active.
#[inline]
pub fn span(hist: &'static Histogram) -> Span {
    let record = full_enabled();
    let emit = trace::trace_events_enabled();
    let (start, start_ts) = if record || emit {
        let now = Instant::now();
        (
            Some(now),
            if emit {
                trace::nanos_since_epoch(now)
            } else {
                0
            },
        )
    } else {
        (None, 0)
    };
    Span {
        hist,
        start,
        record,
        emit,
        start_ts,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos();
            let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
            if self.record {
                self.hist.record(nanos);
            }
            if self.emit {
                trace::record_span_event(self.hist.name, self.start_ts, nanos);
            }
        }
    }
}

/// Destination for telemetry measurements, keyed by instrument name.
///
/// The process-global [`Registry`] implements this trait, so callers
/// that cannot (or prefer not to) declare `static` instruments — tests,
/// dynamically named subsystems — can still record through the same
/// pipeline. Name-based recording respects the mode exactly like the
/// static instruments: `add` requires [`TelemetryMode::Counters`],
/// `observe` requires [`TelemetryMode::Full`].
pub trait TelemetrySink {
    /// Adds `n` to the counter named `name`.
    fn add(&self, name: &str, n: u64);
    /// Records one `value` sample against the histogram named `name`.
    fn observe(&self, name: &str, value: u64);
}

/// The process-global instrument registry: every [`Counter`] and
/// [`Histogram`] that has recorded at least once, plus dynamically
/// named values recorded through the [`TelemetrySink`] impl.
#[derive(Debug)]
pub struct Registry(());

/// Instruments known to the registry.
#[derive(Debug)]
struct RegistryInner {
    counters: Vec<&'static Counter>,
    histograms: Vec<&'static Histogram>,
    /// Dynamically named counters recorded via [`TelemetrySink::add`].
    dynamic: Vec<(String, u64)>,
}

static REGISTRY: Mutex<RegistryInner> = Mutex::new(RegistryInner {
    counters: Vec::new(),
    histograms: Vec::new(),
    dynamic: Vec::new(),
});

fn lock_registry() -> std::sync::MutexGuard<'static, RegistryInner> {
    // Recording never panics while holding the lock, so poisoning can
    // only come from a panicking reader; the data is still sound.
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry(());
    &GLOBAL
}

impl TelemetrySink for Registry {
    fn add(&self, name: &str, n: u64) {
        if !counters_enabled() {
            return;
        }
        let mut inner = lock_registry();
        if let Some(c) = inner.counters.iter().find(|c| c.name == name) {
            c.value.fetch_add(n, Ordering::Relaxed);
            return;
        }
        match inner.dynamic.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => inner.dynamic.push((name.to_owned(), n)),
        }
    }

    fn observe(&self, name: &str, value: u64) {
        if !full_enabled() {
            return;
        }
        let inner = lock_registry();
        if let Some(h) = inner.histograms.iter().find(|h| h.name == name) {
            h.buckets[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
        }
        // Unknown histogram names are dropped: buckets cannot be
        // meaningfully accumulated into a flat dynamic slot.
    }
}

/// Zeroes every registered instrument, drops dynamic counters, and
/// clears per-scope attribution. Instruments stay registered; the
/// modes are untouched.
pub fn reset() {
    let mut inner = lock_registry();
    for c in &inner.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in &inner.histograms {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
    inner.dynamic.clear();
    drop(inner);
    trace::reset_scoped();
}

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, sample count)`,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Median upper estimate (see [`Histogram::percentile`]).
    pub p50: u64,
    /// 90th-percentile upper estimate.
    pub p90: u64,
    /// 99th-percentile upper estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot (including the percentile fields) from a full
    /// dense bucket array in declaration order.
    pub(crate) fn from_buckets(
        name: String,
        count: u64,
        sum: u64,
        buckets: impl Iterator<Item = u64>,
    ) -> Self {
        let dense: Vec<u64> = buckets.collect();
        Self {
            name,
            count,
            sum,
            buckets: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((Histogram::bucket_le(i), n)))
                .collect(),
            p50: percentile_of_buckets(&dense, 50.0),
            p90: percentile_of_buckets(&dense, 90.0),
            p99: percentile_of_buckets(&dense, 99.0),
        }
    }

    /// The `p`-th percentile (`0 < p <= 100`) of the snapshotted
    /// samples (see [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0;
        }
        let rank = percentile_rank(total, p);
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return le;
            }
        }
        self.buckets.last().map_or(0, |&(le, _)| le)
    }
}

/// 1-based sample rank of the `p`-th percentile among `total` samples:
/// `⌈p/100 · total⌉`, clamped to `[1, total]`.
fn percentile_rank(total: u64, p: f64) -> u64 {
    let rank = (p / 100.0 * total as f64).ceil() as u64;
    rank.clamp(1, total)
}

/// Percentile over a dense bucket-count array in declaration order
/// (bucket `i` ↦ upper bound [`Histogram::bucket_le`]). Returns 0 when
/// no samples were recorded.
fn percentile_of_buckets(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = percentile_rank(total, p);
    let mut seen = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Histogram::bucket_le(i);
        }
    }
    Histogram::bucket_le(counts.len().saturating_sub(1))
}

/// A point-in-time copy of every registered instrument, exportable as
/// JSON in the `safety-opt-bench-v1` report style (schema
/// `safety-opt-telemetry-v1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The telemetry mode at capture time.
    pub mode: TelemetryMode,
    /// `(name, value)` for every registered + dynamic counter, sorted
    /// by name.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-[`TraceScope`] attribution (empty unless tracing was on),
    /// sorted by scope name.
    pub scopes: Vec<ScopeSnapshot>,
}

impl Snapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as a stable, human-diffable JSON
    /// document (schema `safety-opt-telemetry-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"safety-opt-telemetry-v1\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.name()));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", json_escape(name)));
        }
        if self.counters.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&histogram_json(h, "    "));
        }
        if self.histograms.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"scopes\": [");
        for (i, s) in self.scopes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"counters\": {{",
                json_escape(&s.name)
            ));
            for (j, (name, value)) in s.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {value}", json_escape(name)));
            }
            out.push_str("}, \"histograms\": [");
            for (j, h) in s.histograms.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&histogram_json(h, "      "));
            }
            if s.histograms.is_empty() {
                out.push_str("]}");
            } else {
                out.push_str("\n    ]}");
            }
        }
        if self.scopes.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// One histogram object of the JSON export (shared between the global
/// and the per-scope sections).
fn histogram_json(h: &HistogramSnapshot, indent: &str) -> String {
    let mut out = format!(
        "\n{indent}{{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
        json_escape(&h.name),
        h.count,
        h.sum,
        h.p50,
        h.p90,
        h.p99
    );
    for (j, (le, n)) in h.buckets.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"le\": {le}, \"count\": {n}}}"));
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Captures every registered instrument (readable in every mode — a
/// snapshot taken with telemetry off simply reports what earlier modes
/// recorded).
pub fn snapshot() -> Snapshot {
    let inner = lock_registry();
    let mut counters: Vec<(String, u64)> = inner
        .counters
        .iter()
        .map(|c| (c.name.to_owned(), c.get()))
        .chain(inner.dynamic.iter().cloned())
        .collect();
    counters.sort();
    let mut histograms: Vec<HistogramSnapshot> = inner
        .histograms
        .iter()
        .map(|h| {
            HistogramSnapshot::from_buckets(
                h.name.to_owned(),
                h.count(),
                h.sum(),
                h.buckets.iter().map(|b| b.load(Ordering::Relaxed)),
            )
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    drop(inner);
    Snapshot {
        mode: mode(),
        counters,
        histograms,
        scopes: trace::scoped_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole suite shares one process-global mode + registry, so a
    /// single test exercises every stateful path sequentially.
    #[test]
    fn modes_gate_instruments_and_snapshots_export() {
        static HITS: Counter = Counter::new("test.hits");
        static NANOS: Histogram = Histogram::new("test.nanos");

        // Off: everything is a no-op.
        set_mode(TelemetryMode::Off);
        assert!(!counters_enabled() && !full_enabled());
        HITS.add(5);
        NANOS.observe(100);
        drop(span(&NANOS));
        assert_eq!(HITS.get(), 0);
        assert_eq!(NANOS.count(), 0);

        // Counters: counters record, histograms stay off.
        set_mode(TelemetryMode::Counters);
        HITS.add(2);
        HITS.add(3);
        NANOS.observe(100);
        drop(span(&NANOS));
        assert_eq!(HITS.get(), 5);
        assert_eq!(NANOS.count(), 0);

        // Full: everything records; spans land in their histogram.
        set_mode(TelemetryMode::Full);
        NANOS.observe(0);
        NANOS.observe(7);
        drop(span(&NANOS));
        assert_eq!(NANOS.count(), 3);
        assert!(NANOS.sum() >= 7);

        // The name-keyed sink routes to registered instruments and
        // collects unknown counters dynamically.
        global().add("test.hits", 10);
        assert_eq!(HITS.get(), 15);
        global().add("test.dynamic", 4);
        global().add("test.dynamic", 4);
        global().observe("test.nanos", 9);
        assert_eq!(NANOS.count(), 4);

        let snap = snapshot();
        assert_eq!(snap.mode, TelemetryMode::Full);
        assert_eq!(snap.counter("test.hits"), Some(15));
        assert_eq!(snap.counter("test.dynamic"), Some(8));
        assert_eq!(snap.counter("test.unknown"), None);
        let h = snap.histogram("test.nanos").expect("registered");
        assert_eq!(h.count, 4);
        assert!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>() == 4);
        // Counters are sorted by name.
        let names: Vec<_> = snap.counters.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);

        // JSON export: stable schema header + instruments present.
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"safety-opt-telemetry-v1\""));
        assert!(json.contains("\"mode\": \"full\""));
        assert!(json.contains("\"test.hits\": 15"));
        assert!(json.contains("\"name\": \"test.nanos\""));

        // Reset zeroes values but keeps registration.
        reset();
        assert_eq!(HITS.get(), 0);
        assert_eq!(NANOS.count(), 0);
        let snap = snapshot();
        assert_eq!(snap.counter("test.hits"), Some(0));
        assert_eq!(snap.counter("test.dynamic"), None);

        set_mode(TelemetryMode::Off);
    }

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_le(0), 0);
        assert_eq!(Histogram::bucket_le(1), 1);
        assert_eq!(Histogram::bucket_le(2), 3);
        assert_eq!(Histogram::bucket_le(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            let i = Histogram::bucket_of(v);
            assert!(v <= Histogram::bucket_le(i));
            if i > 0 {
                assert!(v > Histogram::bucket_le(i - 1));
            }
        }
    }

    #[test]
    fn parse_override_accepts_known_modes() {
        assert_eq!(parse_mode_override(None), None);
        assert_eq!(parse_mode_override(Some("")), None);
        assert_eq!(parse_mode_override(Some("  ")), None);
        assert_eq!(parse_mode_override(Some("off")), Some(TelemetryMode::Off));
        assert_eq!(
            parse_mode_override(Some("counters")),
            Some(TelemetryMode::Counters)
        );
        assert_eq!(parse_mode_override(Some("full")), Some(TelemetryMode::Full));
        assert_eq!(
            parse_mode_override(Some(" full ")),
            Some(TelemetryMode::Full)
        );
    }

    #[test]
    #[should_panic(expected = "SAFETY_OPT_TELEMETRY must be one of off, counters, full")]
    fn parse_override_rejects_typos() {
        parse_mode_override(Some("verbose"));
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [
            TelemetryMode::Off,
            TelemetryMode::Counters,
            TelemetryMode::Full,
        ] {
            assert_eq!(parse_mode_override(Some(m.name())), Some(m));
        }
        assert!(TelemetryMode::Off < TelemetryMode::Counters);
        assert!(TelemetryMode::Counters < TelemetryMode::Full);
    }

    #[test]
    fn percentiles_on_known_distributions() {
        // Dense bucket math, independent of the global mode: 100
        // samples of the values 1..=100 land in buckets 1..=7
        // ([1], [2,3], [4,7], [8,15], [16,31], [32,63], [64,100]).
        let mut counts = vec![0u64; BUCKETS];
        for v in 1u64..=100 {
            counts[Histogram::bucket_of(v)] += 1;
        }
        // Rank 50 is the value 50 → bucket [32,63], upper bound 63.
        assert_eq!(percentile_of_buckets(&counts, 50.0), 63);
        // Rank 90 is the value 90 → bucket [64,127], upper bound 127.
        assert_eq!(percentile_of_buckets(&counts, 90.0), 127);
        assert_eq!(percentile_of_buckets(&counts, 99.0), 127);
        // Extremes: p→0 clamps to the first sample, p=100 to the last.
        assert_eq!(percentile_of_buckets(&counts, 0.001), 1);
        assert_eq!(percentile_of_buckets(&counts, 100.0), 127);
        // Empty histograms report 0 everywhere.
        assert_eq!(percentile_of_buckets(&vec![0u64; BUCKETS], 50.0), 0);

        // A point mass: every percentile is that bucket's bound.
        let mut point = vec![0u64; BUCKETS];
        point[Histogram::bucket_of(1000)] = 7;
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_of_buckets(&point, p), 1023);
        }

        // A bimodal split: 90 fast samples (=4) and 10 slow (=4096):
        // p50/p90 sit in the fast mode, p99 in the slow tail.
        let mut bimodal = vec![0u64; BUCKETS];
        bimodal[Histogram::bucket_of(4)] = 90;
        bimodal[Histogram::bucket_of(4096)] = 10;
        assert_eq!(percentile_of_buckets(&bimodal, 50.0), 7);
        assert_eq!(percentile_of_buckets(&bimodal, 90.0), 7);
        assert_eq!(percentile_of_buckets(&bimodal, 99.0), 8191);

        // The snapshot carries the same numbers through from_buckets
        // and its own sparse-bucket percentile.
        let snap = HistogramSnapshot::from_buckets("t".into(), 100, 0, bimodal.iter().copied());
        assert_eq!((snap.p50, snap.p90, snap.p99), (7, 7, 8191));
        assert_eq!(snap.percentile(50.0), 7);
        assert_eq!(snap.percentile(99.0), 8191);

        // The live accessor agrees with the dense math.
        static PCT: Histogram = Histogram::new("test.pct");
        set_mode(TelemetryMode::Full);
        for v in 1u64..=100 {
            PCT.observe(v);
        }
        assert_eq!(PCT.percentile(50.0), 63);
        assert_eq!(PCT.percentile(90.0), 127);
        set_mode(TelemetryMode::Off);
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
