//! Structured tracing on top of the telemetry registry: scoped
//! contexts, a timestamped event ring buffer, and JSONL / Chrome
//! trace-event exporters — all behind the `SAFETY_OPT_TRACE` knob.
//!
//! # Modes
//!
//! `SAFETY_OPT_TRACE` follows the same contract as every other
//! `SAFETY_OPT_*` knob (read once per process, typos panic loudly,
//! [`set_trace_mode`] is the programmatic override):
//!
//! * [`TraceMode::Off`] — the default; every trace site reduces to one
//!   relaxed atomic load and a branch, and scope guards are inert.
//! * [`TraceMode::Events`] — scope begin/end, span completions,
//!   failpoint firings, degradation fallbacks, deadline expiries, and
//!   cache evictions land in the event ring buffer, and counter /
//!   histogram recordings made under an active [`TraceScope`] are
//!   additionally attributed to that scope.
//! * [`TraceMode::Full`] — everything above, plus the engine's per-op
//!   tape profiler arms itself (sweep loops time each op).
//!
//! # Scopes
//!
//! A [`TraceScope`] names a region of work — a request, a model index,
//! an optimizer restart — on the current thread. While a scope is
//! active, every [`Counter`](crate::Counter) add and full-mode span /
//! histogram recording is *additionally* accumulated under the scope
//! (the process-global aggregates are untouched, bit for bit). Worker
//! threads inherit the spawning thread's scope through a cloned
//! [`ScopeHandle`]:
//!
//! ```
//! use safety_opt_telemetry as telemetry;
//!
//! telemetry::set_trace_mode(telemetry::TraceMode::Events);
//! let scope = telemetry::TraceScope::enter("request.42");
//! let handle = telemetry::ScopeHandle::current();
//! std::thread::scope(|s| {
//!     s.spawn(move || {
//!         let _g = handle.attach();
//!         // recordings here are attributed to "request.42"
//!     });
//! });
//! drop(scope);
//! telemetry::set_trace_mode(telemetry::TraceMode::Off);
//! ```
//!
//! # Events
//!
//! The ring buffer is sharded-mutex, fixed-capacity, drop-oldest; a
//! dropped-events counter ([`dropped_events`]) records what fell off.
//! [`take_events`] drains everything in one globally ordered sequence;
//! [`export_jsonl`] and [`export_chrome_trace`] render it — the latter
//! loads directly into `chrome://tracing` / Perfetto.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::{json_escape, HistogramSnapshot, BUCKETS};

/// How much the process traces. Ordered: each level includes the
/// previous one's recordings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceMode {
    /// Nothing traces; scope guards are inert, no clock reads.
    Off = 0,
    /// Scoped attribution and the event ring buffer record.
    Events = 1,
    /// Events plus the engine's per-op tape profiler.
    Full = 2,
}

impl TraceMode {
    /// The mode's canonical lowercase name (`off`/`events`/`full`).
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Events => "events",
            TraceMode::Full => "full",
        }
    }
}

/// Sentinel: the env var has not been consulted yet.
const TRACE_UNSET: u8 = u8::MAX;

static TRACE: AtomicU8 = AtomicU8::new(TRACE_UNSET);

/// Parses a `SAFETY_OPT_TRACE` override. `None` or an empty/blank
/// string means "not set" (the default, [`TraceMode::Off`], applies).
///
/// # Panics
///
/// Panics on any other value, in the uniform knob message format — a
/// typo silently disabling tracing would be undetectable.
pub fn parse_trace_override(raw: Option<&str>) -> Option<TraceMode> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.to_ascii_lowercase().as_str() {
        "off" => Some(TraceMode::Off),
        "events" => Some(TraceMode::Events),
        "full" => Some(TraceMode::Full),
        _ => panic!(
            "SAFETY_OPT_TRACE must be \"off\" or \"events\" or \"full\", \
             got {raw:?} (unset it to disable tracing)"
        ),
    }
}

#[cold]
fn init_trace_mode() -> TraceMode {
    let env = std::env::var("SAFETY_OPT_TRACE").ok();
    let mode = parse_trace_override(env.as_deref()).unwrap_or(TraceMode::Off);
    // A racing initializer computes the same value; last store wins.
    TRACE.store(mode as u8, Ordering::Relaxed);
    mode
}

/// The process-wide trace mode: the `SAFETY_OPT_TRACE` environment
/// override, read once on first query, unless [`set_trace_mode`]
/// replaced it.
#[inline]
pub fn trace_mode() -> TraceMode {
    match TRACE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Events,
        2 => TraceMode::Full,
        _ => init_trace_mode(),
    }
}

/// Overrides the trace mode for the whole process — the in-process
/// switch the equivalence suites and the overhead bench drive.
pub fn set_trace_mode(mode: TraceMode) {
    TRACE.store(mode as u8, Ordering::Relaxed);
}

/// `true` when the event ring buffer and scoped attribution record
/// ([`TraceMode::Events`] or above).
#[inline]
pub fn trace_events_enabled() -> bool {
    trace_mode() >= TraceMode::Events
}

/// `true` when the per-op tape profiler is armed ([`TraceMode::Full`]).
#[inline]
pub fn trace_profiling_enabled() -> bool {
    trace_mode() == TraceMode::Full
}

// ---------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------

/// Interned identity of a named scope (process-global, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeId(u32);

/// Interned scope names, indexed by [`ScopeId`]. Linear-scan interning:
/// a process has few *distinct* scope names alive at once, and scope
/// entry is far off the per-point hot path.
static SCOPE_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn lock_scope_names() -> std::sync::MutexGuard<'static, Vec<String>> {
    SCOPE_NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn intern_scope(name: &str) -> ScopeId {
    let mut names = lock_scope_names();
    if let Some(i) = names.iter().position(|n| n == name) {
        return ScopeId(i as u32);
    }
    names.push(name.to_owned());
    ScopeId((names.len() - 1) as u32)
}

/// The interned name of `id` (scopes are never un-interned).
pub fn scope_name(id: ScopeId) -> String {
    lock_scope_names()
        .get(id.0 as usize)
        .cloned()
        .unwrap_or_default()
}

/// One entry of a thread's scope stack: the scope's identity plus the
/// attribution buffered under it while it is the innermost scope.
///
/// Counter adds and histogram samples land here — a thread-local linear
/// scan over the handful of instruments a scope touches — and merge
/// into the process-global store only when the frame pops. This keeps
/// the per-record cost off every global lock; the trade is that
/// [`scoped_snapshot`] sees a scope's attribution once the scope (or a
/// worker's [`ScopeAttachGuard`]) has ended.
#[derive(Debug)]
struct ScopeFrame {
    id: ScopeId,
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, ScopedHist)>,
}

impl ScopeFrame {
    fn new(id: ScopeId) -> Self {
        Self {
            id,
            counters: Vec::new(),
            hists: Vec::new(),
        }
    }
}

thread_local! {
    /// The current thread's scope stack (innermost last).
    static SCOPE_STACK: RefCell<Vec<ScopeFrame>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active scope on the current thread, or `None` when no
/// scope is active or tracing is off.
#[inline]
pub fn current_scope() -> Option<ScopeId> {
    if !trace_events_enabled() {
        return None;
    }
    SCOPE_STACK.with(|s| s.borrow().last().map(|f| f.id))
}

/// Pushes a frame for `id` onto this thread's scope stack.
fn push_scope_frame(id: ScopeId) {
    SCOPE_STACK.with(|s| s.borrow_mut().push(ScopeFrame::new(id)));
}

/// Pops the frame for `id` (innermost match, tolerating out-of-order
/// guard drops) and merges its buffered attribution into the global
/// store.
fn pop_scope_frame(id: ScopeId) {
    let frame = SCOPE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.last().map(|f| f.id) == Some(id) {
            stack.pop()
        } else {
            stack
                .iter()
                .rposition(|f| f.id == id)
                .map(|pos| stack.remove(pos))
        }
    });
    if let Some(frame) = frame {
        flush_scope_frame(frame);
    }
}

/// Merges a popped frame's buffered attribution into [`SCOPED`]. One
/// global lock per scope end, not per recording.
fn flush_scope_frame(frame: ScopeFrame) {
    if frame.counters.is_empty() && frame.hists.is_empty() {
        return;
    }
    let ScopeFrame {
        id,
        counters,
        hists,
    } = frame;
    let mut stats = lock_scoped();
    for (name, v) in counters {
        *stats.counters.entry((id, name)).or_insert(0) += v;
    }
    for (name, h) in hists {
        match stats.hists.entry((id, name)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let dst = e.get_mut();
                for (d, s) in dst.buckets.iter_mut().zip(h.buckets.iter()) {
                    *d += s;
                }
                dst.count += h.count;
                dst.sum = dst.sum.wrapping_add(h.sum);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(h);
            }
        }
    }
}

/// RAII guard for a named scope on the current thread. Entering pushes
/// the scope onto the thread-local stack and records a
/// [`EventKind::ScopeBegin`] event; dropping pops it and records
/// [`EventKind::ScopeEnd`]. Inert (no interning, no events) when
/// tracing is [`TraceMode::Off`].
#[derive(Debug)]
#[must_use = "a scope ends on drop; binding it to _ drops it immediately"]
pub struct TraceScope {
    id: Option<ScopeId>,
}

impl TraceScope {
    /// Enters the scope named `name` on the current thread.
    pub fn enter(name: &str) -> Self {
        if !trace_events_enabled() {
            return Self { id: None };
        }
        let id = intern_scope(name);
        push_scope_frame(id);
        record_event(RingEvent {
            seq: 0,
            ts_nanos: now_nanos(),
            dur_nanos: 0,
            kind: EventKind::ScopeBegin,
            name: Cow::Owned(name.to_owned()),
            scope: Some(id),
            tid: thread_tag(),
            value: 0,
        });
        Self { id: Some(id) }
    }

    /// The scope's interned id (`None` when tracing was off at entry).
    pub fn id(&self) -> Option<ScopeId> {
        self.id
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            // Pops *this* scope even if an inner guard leaked out of
            // order, and flushes its buffered attribution.
            pop_scope_frame(id);
            record_event(RingEvent {
                seq: 0,
                ts_nanos: now_nanos(),
                dur_nanos: 0,
                kind: EventKind::ScopeEnd,
                name: Cow::Owned(scope_name(id)),
                scope: Some(id),
                tid: thread_tag(),
                value: 0,
            });
        }
    }
}

/// A cloneable, `Send` handle to the current thread's innermost scope,
/// for carrying scope attribution into worker threads: capture with
/// [`ScopeHandle::current`] before spawning, [`attach`](Self::attach)
/// inside the worker. A handle captured with no active scope (or with
/// tracing off) attaches as a no-op.
#[derive(Debug, Clone, Copy)]
pub struct ScopeHandle(Option<ScopeId>);

impl ScopeHandle {
    /// Captures the current thread's innermost scope.
    pub fn current() -> Self {
        Self(current_scope())
    }

    /// An empty handle (attaches as a no-op).
    pub fn none() -> Self {
        Self(None)
    }

    /// Pushes the captured scope onto this thread's scope stack until
    /// the returned guard drops. Emits no events — the scope was begun
    /// by its owning [`TraceScope`]; workers only borrow attribution.
    pub fn attach(&self) -> ScopeAttachGuard {
        match self.0 {
            Some(id) if trace_events_enabled() => {
                push_scope_frame(id);
                ScopeAttachGuard { id: Some(id) }
            }
            _ => ScopeAttachGuard { id: None },
        }
    }
}

/// Guard returned by [`ScopeHandle::attach`]; pops the borrowed scope
/// on drop.
#[derive(Debug)]
#[must_use = "the attachment ends on drop; binding it to _ drops it immediately"]
pub struct ScopeAttachGuard {
    id: Option<ScopeId>,
}

impl Drop for ScopeAttachGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            pop_scope_frame(id);
        }
    }
}

// ---------------------------------------------------------------------
// Scoped attribution store
// ---------------------------------------------------------------------

/// Per-scope histogram accumulation (plain integers under the mutex).
#[derive(Debug)]
struct ScopedHist {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
}

/// Per-scope accumulation of counter adds and histogram samples.
#[derive(Debug, Default)]
struct ScopedStats {
    counters: HashMap<(ScopeId, &'static str), u64>,
    hists: HashMap<(ScopeId, &'static str), ScopedHist>,
}

static SCOPED: OnceLock<Mutex<ScopedStats>> = OnceLock::new();

fn lock_scoped() -> std::sync::MutexGuard<'static, ScopedStats> {
    SCOPED
        .get_or_init(|| Mutex::new(ScopedStats::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Attributes a counter add to the current scope's thread-local frame,
/// if any. Called from [`Counter::add`](crate::Counter::add) *after*
/// the global add — the process-global aggregate is never touched by
/// this path. A frame touches few distinct instruments, so a linear
/// scan beats hashing under a global lock.
#[inline]
pub(crate) fn scoped_counter_add(name: &'static str, n: u64) {
    if !trace_events_enabled() {
        return;
    }
    SCOPE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let Some(frame) = stack.last_mut() else {
            return;
        };
        match frame.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => frame.counters.push((name, n)),
        }
    });
}

/// Attributes a histogram sample to the current scope's thread-local
/// frame, exactly like [`scoped_counter_add`].
#[inline]
pub(crate) fn scoped_hist_record(name: &'static str, value: u64) {
    if !trace_events_enabled() {
        return;
    }
    SCOPE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let Some(frame) = stack.last_mut() else {
            return;
        };
        let idx = match frame.hists.iter().position(|(k, _)| *k == name) {
            Some(i) => i,
            None => {
                frame.hists.push((
                    name,
                    ScopedHist {
                        buckets: Box::new([0; BUCKETS]),
                        count: 0,
                        sum: 0,
                    },
                ));
                frame.hists.len() - 1
            }
        };
        let h = &mut frame.hists[idx].1;
        h.buckets[crate::Histogram::bucket_of(value)] += 1;
        h.count += 1;
        h.sum = h.sum.wrapping_add(value);
    });
}

/// One scope's accumulated instruments inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeSnapshot {
    /// The scope's name.
    pub name: String,
    /// `(instrument name, value)` of counter adds made under the scope,
    /// sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram samples recorded under the scope, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Captures every scope's accumulated attribution, sorted by scope
/// name (readable in every mode). Attribution buffers thread-locally
/// while a scope is active and merges here when the scope (or an
/// attach guard) ends — the snapshot reflects completed scope
/// sessions.
pub fn scoped_snapshot() -> Vec<ScopeSnapshot> {
    let stats = lock_scoped();
    let mut by_scope: HashMap<ScopeId, ScopeSnapshot> = HashMap::new();
    for (&(scope, name), &v) in &stats.counters {
        by_scope
            .entry(scope)
            .or_insert_with(|| empty_scope_snapshot(scope))
            .counters
            .push((name.to_owned(), v));
    }
    for (&(scope, name), h) in &stats.hists {
        by_scope
            .entry(scope)
            .or_insert_with(|| empty_scope_snapshot(scope))
            .histograms
            .push(HistogramSnapshot::from_buckets(
                name.to_owned(),
                h.count,
                h.sum,
                h.buckets.iter().copied(),
            ));
    }
    let mut scopes: Vec<ScopeSnapshot> = by_scope.into_values().collect();
    for s in &mut scopes {
        s.counters.sort();
        s.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
    scopes.sort_by(|a, b| a.name.cmp(&b.name));
    scopes
}

fn empty_scope_snapshot(scope: ScopeId) -> ScopeSnapshot {
    ScopeSnapshot {
        name: scope_name(scope),
        counters: Vec::new(),
        histograms: Vec::new(),
    }
}

/// Clears every scope's accumulated attribution (interned names stay).
pub(crate) fn reset_scoped() {
    let mut stats = lock_scoped();
    stats.counters.clear();
    stats.hists.clear();
}

// ---------------------------------------------------------------------
// Event ring buffer
// ---------------------------------------------------------------------

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A [`TraceScope`] was entered.
    ScopeBegin,
    /// A [`TraceScope`] ended.
    ScopeEnd,
    /// A [`crate::span`] completed; `dur_nanos` holds its duration and
    /// `ts_nanos` its start.
    Span,
    /// An armed fault-injection site fired.
    FailpointFired,
    /// A blown BDD node budget degraded a hazard to rare-event
    /// lowering.
    DegradeFallback,
    /// A cooperative evaluation deadline expired; `value` holds the
    /// chunk index.
    DeadlineExpired,
    /// The quantized memo cache flushed at capacity; `value` holds the
    /// number of dropped entries.
    CacheEviction,
    /// A one-time stderr diagnostic, made machine-visible.
    Warning,
}

impl EventKind {
    /// The kind's stable snake_case name (the `kind` field of the JSONL
    /// export).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ScopeBegin => "scope_begin",
            EventKind::ScopeEnd => "scope_end",
            EventKind::Span => "span",
            EventKind::FailpointFired => "failpoint_fired",
            EventKind::DegradeFallback => "degrade_fallback",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::CacheEviction => "cache_eviction",
            EventKind::Warning => "warning",
        }
    }
}

/// One timestamped entry of the event ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number — the total order across all shards.
    pub seq: u64,
    /// Nanoseconds since the process trace epoch (first trace clock
    /// read); for [`EventKind::Span`] this is the span's *start*.
    pub ts_nanos: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event name (span histogram name, scope name, failpoint site, …).
    pub name: String,
    /// Innermost active scope on the recording thread, if any.
    pub scope: Option<String>,
    /// Stable per-thread tag (small dense integers, not OS ids).
    pub tid: u64,
    /// Kind-specific payload (dropped entries, chunk index, …).
    pub value: u64,
}

/// What the ring actually stores: like [`Event`], but the name borrows
/// `'static` instrument names where it can (span completions — the hot
/// emitters — allocate nothing) and the scope is the interned
/// [`ScopeId`]; both materialize into the public [`Event`] strings only
/// on drain.
#[derive(Debug, Clone)]
struct RingEvent {
    seq: u64,
    ts_nanos: u64,
    dur_nanos: u64,
    kind: EventKind,
    name: Cow<'static, str>,
    scope: Option<ScopeId>,
    tid: u64,
    value: u64,
}

/// Ring shards (thread-tag-picked) and per-shard capacity. 8 × 8192 =
/// 65536 events total before drop-oldest kicks in.
const SHARDS: usize = 8;
const SHARD_CAP: usize = 8192;

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SHARD: Mutex<VecDeque<RingEvent>> = Mutex::new(VecDeque::new());
static RING: [Mutex<VecDeque<RingEvent>>; SHARDS] = [EMPTY_SHARD; SHARDS];

/// Global event sequence — the total order reconstructed on drain.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Events dropped (oldest-first) because a shard hit capacity.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// The process trace epoch: the instant of the first trace clock read.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic per-thread tags, dense from 0 in first-use order.
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable trace tag.
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

/// Nanoseconds between the process trace epoch and `now` (initializing
/// the epoch on first call).
#[inline]
pub(crate) fn nanos_since_epoch(now: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(|| now);
    // `duration_since` saturates to zero for the initializing racer.
    u64::try_from(now.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds since the process trace epoch (initializing the epoch on
/// first call).
pub fn now_nanos() -> u64 {
    nanos_since_epoch(Instant::now())
}

fn lock_shard(i: usize) -> std::sync::MutexGuard<'static, VecDeque<RingEvent>> {
    RING[i]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Stamps `event` with the next global sequence number and pushes it
/// onto this thread's shard, dropping the shard's oldest entry at
/// capacity.
fn record_event(mut event: RingEvent) {
    event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut shard = lock_shard((thread_tag() % SHARDS as u64) as usize);
    if shard.len() >= SHARD_CAP {
        shard.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    shard.push_back(event);
}

/// Records an instant event (no duration) when tracing is enabled; a
/// no-op (one load + branch) otherwise.
#[inline]
pub fn trace_instant(kind: EventKind, name: &str, value: u64) {
    if !trace_events_enabled() {
        return;
    }
    record_event(RingEvent {
        seq: 0,
        ts_nanos: now_nanos(),
        dur_nanos: 0,
        kind,
        name: Cow::Owned(name.to_owned()),
        scope: current_scope(),
        tid: thread_tag(),
        value,
    });
}

/// Records a completed span (`start_ts` from [`now_nanos`] at start).
/// Mode already checked by the caller ([`crate::Span`]'s drop). The
/// span-per-chunk hot path: no allocation, no name lookup — the
/// `'static` name is borrowed and the scope stays interned until drain.
pub(crate) fn record_span_event(name: &'static str, start_ts: u64, dur_nanos: u64) {
    record_event(RingEvent {
        seq: 0,
        ts_nanos: start_ts,
        dur_nanos,
        kind: EventKind::Span,
        name: Cow::Borrowed(name),
        scope: current_scope(),
        tid: thread_tag(),
        value: 0,
    });
}

/// Number of events dropped so far because a ring shard was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drains every ring shard into one sequence ordered by the global
/// sequence number, materializing borrowed names and interned scope
/// ids into owned strings. The ring is empty afterwards; the
/// dropped-events counter is untouched.
pub fn take_events() -> Vec<Event> {
    let mut all = Vec::new();
    for i in 0..SHARDS {
        all.extend(lock_shard(i).drain(..));
    }
    all.sort_by_key(|e| e.seq);
    // One snapshot of the interned names resolves every scope id.
    let names = lock_scope_names().clone();
    all.into_iter()
        .map(|e| Event {
            seq: e.seq,
            ts_nanos: e.ts_nanos,
            dur_nanos: e.dur_nanos,
            kind: e.kind,
            name: e.name.into_owned(),
            scope: e.scope.and_then(|id| names.get(id.0 as usize).cloned()),
            tid: e.tid,
            value: e.value,
        })
        .collect()
}

/// Clears the ring and zeroes the dropped-events counter (for tests and
/// bench rounds; interned scope names stay).
pub fn clear_events() {
    for i in 0..SHARDS {
        lock_shard(i).clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Renders `events` as JSONL: one self-contained JSON object per line,
/// in the given order.
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&format!(
            "{{\"seq\": {}, \"ts_nanos\": {}, \"dur_nanos\": {}, \"kind\": \"{}\", \
             \"name\": \"{}\", \"scope\": {}, \"tid\": {}, \"value\": {}}}\n",
            e.seq,
            e.ts_nanos,
            e.dur_nanos,
            e.kind.name(),
            json_escape(&e.name),
            match &e.scope {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".to_owned(),
            },
            e.tid,
            e.value,
        ));
    }
    out
}

/// Renders `events` in the Chrome trace-event format (the JSON object
/// form), loadable in `chrome://tracing` and Perfetto. Scope begin/end
/// map to `B`/`E` duration events, spans to `X` complete events, and
/// everything else to `i` instant events; timestamps are microseconds
/// since the trace epoch.
pub fn export_chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = e.ts_nanos as f64 / 1000.0;
        let common = format!(
            "\"name\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}",
            json_escape(&e.name),
            e.tid
        );
        let args = format!(
            "\"args\": {{\"seq\": {}, \"scope\": {}, \"value\": {}}}",
            e.seq,
            match &e.scope {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".to_owned(),
            },
            e.value,
        );
        match e.kind {
            EventKind::ScopeBegin => {
                out.push_str(&format!(
                    "\n  {{{common}, \"cat\": \"scope\", \"ph\": \"B\", {args}}}"
                ));
            }
            EventKind::ScopeEnd => {
                out.push_str(&format!(
                    "\n  {{{common}, \"cat\": \"scope\", \"ph\": \"E\", {args}}}"
                ));
            }
            EventKind::Span => {
                let dur = e.dur_nanos as f64 / 1000.0;
                out.push_str(&format!(
                    "\n  {{{common}, \"cat\": \"span\", \"ph\": \"X\", \"dur\": {dur:.3}, {args}}}"
                ));
            }
            kind => {
                out.push_str(&format!(
                    "\n  {{{common}, \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", {args}}}",
                    kind.name()
                ));
            }
        }
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole module shares process-global mode + ring + scope
    /// state, so one test exercises the stateful paths sequentially
    /// (mirroring the lib-level mode test).
    #[test]
    fn scopes_events_and_exports_work_end_to_end() {
        set_trace_mode(TraceMode::Off);
        clear_events();

        // Off: scope guards are inert, events vanish.
        {
            let s = TraceScope::enter("off.scope");
            assert!(s.id().is_none());
            trace_instant(EventKind::CacheEviction, "x", 1);
        }
        assert!(take_events().is_empty());
        assert!(current_scope().is_none());

        // Events: scopes nest, events land in order, handles attach.
        set_trace_mode(TraceMode::Events);
        {
            let outer = TraceScope::enter("outer");
            assert!(outer.id().is_some());
            {
                let _inner = TraceScope::enter("inner");
                assert_eq!(current_scope(), _inner.id());
                trace_instant(EventKind::FailpointFired, "site.a", 0);
            }
            assert_eq!(current_scope(), outer.id());
            let handle = ScopeHandle::current();
            std::thread::scope(|s| {
                s.spawn(move || {
                    assert!(current_scope().is_none());
                    let _g = handle.attach();
                    assert!(current_scope().is_some());
                    trace_instant(EventKind::DeadlineExpired, "pool.chunk", 3);
                });
            });
        }
        let events = take_events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::ScopeBegin, // outer
                EventKind::ScopeBegin, // inner
                EventKind::FailpointFired,
                EventKind::ScopeEnd, // inner
                EventKind::DeadlineExpired,
                EventKind::ScopeEnd, // outer
            ]
        );
        assert_eq!(events[2].scope.as_deref(), Some("inner"));
        assert_eq!(events[4].scope.as_deref(), Some("outer"));
        // seqs are the total order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));

        // Exports: one JSONL line per event; Chrome doc mentions each.
        let jsonl = export_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        assert!(jsonl.contains("\"kind\": \"failpoint_fired\""));
        let chrome = export_chrome_trace(&events);
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\": \"B\""));
        assert!(chrome.contains("\"ph\": \"E\""));
        assert!(chrome.contains("\"ph\": \"i\""));

        set_trace_mode(TraceMode::Off);
        clear_events();
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        // Private-API test: fill one shard directly past capacity.
        let before = dropped_events();
        for i in 0..(SHARD_CAP + 10) {
            let mut shard = lock_shard(SHARDS - 1);
            if shard.len() >= SHARD_CAP {
                shard.pop_front();
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
            shard.push_back(RingEvent {
                seq: i as u64,
                ts_nanos: 0,
                dur_nanos: 0,
                kind: EventKind::CacheEviction,
                name: Cow::Borrowed("fill"),
                scope: None,
                tid: 0,
                value: 0,
            });
        }
        assert_eq!(lock_shard(SHARDS - 1).len(), SHARD_CAP);
        assert_eq!(dropped_events() - before, 10);
        lock_shard(SHARDS - 1).clear();
        DROPPED.store(before, Ordering::Relaxed);
    }

    #[test]
    fn parse_trace_override_accepts_known_modes() {
        assert_eq!(parse_trace_override(None), None);
        assert_eq!(parse_trace_override(Some("")), None);
        assert_eq!(parse_trace_override(Some("  ")), None);
        assert_eq!(parse_trace_override(Some("off")), Some(TraceMode::Off));
        assert_eq!(
            parse_trace_override(Some("events")),
            Some(TraceMode::Events)
        );
        assert_eq!(parse_trace_override(Some(" Full ")), Some(TraceMode::Full));
        for m in [TraceMode::Off, TraceMode::Events, TraceMode::Full] {
            assert_eq!(parse_trace_override(Some(m.name())), Some(m));
        }
        assert!(TraceMode::Off < TraceMode::Events);
        assert!(TraceMode::Events < TraceMode::Full);
    }

    #[test]
    #[should_panic(expected = "SAFETY_OPT_TRACE must be \"off\" or \"events\" or \"full\"")]
    fn parse_trace_override_rejects_typos() {
        parse_trace_override(Some("everything"));
    }
}
