//! The trace exporters emit *valid* JSON for arbitrary event contents
//! — names and scopes containing quotes, backslashes, control
//! characters, and non-ASCII must round-trip through the escaping
//! layer without ever producing an unparseable document.
//!
//! The checker is a minimal hand-written JSON parser (no external
//! deps): strict on syntax, builds a small AST so the properties can
//! compare decoded strings against the original event fields.

use proptest::prelude::*;
use safety_opt_telemetry::trace::{export_chrome_trace, export_jsonl, Event};
use safety_opt_telemetry::EventKind;

// ---------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // One UTF-8 scalar (the input is a &str, so bytes
                    // are well-formed; find its end).
                    let mut end = start + 1;
                    while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

/// Parses `s` as exactly one JSON document (trailing whitespace ok).
fn parse_document(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Event generation
// ---------------------------------------------------------------------

const KINDS: [EventKind; 8] = [
    EventKind::ScopeBegin,
    EventKind::ScopeEnd,
    EventKind::Span,
    EventKind::FailpointFired,
    EventKind::DegradeFallback,
    EventKind::DeadlineExpired,
    EventKind::CacheEviction,
    EventKind::Warning,
];

/// Strings that stress the escaping layer: quotes, backslashes, every
/// control character, non-ASCII (including beyond the BMP), and the
/// JSON-syntax bytes themselves.
fn nasty_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        (0u64..0x20).prop_map(|c| char::from_u32(c as u32).expect("control char")),
        (0x20u64..0x7f).prop_map(|c| char::from_u32(c as u32).expect("ascii")),
        Just('µ'),
        Just('é'),
        Just('→'),
        Just('𝕊'),
        Just('{'),
        Just('}'),
        Just(','),
        Just(':'),
    ]
}

fn nasty_string() -> impl Strategy<Value = String> {
    prop::collection::vec(nasty_char(), 0..16).prop_map(|cs| cs.into_iter().collect())
}

fn event() -> impl Strategy<Value = Event> {
    (
        (
            0usize..KINDS.len(),
            nasty_string(),
            (any::<bool>(), nasty_string()),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((k, name, (scoped, scope)), (seq, ts, dur, value))| Event {
                seq,
                ts_nanos: ts % (1 << 53),
                dur_nanos: dur % (1 << 53),
                kind: KINDS[k],
                name,
                scope: scoped.then_some(scope),
                tid: value % 64,
                value,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jsonl_is_valid_and_round_trips(events in prop::collection::vec(event(), 0..12)) {
        let out = export_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines.len(), events.len(), "one JSONL line per event");
        for (line, e) in lines.iter().zip(&events) {
            let doc = match parse_document(line) {
                Ok(doc) => doc,
                Err(msg) => return Err(TestCaseError::fail(format!("invalid JSONL: {msg}\n{line}"))),
            };
            let want_name = Json::Str(e.name.clone());
            let want_scope = match &e.scope {
                Some(s) => Json::Str(s.clone()),
                None => Json::Null,
            };
            let want_kind = Json::Str(e.kind.name().to_owned());
            let want_value = Json::Num(e.value as f64);
            prop_assert_eq!(doc.get("name"), Some(&want_name), "name survives escaping");
            prop_assert_eq!(doc.get("scope"), Some(&want_scope), "scope survives escaping");
            prop_assert_eq!(doc.get("kind"), Some(&want_kind));
            prop_assert_eq!(doc.get("value"), Some(&want_value));
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_round_trips(events in prop::collection::vec(event(), 0..12)) {
        let out = export_chrome_trace(&events);
        let doc = match parse_document(&out) {
            Ok(doc) => doc,
            Err(msg) => return Err(TestCaseError::fail(format!("invalid Chrome trace: {msg}\n{out}"))),
        };
        let entries = match doc.get("traceEvents") {
            Some(Json::Arr(entries)) => entries,
            other => return Err(TestCaseError::fail(format!("traceEvents is {other:?}"))),
        };
        prop_assert_eq!(entries.len(), events.len(), "one trace entry per event");
        for (entry, e) in entries.iter().zip(&events) {
            let want_name = Json::Str(e.name.clone());
            let want_scope = match &e.scope {
                Some(s) => Json::Str(s.clone()),
                None => Json::Null,
            };
            let want_seq = Json::Num(e.seq as f64);
            prop_assert_eq!(entry.get("name"), Some(&want_name), "name survives escaping");
            prop_assert!(matches!(entry.get("ph"), Some(Json::Str(_))), "every entry has a phase");
            let args = entry.get("args").cloned().unwrap_or(Json::Null);
            prop_assert_eq!(args.get("scope"), Some(&want_scope), "scope survives escaping");
            prop_assert_eq!(args.get("seq"), Some(&want_seq));
        }
    }
}
