//! The exact-quantification contract, adversarially: a model compiled
//! under [`QuantMethod::BddExact`] must agree with the fta crate's
//! per-point BDD oracle ([`quant::Method::BddExact`]) to ≤ 1e-12
//! relative on random synthetic trees — AND/OR/k-of-n structures from
//! [`synth::random_tree`], INHIBIT wrappers, shared subtrees, opaque
//! closures including NaN poisoning — at random parameter points; and
//! the compiled tape must be **bit-identical** across thread counts
//! (1/4) and execution backends (scalar/SoA).

use proptest::prelude::*;
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::model::{Hazard, QuantMethod, SafetyModel};
use safety_opt_core::param::{ParamId, ParameterSpace};
use safety_opt_core::pprob::{complement, constant, exposure, from_fn, overtime, ProbExpr};
use safety_opt_core::ExecBackend;
use safety_opt_fta::bdd::TreeBdd;
use safety_opt_fta::modular::PlanInput;
use safety_opt_fta::quant::ProbabilityMap;
use safety_opt_fta::synth::{random_tree, RandomTreeConfig};
use safety_opt_fta::tree::FaultTree;
use safety_opt_stats::dist::TruncatedNormal;

const DIM: usize = 3;

/// One leaf-substitution recipe (applied per leaf index).
#[derive(Debug, Clone, Copy)]
enum LeafKind {
    Constant(f64),
    Exposure(f64, usize),
    Overtime(usize),
    ComplementExposure(f64, usize),
    /// Smooth closure into (0, 1); `poison` returns NaN for x0 > 35.
    Closure {
        coeff: f64,
        poison: bool,
    },
}

fn leaf_kind_strategy() -> impl Strategy<Value = LeafKind> {
    prop_oneof![
        (0.01f64..=0.99).prop_map(LeafKind::Constant),
        (0.001f64..1.0, 0usize..DIM).prop_map(|(r, i)| LeafKind::Exposure(r, i)),
        (0usize..DIM).prop_map(LeafKind::Overtime),
        (0.001f64..1.0, 0usize..DIM).prop_map(|(r, i)| LeafKind::ComplementExposure(r, i)),
        (0.1f64..2.0, any::<bool>())
            .prop_map(|(coeff, poison)| LeafKind::Closure { coeff, poison }),
    ]
}

fn make_expr(kind: LeafKind, leaf: usize) -> ProbExpr {
    match kind {
        LeafKind::Constant(p) => constant(p).unwrap(),
        LeafKind::Exposure(rate, i) => exposure(rate, ParamId::new(i)),
        LeafKind::Overtime(i) => overtime(
            TruncatedNormal::lower_bounded(8.0, 4.0, 0.0).unwrap(),
            ParamId::new(i),
        ),
        LeafKind::ComplementExposure(rate, i) => complement(exposure(rate, ParamId::new(i))),
        LeafKind::Closure { coeff, poison } => from_fn(format!("closure{leaf}"), move |v| {
            let x0 = v.get(ParamId::new(0)).unwrap_or(f64::NAN);
            let x1 = v.get(ParamId::new(1)).unwrap_or(f64::NAN);
            if poison && x0 > 35.0 {
                f64::NAN
            } else {
                0.5 + 0.45 * (coeff * (x0 + 0.5 * x1)).sin()
            }
        }),
    }
}

/// A generated tree + substitution: the random structure, an optional
/// INHIBIT wrapper (condition leaf over the whole tree), and per-leaf
/// expression kinds.
#[derive(Debug, Clone)]
struct TreeSpec {
    seed: u64,
    num_leaves: usize,
    num_gates: usize,
    max_inputs: usize,
    gate_reuse: f64,
    inhibit: bool,
    kinds: Vec<LeafKind>,
}

fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    (
        any::<u64>(),
        3usize..9,
        2usize..8,
        2usize..5,
        0.0f64..0.9,
        any::<bool>(),
        prop::collection::vec(leaf_kind_strategy(), 1..10),
    )
        .prop_map(
            |(seed, num_leaves, num_gates, max_inputs, gate_reuse, inhibit, kinds)| TreeSpec {
                seed,
                num_leaves,
                num_gates,
                max_inputs,
                gate_reuse,
                inhibit,
                kinds,
            },
        )
}

fn build_tree(spec: &TreeSpec) -> FaultTree {
    let mut ft = random_tree(
        RandomTreeConfig {
            num_leaves: spec.num_leaves,
            num_gates: spec.num_gates,
            max_inputs: spec.max_inputs,
            leaf_probability: 0.1,
            gate_reuse: spec.gate_reuse,
        },
        spec.seed,
    );
    if spec.inhibit {
        // Wrap the whole structure in an INHIBIT constraint — the
        // paper's Eq. 2 shape — with a fresh condition leaf.
        let root = ft.root().unwrap();
        let cond = ft.condition("constraint").unwrap();
        let top = ft.inhibit_gate("inhibited top", root, cond).unwrap();
        ft.set_root(top).unwrap();
    }
    ft
}

fn leaf_expr(spec: &TreeSpec, leaf: usize) -> ProbExpr {
    make_expr(spec.kinds[leaf % spec.kinds.len()], leaf)
}

fn space() -> ParameterSpace {
    let mut space = ParameterSpace::new();
    for d in 0..DIM {
        space.parameter(format!("p{d}"), 0.0, 40.0).unwrap();
    }
    space
}

fn points(seed: u64, n: usize) -> Vec<Vec<f64>> {
    // Deterministic quasi-random points over the domain, with a tail
    // planted in the closure-poison region (x0 > 35).
    (0..n)
        .map(|i| {
            let mix = |k: u64| {
                let mut z = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((i as u64) << 8)
                    .wrapping_add(k);
                z ^= z >> 30;
                z = z.wrapping_mul(0xbf58476d1ce4e5b9);
                z ^= z >> 27;
                (z >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut p: Vec<f64> = (0..DIM).map(|d| 40.0 * mix(d as u64)).collect();
            if i % 8 == 7 {
                p[0] = 36.0 + 3.0 * mix(99);
            }
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Compiled BDD-exact tape == per-point TreeBdd oracle, ≤ 1e-12 rel.
    #[test]
    fn compiled_exact_matches_bdd_oracle(
        spec in tree_spec_strategy(),
        pt_seed in any::<u64>(),
    ) {
        let ft = build_tree(&spec);
        let hazard = Hazard::from_fault_tree(&ft, |leaf| Ok(leaf_expr(&spec, leaf)))
            .map_err(|e| TestCaseError::fail(format!("hazard: {e}")))?;
        let exact = hazard.exact().expect("tree hazards capture their BDD").clone();
        let model = SafetyModel::new(space())
            .hazard(hazard, 1.0)
            .with_quant_method(QuantMethod::BddExact);
        let compiled = CompiledModel::compile(&model)
            .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?;
        let bdd = TreeBdd::build(&ft).unwrap();

        // Leaves the BDD actually references (a NaN elsewhere is
        // unobservable, exactly like the oracle).
        let mut used = vec![false; ft.leaves().len()];
        for m in exact.plan().modules() {
            for node in &m.plan().nodes {
                if let PlanInput::Leaf(leaf) = m.input(node.leaf) {
                    used[leaf] = true;
                }
            }
        }

        for x in points(pt_seed, 24) {
            let got = compiled.cost(&x).unwrap();
            let params = safety_opt_core::param::ParamValues::new(&x);
            let mut q = vec![0.0; ft.leaves().len()];
            let mut poisoned = false;
            for (leaf, slot) in q.iter_mut().enumerate() {
                if !used[leaf] {
                    continue;
                }
                match leaf_expr(&spec, leaf).eval(&params) {
                    Ok(v) => *slot = v,
                    Err(_) => poisoned = true,
                }
            }
            if poisoned {
                // A failing opaque factor must surface as NaN on the
                // compiled path (the oracle has no number to offer).
                prop_assert!(got.is_nan(), "poisoned point {x:?} gave {got}");
                continue;
            }
            let pm = ProbabilityMap::new(q).unwrap();
            let want = bdd.probability(&pm).unwrap();
            let scale = want.abs().max(1.0);
            prop_assert!(
                (got - want).abs() <= 1e-12 * scale,
                "at {x:?}: compiled {got} vs oracle {want}"
            );
            // The scalar interpreter's exact path obeys the same bound.
            let scalar = model.cost(&x).unwrap();
            prop_assert!(
                (scalar - want).abs() <= 1e-12 * scale,
                "scalar at {x:?}: {scalar} vs oracle {want}"
            );
        }
    }

    // Thread counts and execution backends never change a single bit.
    #[test]
    fn exact_tape_is_bit_identical_across_threads_and_backends(
        spec in tree_spec_strategy(),
        pt_seed in any::<u64>(),
    ) {
        let ft = build_tree(&spec);
        let make = || {
            let hazard = Hazard::from_fault_tree(&ft, |leaf| Ok(leaf_expr(&spec, leaf)))
                .expect("hazard builds");
            SafetyModel::new(space())
                .hazard(hazard, 1000.0)
                .with_quant_method(QuantMethod::BddExact)
        };
        // Odd point count: every lane width leaves a ragged tail.
        let pts = points(pt_seed, 61);
        let reference = CompiledModel::compile_with_threads(&make(), 1)
            .unwrap()
            .with_backend(ExecBackend::Scalar);
        let (ref_c, ref_h) = reference.cost_and_hazards_batch(&pts).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for threads in [1usize, 4] {
            for backend in [ExecBackend::Scalar, ExecBackend::Soa] {
                let compiled = CompiledModel::compile_with_threads(&make(), threads)
                    .unwrap()
                    .with_backend(backend);
                let (c, h) = compiled.cost_and_hazards_batch(&pts).unwrap();
                prop_assert_eq!(
                    bits(&c), bits(&ref_c),
                    "costs, {} threads, {:?}", threads, backend
                );
                prop_assert_eq!(
                    bits(&h), bits(&ref_h),
                    "hazards, {} threads, {:?}", threads, backend
                );
            }
        }
    }
}

/// Deterministic k-of-n and INHIBIT structures, pinned outside the
/// random sweep so shrinkage can never lose them.
#[test]
fn kofn_and_inhibit_trees_quantify_exactly() {
    // 2-of-3 vote over parameterized leaves under an INHIBIT condition.
    let mut ft = FaultTree::new("vote");
    let leaves: Vec<_> = (0..3)
        .map(|i| ft.basic_event(format!("e{i}")).unwrap())
        .collect();
    let vote = ft.k_of_n_gate("vote", 2, leaves).unwrap();
    let cond = ft.condition("armed").unwrap();
    let top = ft.inhibit_gate("top", vote, cond).unwrap();
    ft.set_root(top).unwrap();

    let t = ParamId::new(0);
    let hazard = Hazard::from_fault_tree(&ft, |leaf| {
        Ok(match leaf {
            0..=2 => exposure(0.05 * (leaf + 1) as f64, t),
            _ => constant(0.7).unwrap(),
        })
    })
    .unwrap();
    let model = SafetyModel::new(space())
        .hazard(hazard, 1.0)
        .with_quant_method(QuantMethod::BddExact);
    let compiled = CompiledModel::compile(&model).unwrap();
    let bdd = TreeBdd::build(&ft).unwrap();
    for x0 in [0.5, 3.0, 11.0, 27.0] {
        let x = [x0, 0.0, 0.0];
        let q: Vec<f64> = (0..3)
            .map(|i| 1.0 - (-0.05 * (i + 1) as f64 * x0).exp())
            .chain([0.7])
            .collect();
        let want = bdd.probability(&ProbabilityMap::new(q).unwrap()).unwrap();
        let got = compiled.cost(&x).unwrap();
        assert!(
            (got - want).abs() <= 1e-12 * want.max(1.0),
            "at t={x0}: {got} vs {want}"
        );
        // The exact binomial sanity check: P = q_armed · P(2-of-3).
        let p: Vec<f64> = (0..3)
            .map(|i| 1.0 - (-0.05 * (i + 1) as f64 * x0).exp())
            .collect();
        let two_of_three = p[0] * p[1] * (1.0 - p[2])
            + p[0] * (1.0 - p[1]) * p[2]
            + (1.0 - p[0]) * p[1] * p[2]
            + p[0] * p[1] * p[2];
        assert!((want - 0.7 * two_of_three).abs() < 1e-12);
    }
}
