//! Seed-determinism regression: `propagate` and
//! `optimize_under_uncertainty` must return **`PartialEq`-identical**
//! reports for the same seed across the fleet rewiring.
//!
//! The `propagate` literals below were pinned from the pre-fleet
//! sequential path (sample → compile each model alone → evaluate one at
//! a time) at the commit that introduced the fleet; the
//! `optimize_under_uncertainty` literals were re-pinned when the
//! per-sample optimizer switched from lockstep Nelder–Mead to lockstep
//! **gradient descent over analytic adjoint batches**, and are asserted
//! against a live sequential reference (compile each sampled model
//! alone, run the same gradient-descent restarts one at a time). The
//! fleet path — one shared-arena compilation per Monte-Carlo batch,
//! lockstep multi-start restarts — must reproduce both bit for bit, and
//! stay bit-identical for every engine thread count (CI runs this suite
//! under `SAFETY_OPT_THREADS=1` and `=4`).

use rand::rngs::StdRng;
use rand::Rng;
use safety_opt_core::model::{Hazard, SafetyModel};
use safety_opt_core::param::ParameterSpace;
use safety_opt_core::pprob::{constant, exposure, overtime};
use safety_opt_core::uncertainty::{optimize_under_uncertainty, propagate};
use safety_opt_core::Result;
use safety_opt_stats::dist::TruncatedNormal;
use safety_opt_stats::mc::RunningStats;

/// The golden workload: a tradeoff model with an uncertain high-vehicle
/// rate λ ∈ [0.1, 0.16] and an uncertain presence probability
/// p ∈ [0.4, 0.6]. Changing this sampler invalidates the pinned
/// literals below.
fn golden_sampler(rng: &mut StdRng) -> Result<SafetyModel> {
    let lambda = 0.1 + 0.06 * rng.gen::<f64>();
    let p_hv = 0.4 + 0.2 * rng.gen::<f64>();
    let mut space = ParameterSpace::new();
    let t = space.parameter("t", 5.0, 30.0)?;
    let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0)?;
    let col = Hazard::builder("col")
        .cut_set("ot", [overtime(transit, t)])
        .build();
    let alr = Hazard::builder("alr")
        .cut_set("hv", [constant(p_hv)?, exposure(lambda, t)])
        .build();
    Ok(SafetyModel::new(space)
        .hazard(col, 100_000.0)
        .hazard(alr, 1.0))
}

/// Exact-equality check of a running statistic against pinned bits.
#[track_caller]
fn assert_stat(stat: &RunningStats, count: u64, mean: f64, var: f64, min: f64, max: f64) {
    assert_eq!(stat.count(), count);
    assert_eq!(
        stat.mean().to_bits(),
        mean.to_bits(),
        "mean {}",
        stat.mean()
    );
    assert_eq!(
        stat.sample_variance().to_bits(),
        var.to_bits(),
        "variance {}",
        stat.sample_variance()
    );
    assert_eq!(stat.min().to_bits(), min.to_bits(), "min {}", stat.min());
    assert_eq!(stat.max().to_bits(), max.to_bits(), "max {}", stat.max());
}

#[test]
fn propagate_reproduces_the_pre_fleet_sequential_path() {
    let report = propagate(golden_sampler, &[14.5], 64, 2024).unwrap();
    assert_eq!(report.runs, 64);
    assert_eq!(report.point, vec![14.5]);
    assert_stat(
        &report.cost,
        64,
        0.4350498846738543,
        0.0029875414054472238,
        0.32896549144053594,
        0.5340303815077477,
    );
    assert_eq!(report.hazards.len(), 2);
    assert_stat(
        &report.hazards[0],
        64,
        7.782002090877192e-8,
        0.0,
        7.782002090877192e-8,
        7.782002090877192e-8,
    );
    assert_stat(
        &report.hazards[1],
        64,
        0.4272678825829771,
        0.0029875414054472238,
        0.32118348934965874,
        0.5262483794168705,
    );
}

#[test]
fn optimize_under_uncertainty_reproduces_a_sequential_gradient_descent_reference() {
    // Live reference: the exact pre-fleet per-sample loop — compile
    // each sampled model alone, run the same 4 gradient-descent
    // restarts sequentially over the uncached scalar objective (the
    // lockstep fleet path is also uncached), fold the same statistics.
    use rand::SeedableRng;
    use safety_opt_core::compile::CompiledModel;
    use safety_opt_optim::gradient::GradientDescent;
    use safety_opt_optim::multistart::MultiStart;
    use safety_opt_optim::Minimizer;

    let (runs, seed) = (12, 9);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arg_min = RunningStats::new();
    let mut min_cost = RunningStats::new();
    for _ in 0..runs {
        let model = golden_sampler(&mut rng).unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        let domain = model.space().domain().unwrap();
        let objective = compiled.objective(false);
        let outcome = MultiStart::new(GradientDescent::default(), 4)
            .minimize_differentiable(&objective, &domain)
            .unwrap();
        arg_min.push(outcome.best_x[0]);
        min_cost.push(outcome.best_value);
    }

    let dist = optimize_under_uncertainty(golden_sampler, runs, seed).unwrap();
    assert_eq!(dist.runs, 12);
    assert_eq!(dist.failures, 0);
    assert_eq!(dist.arg_min.len(), 1);
    assert_eq!(
        dist.arg_min[0], arg_min,
        "arg-min stats must be bit-identical"
    );
    assert_eq!(
        dist.min_cost, min_cost,
        "min-cost stats must be bit-identical"
    );

    // Pinned literals on top of the live reference, so a drift in *both*
    // paths at once (e.g. an engine kernel change) still trips CI.
    assert_stat(
        &dist.arg_min[0],
        12,
        14.81464969579529,
        0.0038705380142200346,
        14.699265137314796,
        14.93986576795578,
    );
    assert_stat(
        &dist.min_cost,
        12,
        0.4269711244262155,
        0.003350047074130327,
        0.33881533445235756,
        0.5024796277095301,
    );
}

#[test]
fn fleet_path_equals_a_live_per_model_sequential_reference() {
    // Belt and braces beyond the pinned literals: recompute `propagate`
    // with the exact pre-fleet loop (sample, compile each model alone,
    // evaluate one point) and demand PartialEq identity.
    use rand::SeedableRng;
    use safety_opt_core::compile::CompiledModel;

    let (point, runs, seed) = (vec![11.25], 40, 7);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = RunningStats::new();
    let mut hazards: Vec<RunningStats> = Vec::new();
    for _ in 0..runs {
        let model = golden_sampler(&mut rng).unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        let (costs, flat) = compiled
            .cost_and_hazards_batch(std::slice::from_ref(&point))
            .unwrap();
        if hazards.is_empty() {
            hazards = vec![RunningStats::new(); flat.len()];
        }
        for (stat, p) in hazards.iter_mut().zip(&flat) {
            stat.push(*p);
        }
        cost.push(costs[0]);
    }

    let report = propagate(golden_sampler, &point, runs, seed).unwrap();
    assert_eq!(report.cost, cost);
    assert_eq!(report.hazards, hazards);
}

#[test]
fn reports_stay_seed_deterministic_across_repeats() {
    let a = propagate(golden_sampler, &[14.5], 32, 5).unwrap();
    let b = propagate(golden_sampler, &[14.5], 32, 5).unwrap();
    assert_eq!(a, b);
    let c = optimize_under_uncertainty(golden_sampler, 6, 5).unwrap();
    let d = optimize_under_uncertainty(golden_sampler, 6, 5).unwrap();
    assert_eq!(c.arg_min, d.arg_min);
    assert_eq!(c.min_cost, d.min_cost);
}
