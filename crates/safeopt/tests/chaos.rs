//! Adversarial chaos suite — the robustness contract, end to end.
//!
//! Every failpoint site fires in turn (`safety_opt_engine::faultinject`),
//! across both execution backends, thread counts 1 and 4, and both the
//! standalone and fleet compilation paths, and the suite asserts the
//! three-part contract:
//!
//! 1. only **typed errors** escape the fallible entry points — worker
//!    panics are isolated into [`EngineError::WorkerPanicked`],
//!    compile-path sites return [`EngineError::FaultInjected`] wrapped
//!    in the owning crate's error type;
//! 2. no shared state is poisoned — tapes, fleets, memo caches, and the
//!    chunked pool all stay fully usable after a fault;
//! 3. a retry after disarming is **0-ULP bit-identical** to a run that
//!    never faulted.
//!
//! Failpoint state is process-global, so every test serializes on one
//! mutex; this is why these tests live in their own integration binary
//! instead of the concurrently-running unit suites.

use safety_opt_core::compile::CompiledModel;
use safety_opt_core::fleet::CompiledFleet;
use safety_opt_core::model::{Hazard, QuantMethod, SafetyModel};
use safety_opt_core::param::ParameterSpace;
use safety_opt_core::pprob::{complement, constant, exposure, overtime};
use safety_opt_core::uncertainty::optimize_under_uncertainty;
use safety_opt_core::{Result, SafeOptError};
use safety_opt_engine::faultinject::{self, sites, Trigger};
use safety_opt_engine::{
    set_degrade_mode, CompileBudget, DegradeMode, EngineError, EvalDeadline, ExecBackend,
};
use safety_opt_stats::dist::TruncatedNormal;
use safety_opt_telemetry as telemetry;
use std::sync::{Mutex, MutexGuard, Once, PoisonError};
use std::time::Duration;

/// Serializes every chaos test (failpoints and the degradation mode are
/// process-global) and silences the panic hook for the suite's own
/// injected panics so the output stays readable.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.contains("fault injected"));
            if !injected {
                default_hook(info);
            }
        }));
    });
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The Elbtunnel-shaped two-hazard model the equivalence suites use.
fn model() -> SafetyModel {
    let mut space = ParameterSpace::new();
    let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
    let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
    let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
    let collision = Hazard::builder("collision")
        .residual("rest", 1e-8)
        .cut_set("ot1", [constant(1e-3).unwrap(), overtime(transit, t1)])
        .cut_set(
            "ot2",
            [
                constant(1e-3).unwrap(),
                complement(overtime(transit, t1)),
                overtime(transit, t2),
            ],
        )
        .build();
    let alarm = Hazard::builder("alarm")
        .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t2)])
        .build();
    SafetyModel::new(space)
        .hazard(collision, 100_000.0)
        .hazard(alarm, 1.0)
}

/// A small family sharing the collision subtree, for the fleet paths.
fn family(n: usize) -> Vec<SafetyModel> {
    (0..n)
        .map(|k| {
            let mut space = ParameterSpace::new();
            let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
            let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
            let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
            let collision = Hazard::builder("collision")
                .cut_set("ot", [constant(1e-3).unwrap(), overtime(transit, t1)])
                .build();
            let alarm = Hazard::builder("alarm")
                .cut_set(
                    "hv",
                    [
                        constant(0.5).unwrap(),
                        exposure(0.10 + 0.005 * k as f64, t2),
                    ],
                )
                .build();
            SafetyModel::new(space)
                .hazard(collision, 100_000.0)
                .hazard(alarm, 1.0)
        })
        .collect()
}

/// Enough points for several pool chunks at every thread count.
fn points() -> Vec<Vec<f64>> {
    (0..300)
        .map(|i| {
            let t = 5.0 + (i as f64) * 25.0 / 299.0;
            vec![t, 35.0 - t]
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts `err` is an isolated worker panic whose payload names `site`.
fn assert_worker_panicked(err: &SafeOptError, site: &str) {
    match err {
        SafeOptError::Engine(EngineError::WorkerPanicked { payload, .. }) => {
            assert!(
                payload.contains(site),
                "payload {payload:?} does not name site {site:?}"
            );
        }
        other => panic!("expected WorkerPanicked({site}), got {other:?}"),
    }
}

#[test]
fn evaluation_sites_fail_typed_across_backends_threads_and_paths() {
    let _guard = chaos_lock();
    let pts = points();
    let models = family(3);

    for backend in [ExecBackend::Scalar, ExecBackend::Soa] {
        for threads in [1usize, 4] {
            let compiled = CompiledModel::compile_with_threads(&model(), threads)
                .unwrap()
                .with_backend(backend);
            let fleet = CompiledFleet::compile_with_threads(&models, threads)
                .unwrap()
                .with_backend(backend);
            let base_costs = compiled.try_cost_batch(&pts, None).unwrap();
            let base_grads = compiled.try_gradient_batch(&pts, None).unwrap();
            let base_all = fleet.try_costs_all(&pts, None).unwrap();
            let base_mg = fleet.try_model_gradient_batch(1, &pts, None).unwrap();

            // Forward pool chunks (standalone path).
            faultinject::arm(sites::POOL_CHUNK, Trigger::Prob { p: 1.0, seed: 0 });
            let err = compiled.try_cost_batch(&pts, None).unwrap_err();
            assert_worker_panicked(&err, sites::POOL_CHUNK);
            faultinject::disarm(sites::POOL_CHUNK);

            // Adjoint-sweep chunks (standalone path).
            faultinject::arm(sites::GRAD_CHUNK, Trigger::Prob { p: 1.0, seed: 0 });
            let err = compiled.try_gradient_batch(&pts, None).unwrap_err();
            assert_worker_panicked(&err, sites::GRAD_CHUNK);
            faultinject::disarm(sites::GRAD_CHUNK);

            // Fleet-evaluation chunks (forward and masked adjoint).
            faultinject::arm(sites::FLEET_CHUNK, Trigger::Prob { p: 1.0, seed: 0 });
            let err = fleet.try_costs_all(&pts, None).unwrap_err();
            assert_worker_panicked(&err, sites::FLEET_CHUNK);
            let err = fleet.try_model_gradient_batch(1, &pts, None).unwrap_err();
            assert_worker_panicked(&err, sites::FLEET_CHUNK);
            faultinject::disarm(sites::FLEET_CHUNK);

            // Nothing was poisoned: the disarmed retry is bit-identical
            // to the never-faulted baseline on every path, and the
            // infallible entry points work too.
            let retry = compiled.try_cost_batch(&pts, None).unwrap();
            assert_eq!(bits(&retry), bits(&base_costs), "{backend:?}/{threads}");
            let (rv, rg) = compiled.try_gradient_batch(&pts, None).unwrap();
            assert_eq!(bits(&rv), bits(&base_grads.0), "{backend:?}/{threads}");
            assert_eq!(bits(&rg), bits(&base_grads.1), "{backend:?}/{threads}");
            let all = fleet.try_costs_all(&pts, None).unwrap();
            assert_eq!(bits(&all), bits(&base_all), "{backend:?}/{threads}");
            let (mv, mg) = fleet.try_model_gradient_batch(1, &pts, None).unwrap();
            assert_eq!(bits(&mv), bits(&base_mg.0), "{backend:?}/{threads}");
            assert_eq!(bits(&mg), bits(&base_mg.1), "{backend:?}/{threads}");
            assert_eq!(
                bits(&compiled.cost_batch(&pts).unwrap()),
                bits(&base_costs),
                "infallible path after faults, {backend:?}/{threads}"
            );
        }
    }
}

#[test]
fn compile_sites_fail_typed_and_recompilation_is_unaffected() {
    let _guard = chaos_lock();
    let baseline = CompiledModel::compile_with_threads(&model(), 1).unwrap();
    let x = [14.0, 17.0];

    // Hazard lowering onto the tape: typed, all-or-nothing.
    faultinject::arm(sites::TAPE_COMPILE, Trigger::Nth(1));
    match CompiledModel::compile(&model()) {
        Err(SafeOptError::Engine(EngineError::FaultInjected { site })) => {
            assert_eq!(site, sites::TAPE_COMPILE);
        }
        other => panic!("expected FaultInjected(tape.compile), got {other:?}"),
    }
    faultinject::disarm(sites::TAPE_COMPILE);
    let retry = CompiledModel::compile_with_threads(&model(), 1).unwrap();
    assert_eq!(
        retry.cost(&x).unwrap().to_bits(),
        baseline.cost(&x).unwrap().to_bits()
    );

    // BDD construction in the fta crate: typed through the Fta wrapper.
    let tree = || {
        let mut ft = safety_opt_fta::tree::FaultTree::new("shared");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let g = ft.and_gate("g", [a, b]).unwrap();
        ft.set_root(g).unwrap();
        ft
    };
    let mut space = ParameterSpace::new();
    let t = space.parameter("t", 0.1, 10.0).unwrap();
    let leaves = move |leaf: usize| -> Result<_> {
        Ok(if leaf == 0 {
            exposure(0.2, t)
        } else {
            constant(0.25).unwrap()
        })
    };
    faultinject::arm(sites::BDD_APPLY, Trigger::Nth(1));
    match Hazard::from_fault_tree(&tree(), leaves) {
        Err(SafeOptError::Fta(safety_opt_fta::FtaError::FaultInjected { site })) => {
            assert_eq!(site, sites::BDD_APPLY);
        }
        other => panic!(
            "expected Fta(FaultInjected(bdd.apply)), got {:?}",
            other.map(|_| ())
        ),
    }
    faultinject::disarm(sites::BDD_APPLY);
    Hazard::from_fault_tree(&tree(), leaves).unwrap();

    // One model's lowering into a fleet build: all-or-nothing on
    // `compile`, rolled back per slot on `compile_partial`.
    let models = family(3);
    faultinject::arm(sites::FLEET_BUILD, Trigger::Nth(2));
    match CompiledFleet::compile(&models) {
        Err(SafeOptError::Engine(EngineError::FaultInjected { site })) => {
            assert_eq!(site, sites::FLEET_BUILD);
        }
        other => panic!("expected FaultInjected(fleet.build), got {other:?}"),
    }
    faultinject::arm(sites::FLEET_BUILD, Trigger::Nth(2));
    let (fleet, slots) = CompiledFleet::compile_partial(&models, 1);
    let fleet = fleet.expect("two models survive");
    assert_eq!(fleet.n_models(), 2);
    assert!(matches!(
        slots[1],
        Err(SafeOptError::Engine(EngineError::FaultInjected { .. }))
    ));
    faultinject::disarm(sites::FLEET_BUILD);
    // The surviving models are bit-identical to standalone compiles.
    for (model, slot) in [(&models[0], 0usize), (&models[2], 1)] {
        let standalone = CompiledModel::compile_with_threads(model, 1).unwrap();
        let fc = fleet.model_cost_batch(slot, &[x.to_vec()]).unwrap();
        assert_eq!(fc[0].to_bits(), standalone.cost(&x).unwrap().to_bits());
    }
}

#[test]
fn cache_memo_panic_never_poisons_the_objective_memo() {
    use safety_opt_optim::Objective as _;
    let _guard = chaos_lock();
    let compiled = CompiledModel::compile_with_threads(&model(), 1).unwrap();
    let obj = compiled.objective(true);
    let x = [19.0, 15.6];
    faultinject::arm(sites::CACHE_MEMO, Trigger::Nth(1));
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| obj.eval(&x)));
    assert!(
        panicked.is_err(),
        "armed cache.memo must panic under the lock"
    );
    faultinject::disarm(sites::CACHE_MEMO);
    // The cache recovered from the poisoned lock: the faulted insert is
    // a plain miss, recomputed bit-identically and cached from then on.
    let expected = compiled.cost(&x).unwrap();
    assert_eq!(obj.eval(&x).to_bits(), expected.to_bits());
    assert_eq!(obj.eval(&x).to_bits(), expected.to_bits());
    let stats = obj.cache_stats();
    assert_eq!(stats.hits, 1, "second post-fault eval must hit the cache");
}

#[test]
fn bdd_node_budget_degrades_to_rare_event_lowering_when_enabled() {
    let _guard = chaos_lock();
    // Shared-event tree where rare-event and exact genuinely differ.
    let mut ft = safety_opt_fta::tree::FaultTree::new("shared");
    let a = ft.basic_event("a").unwrap();
    let b = ft.basic_event("b").unwrap();
    let c = ft.basic_event("c").unwrap();
    let g1 = ft.and_gate("g1", [a, b]).unwrap();
    let g2 = ft.and_gate("g2", [a, c]).unwrap();
    let top = ft.or_gate("top", [g1, g2]).unwrap();
    ft.set_root(top).unwrap();
    let build = || {
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.1, 10.0).unwrap();
        let hazard = Hazard::from_fault_tree(&ft, |leaf| {
            Ok(match leaf {
                0 => exposure(0.2, t),
                1 => constant(0.4).unwrap(),
                _ => constant(0.25).unwrap(),
            })
        })
        .unwrap();
        SafetyModel::new(space).hazard(hazard, 1000.0)
    };
    let exact_model = build().with_quant_method(QuantMethod::BddExact);
    let budget = CompileBudget::default().with_max_bdd_nodes(0);
    let x = [3.0];

    // Off (the default): all-or-nothing typed error.
    set_degrade_mode(DegradeMode::Off);
    match CompiledModel::try_compile(&exact_model, budget) {
        Err(SafeOptError::Engine(EngineError::BudgetExceeded { what, .. })) => {
            assert_eq!(what, "BDD nodes");
        }
        other => panic!("expected BudgetExceeded(BDD nodes), got {other:?}"),
    }

    // Fallback: compiles, counts the degradation, and the degraded
    // hazard is bit-identical to an explicit rare-event compile.
    telemetry::set_mode(telemetry::TelemetryMode::Counters);
    set_degrade_mode(DegradeMode::Fallback);
    let before = telemetry::snapshot()
        .counter("safeopt.degrade.fallback")
        .unwrap_or(0);
    let degraded = CompiledModel::try_compile(&exact_model, budget).unwrap();
    let after = telemetry::snapshot()
        .counter("safeopt.degrade.fallback")
        .unwrap_or(0);
    assert_eq!(after, before + 1, "degradation must be counted");
    let rare =
        CompiledModel::compile_with_threads(&build().with_quant_method(QuantMethod::RareEvent), 1)
            .unwrap();
    assert_eq!(
        degraded.cost(&x).unwrap().to_bits(),
        rare.cost(&x).unwrap().to_bits(),
        "degraded hazard must equal the rare-event lowering exactly"
    );
    // And it genuinely degraded: the unbudgeted exact compile differs
    // (shared event `a` makes rare-event over-count).
    let exact = CompiledModel::compile(&exact_model).unwrap();
    assert_ne!(
        exact.cost(&x).unwrap().to_bits(),
        degraded.cost(&x).unwrap().to_bits()
    );
    set_degrade_mode(DegradeMode::Off);
    telemetry::set_mode(telemetry::TelemetryMode::Off);
}

#[test]
fn ops_budget_is_all_or_nothing() {
    let _guard = chaos_lock();
    match CompiledModel::try_compile(&model(), CompileBudget::default().with_max_ops(1)) {
        Err(SafeOptError::Engine(EngineError::BudgetExceeded { what, limit, .. })) => {
            assert_eq!(what, "tape ops");
            assert_eq!(limit, 1);
        }
        other => panic!("expected BudgetExceeded(tape ops), got {other:?}"),
    }
    // An unlimited retry is unaffected.
    CompiledModel::try_compile(&model(), CompileBudget::UNLIMITED).unwrap();
}

#[test]
fn expired_deadlines_are_typed_on_every_batch_path() {
    let _guard = chaos_lock();
    let pts = points();
    let compiled = CompiledModel::compile_with_threads(&model(), 2).unwrap();
    let fleet = CompiledFleet::compile_with_threads(&family(2), 2).unwrap();
    let expired = EvalDeadline::after(Duration::ZERO);
    for err in [
        compiled.try_cost_batch(&pts, Some(&expired)).unwrap_err(),
        compiled
            .try_cost_and_hazards_batch(&pts, Some(&expired))
            .unwrap_err(),
        compiled
            .try_gradient_batch(&pts, Some(&expired))
            .unwrap_err(),
        fleet.try_costs_all(&pts, Some(&expired)).unwrap_err(),
        fleet
            .try_model_cost_batch(0, &pts, Some(&expired))
            .unwrap_err(),
        fleet
            .try_model_gradient_batch(0, &pts, Some(&expired))
            .unwrap_err(),
    ] {
        assert!(
            matches!(
                err,
                SafeOptError::Engine(EngineError::DeadlineExceeded { .. })
            ),
            "got {err:?}"
        );
    }
    // A generous deadline evaluates normally, bit-identical to none.
    let generous = EvalDeadline::after(Duration::from_secs(3600));
    assert_eq!(
        bits(&compiled.try_cost_batch(&pts, Some(&generous)).unwrap()),
        bits(&compiled.try_cost_batch(&pts, None).unwrap())
    );
}

#[test]
fn mid_fleet_compile_fault_counts_as_an_uncertainty_failure() {
    let _guard = chaos_lock();
    let sampler = |rng: &mut rand::rngs::StdRng| -> Result<SafetyModel> {
        use rand::Rng as _;
        let lambda = 0.1 + 0.06 * rng.gen::<f64>();
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 5.0, 30.0)?;
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0)?;
        let col = Hazard::builder("col")
            .cut_set("ot", [overtime(transit, t)])
            .build();
        let alr = Hazard::builder("alr")
            .cut_set("hv", [constant(0.5)?, exposure(lambda, t)])
            .build();
        Ok(SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0))
    };
    // The second sample's fleet lowering faults: it is counted as a
    // failure, the other four samples aggregate normally.
    faultinject::arm(sites::FLEET_BUILD, Trigger::Nth(2));
    let dist = optimize_under_uncertainty(sampler, 5, 3).unwrap();
    faultinject::disarm(sites::FLEET_BUILD);
    assert_eq!(dist.runs, 5);
    assert_eq!(dist.failures, 1);
    assert_eq!(dist.min_cost.count(), 4);
    // A clean rerun recovers all five samples.
    let clean = optimize_under_uncertainty(sampler, 5, 3).unwrap();
    assert_eq!(clean.failures, 0);
    assert_eq!(clean.min_cost.count(), 5);
}
