//! The engine's equivalence contract: compiled + parallel batch
//! evaluation matches the scalar `pprob` interpreter to within 1e-12
//! across randomly generated safety models and parameter points, and
//! batch results are bit-identical for every thread count.

use proptest::prelude::*;
use safety_opt_core::compile::CompiledModel;
use safety_opt_core::model::{Hazard, SafetyModel};
use safety_opt_core::param::{ParamId, ParameterSpace};
use safety_opt_core::pprob::{
    complement, constant, exposure, overtime, product, scaled, sum, ProbExpr,
};
use safety_opt_stats::dist::TruncatedNormal;

const DIM: usize = 3;

/// Random probability expressions over three parameters, mirroring every
/// constructor the model layer offers (including the clamped sum and
/// nested products the Elbtunnel model uses).
fn expr_strategy() -> impl Strategy<Value = ProbExpr> {
    let leaf = prop_oneof![
        (0.0f64..=1.0).prop_map(|p| constant(p).unwrap()),
        (0.001f64..2.0, 0usize..DIM).prop_map(|(rate, idx)| exposure(rate, ParamId::new(idx))),
        ((0.5f64..20.0, 0.1f64..5.0), 0usize..DIM).prop_map(|((mu, sigma), idx)| {
            overtime(
                TruncatedNormal::lower_bounded(mu, sigma, 0.0).unwrap(),
                ParamId::new(idx),
            )
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(complement),
            prop::collection::vec(inner.clone(), 1..4).prop_map(product),
            prop::collection::vec(inner.clone(), 1..4).prop_map(sum),
            (0.0f64..=1.0, inner).prop_map(|(c, e)| scaled(c, e).unwrap()),
        ]
    })
}

fn model_strategy() -> impl Strategy<Value = SafetyModel> {
    prop::collection::vec(
        (
            prop::collection::vec(prop::collection::vec(expr_strategy(), 1..4), 1..4),
            0.0f64..1e6,
        ),
        1..4,
    )
    .prop_map(|hazards| {
        let mut space = ParameterSpace::new();
        for d in 0..DIM {
            space.parameter(format!("p{d}"), 0.0, 40.0).unwrap();
        }
        let mut model = SafetyModel::new(space);
        for (h, (cut_sets, cost)) in hazards.into_iter().enumerate() {
            let mut builder = Hazard::builder(format!("h{h}"));
            for (c, factors) in cut_sets.into_iter().enumerate() {
                builder = builder.cut_set(format!("cs{c}"), factors);
            }
            model = model.hazard(builder.build(), cost);
        }
        model
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Compiled scalar evaluation == interpreter, within 1e-12.
    #[test]
    fn compiled_matches_scalar_interpreter(
        model in model_strategy(),
        x0 in 0.0f64..40.0,
        x1 in 0.0f64..40.0,
        x2 in 0.0f64..40.0,
    ) {
        let compiled = CompiledModel::compile(&model)
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        let x = [x0, x1, x2];
        let scalar_cost = model
            .cost(&x)
            .map_err(|e| TestCaseError::fail(format!("scalar eval failed: {e}")))?;
        let fast_cost = compiled
            .cost(&x)
            .map_err(|e| TestCaseError::fail(format!("compiled eval failed: {e}")))?;
        // Costs scale with the weights; compare at 1e-12 relative to the
        // weight scale (probabilities themselves match absolutely).
        let scale = model.costs().iter().sum::<f64>().max(1.0);
        prop_assert!(
            (scalar_cost - fast_cost).abs() <= 1e-12 * scale,
            "cost mismatch at {x:?}: scalar {scalar_cost} vs compiled {fast_cost}"
        );
        let scalar_probs = model.hazard_probabilities(&x).unwrap();
        let (_, flat) = compiled.cost_and_hazards_batch(&[x.to_vec()]).unwrap();
        for (h, (s, f)) in scalar_probs.iter().zip(&flat).enumerate() {
            prop_assert!(
                (s - f).abs() <= 1e-12,
                "hazard {h} mismatch at {x:?}: scalar {s} vs compiled {f}"
            );
        }
    }

    // Parallel batches reproduce the compiled scalar path bitwise, for
    // every thread count.
    #[test]
    fn batches_are_thread_count_independent(
        model in model_strategy(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> = (0..257)
            .map(|_| (0..DIM).map(|_| rng.gen::<f64>() * 40.0).collect())
            .collect();
        let reference = CompiledModel::compile_with_threads(&model, 1)
            .map_err(|e| TestCaseError::fail(format!("compile failed: {e}")))?;
        let ref_costs = reference.cost_batch(&points).unwrap();
        // Batch values equal the compiled scalar values exactly.
        for (p, &v) in points.iter().zip(&ref_costs) {
            let single = reference.cost(p).unwrap();
            prop_assert!(
                single == v || (single.is_nan() && v.is_nan()),
                "batch vs scalar compiled mismatch"
            );
        }
        for threads in [2usize, 3, 5, 8] {
            let compiled = CompiledModel::compile_with_threads(&model, threads).unwrap();
            let costs = compiled.cost_batch(&points).unwrap();
            let (costs2, hazards2) = compiled.cost_and_hazards_batch(&points).unwrap();
            let (ref_c2, ref_h2) = reference.cost_and_hazards_batch(&points).unwrap();
            for i in 0..points.len() {
                let same = costs[i] == ref_costs[i]
                    || (costs[i].is_nan() && ref_costs[i].is_nan());
                prop_assert!(same, "threads = {threads}: cost diverged at point {i}");
                let same2 = costs2[i] == ref_c2[i]
                    || (costs2[i].is_nan() && ref_c2[i].is_nan());
                prop_assert!(same2, "threads = {threads}: cost+hazards diverged at {i}");
            }
            prop_assert!(
                hazards2.iter().zip(&ref_h2).all(|(a, b)| a == b
                    || (a.is_nan() && b.is_nan())),
                "threads = {threads}: hazard rows diverged"
            );
        }
    }
}

/// The full Elbtunnel case study compiles without closure fallbacks and
/// matches the interpreter over a dense grid — the concrete model the
/// throughput benchmark measures.
#[test]
fn elbtunnel_model_compiles_exactly() {
    use safety_opt_elbtunnel::analytic::ElbtunnelModel;
    let model = ElbtunnelModel::paper().build().unwrap();
    let compiled = CompiledModel::compile(&model).unwrap();
    let mut worst = 0.0f64;
    let mut t1 = 5.0;
    while t1 <= 30.0 {
        let mut t2 = 5.0;
        while t2 <= 30.0 {
            let x = [t1, t2];
            let scalar = model.cost(&x).unwrap();
            let fast = compiled.cost(&x).unwrap();
            worst = worst.max((scalar - fast).abs());
            t2 += 0.37;
        }
        t1 += 0.37;
    }
    assert!(worst <= 1e-12, "worst Elbtunnel deviation {worst:e}");
}
