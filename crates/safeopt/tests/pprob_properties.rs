//! Property tests for parameterized probability expressions: arbitrary
//! compositions must stay inside `[0, 1]` for every in-domain parameter
//! point, and the model layer must preserve that invariant up to the cost
//! function.

use proptest::prelude::*;
use safety_opt_core::model::{Hazard, SafetyModel};
use safety_opt_core::param::{ParamId, ParamValues, ParameterSpace};
use safety_opt_core::pprob::{complement, constant, exposure, overtime, product, scaled, ProbExpr};
use safety_opt_stats::dist::TruncatedNormal;

/// A recursive strategy for random probability expressions over two
/// parameters.
fn expr_strategy() -> impl Strategy<Value = ProbExpr> {
    let leaf = prop_oneof![
        (0.0f64..=1.0).prop_map(|p| constant(p).unwrap()),
        (0.001f64..2.0, 0usize..2).prop_map(|(rate, idx)| exposure(rate, ParamId::new(idx))),
        ((0.1f64..20.0, 0.1f64..5.0), 0usize..2).prop_map(|((mu, sigma), idx)| {
            overtime(
                TruncatedNormal::lower_bounded(mu, sigma, 0.0).unwrap(),
                ParamId::new(idx),
            )
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(complement),
            prop::collection::vec(inner.clone(), 1..4).prop_map(product),
            (0.0f64..=1.0, inner).prop_map(|(c, e)| scaled(c, e).unwrap()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expressions_always_yield_probabilities(
        expr in expr_strategy(),
        x0 in 0.0f64..50.0,
        x1 in 0.0f64..50.0,
    ) {
        let values = [x0, x1];
        let p = expr
            .eval(&ParamValues::new(&values))
            .map_err(|e| TestCaseError::fail(format!("eval failed: {e}")))?;
        prop_assert!((0.0..=1.0).contains(&p), "{} -> {p}", expr.describe());
    }

    #[test]
    fn describe_never_panics_and_is_nonempty(expr in expr_strategy()) {
        prop_assert!(!expr.describe().is_empty());
    }

    #[test]
    fn hazards_and_costs_stay_finite(
        exprs in prop::collection::vec(expr_strategy(), 1..4),
        cost in 0.0f64..1e6,
        x0 in 5.0f64..30.0,
        x1 in 5.0f64..30.0,
    ) {
        let mut space = ParameterSpace::new();
        space.parameter("a", 5.0, 30.0).unwrap();
        space.parameter("b", 5.0, 30.0).unwrap();
        let mut builder = Hazard::builder("h");
        for (i, e) in exprs.into_iter().enumerate() {
            builder = builder.cut_set(format!("cs{i}"), [e]);
        }
        let model = SafetyModel::new(space).hazard(builder.build(), cost);
        let probs = model
            .hazard_probabilities(&[x0, x1])
            .map_err(|e| TestCaseError::fail(format!("eval failed: {e}")))?;
        prop_assert!((0.0..=1.0).contains(&probs[0]));
        let c = model
            .cost(&[x0, x1])
            .map_err(|e| TestCaseError::fail(format!("cost failed: {e}")))?;
        prop_assert!(c.is_finite() && c >= 0.0);
        prop_assert!(c <= cost + 1e-9, "cost {c} exceeds weight {cost}");
    }

    #[test]
    fn exposure_is_monotone_in_the_window(
        rate in 0.001f64..2.0,
        t_small in 0.0f64..40.0,
        dt in 0.0f64..40.0,
    ) {
        let e = exposure(rate, ParamId::new(0));
        let small = e.eval(&ParamValues::new(&[t_small])).unwrap();
        let large = e.eval(&ParamValues::new(&[t_small + dt])).unwrap();
        prop_assert!(large + 1e-12 >= small);
    }

    #[test]
    fn overtime_is_antitone_in_the_runtime(
        mu in 0.5f64..20.0,
        sigma in 0.1f64..5.0,
        t_small in 0.0f64..40.0,
        dt in 0.0f64..40.0,
    ) {
        let d = TruncatedNormal::lower_bounded(mu, sigma, 0.0).unwrap();
        let e = overtime(d, ParamId::new(0));
        let early = e.eval(&ParamValues::new(&[t_small])).unwrap();
        let late = e.eval(&ParamValues::new(&[t_small + dt])).unwrap();
        prop_assert!(late <= early + 1e-12);
    }
}
