//! Parameterized probability expressions.
//!
//! The paper's Sect. II-D.2: *"we not only use constant failure
//! probabilities for primary failures, but allow parameterized
//! probabilities … `P(PF): Domain(X) → [0, 1]`"*. A [`ProbExpr`] is such a
//! function — a small expression tree evaluated at a parameter point.
//! Constraint probabilities (Sect. II-D.1) are the same machinery attached
//! to INHIBIT conditions; products of expressions implement Eq. 2's
//! `P(Constraints) · ∏ P(PF)` automatically.
//!
//! Constructors:
//!
//! * [`constant`] — a fixed probability (classic quantitative FTA).
//! * [`from_fn`] — an arbitrary closure of the parameters.
//! * [`overtime`] — `P(X > T)`: the tail of a transit-time distribution
//!   at a timer runtime parameter; the paper's `P(OT)(T)`.
//! * [`exposure`] — `1 − e^{−λT}`: probability a Poisson process with
//!   rate `λ` fires within an activation window `T`; the paper's
//!   `P(FD_LBpost)(T1)` and `P(HV_ODfinal)(T2)` shapes.
//! * [`complement`] — `1 − p(X)`.
//! * [`product`] — `∏ pᵢ(X)`.
//! * [`scaled`] — `c · p(X)` for mixture weights.
//!
//! All evaluation is validated: an expression producing a value outside
//! `[0, 1]` (or NaN) yields [`SafeOptError::InvalidProbability`] naming
//! the offending expression, instead of silently corrupting the analysis.

use crate::param::{ParamId, ParamValues};
use crate::{Result, SafeOptError};
use safety_opt_stats::dist::{ContinuousDistribution, Exponential, TruncatedNormal};
use std::sync::Arc;

/// A parameterized probability: `P : X → [0, 1]`.
///
/// Cheap to clone (shared expression tree).
#[derive(Debug, Clone)]
pub struct ProbExpr {
    node: Arc<Node>,
}

enum Node {
    Constant(f64),
    Closure {
        label: String,
        f: Box<dyn Fn(&ParamValues<'_>) -> f64 + Send + Sync>,
    },
    Overtime {
        dist: TruncatedNormal,
        param: ParamId,
    },
    Exposure {
        rate: f64,
        param: ParamId,
    },
    Complement(ProbExpr),
    Product(Vec<ProbExpr>),
    Scaled(f64, ProbExpr),
    Sum(Vec<ProbExpr>),
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Constant(p) => write!(f, "Constant({p})"),
            Node::Closure { label, .. } => write!(f, "Closure({label:?})"),
            Node::Overtime { dist, param } => {
                write!(f, "Overtime({dist:?}, #{})", param.index())
            }
            Node::Exposure { rate, param } => {
                write!(f, "Exposure(λ={rate}, #{})", param.index())
            }
            Node::Complement(e) => write!(f, "Complement({e:?})"),
            Node::Product(es) => write!(f, "Product({es:?})"),
            Node::Scaled(c, e) => write!(f, "Scaled({c}, {e:?})"),
            Node::Sum(es) => write!(f, "Sum({es:?})"),
        }
    }
}

/// A constant probability.
///
/// # Errors
///
/// [`SafeOptError::InvalidProbability`] unless `p ∈ [0, 1]`.
///
/// ```
/// use safety_opt_core::pprob::constant;
/// use safety_opt_core::param::ParamValues;
///
/// let p = constant(0.25)?;
/// assert_eq!(p.eval(&ParamValues::new(&[]))?, 0.25);
/// # Ok::<(), safety_opt_core::SafeOptError>(())
/// ```
pub fn constant(p: f64) -> Result<ProbExpr> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SafeOptError::InvalidProbability {
            expression: "constant".to_string(),
            value: p,
        });
    }
    Ok(ProbExpr {
        node: Arc::new(Node::Constant(p)),
    })
}

/// An arbitrary probability function of the parameters. `label` is used in
/// error messages and reports.
pub fn from_fn(
    label: impl Into<String>,
    f: impl Fn(&ParamValues<'_>) -> f64 + Send + Sync + 'static,
) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Closure {
            label: label.into(),
            f: Box::new(f),
        }),
    }
}

/// Overtime probability `P(X > T)`: the survival function of the
/// transit-time distribution `dist`, evaluated at the current value of
/// parameter `param`. The paper's `P(OT₁)(T₁)` / `P(OT₂)(T₂)`.
pub fn overtime(dist: TruncatedNormal, param: ParamId) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Overtime { dist, param }),
    }
}

/// Exposure probability `1 − e^{−λT}`: at least one arrival of a Poisson
/// process with `rate` λ during an activation window of length the
/// current value of `param`. Negative window values clamp to 0.
pub fn exposure(rate: f64, param: ParamId) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Exposure { rate, param }),
    }
}

/// Complement `1 − p(X)`.
pub fn complement(p: ProbExpr) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Complement(p)),
    }
}

/// Product `∏ pᵢ(X)` — the AND-combination of independent probabilities,
/// and the way constraint probabilities multiply into cut sets (Eq. 2).
pub fn product(factors: impl IntoIterator<Item = ProbExpr>) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Product(factors.into_iter().collect())),
    }
}

/// Clamped sum `min(Σ pᵢ(X), 1)` — the union-bound combination of
/// alarm/failure sources. Together with [`scaled`] and [`complement`]
/// this expresses the paper's mixture constructions like
/// `P(OHV) + (1 − P(OHV)) · P(FDpre) · P(FDpost)(T1)` *structurally*
/// instead of hiding them in an opaque [`from_fn`] closure — which keeps
/// them analyzable (and compilable) by the evaluation engine.
pub fn sum(terms: impl IntoIterator<Item = ProbExpr>) -> ProbExpr {
    ProbExpr {
        node: Arc::new(Node::Sum(terms.into_iter().collect())),
    }
}

/// Scaled probability `c · p(X)` (for mixture terms like the paper's
/// `P(OHV) + (1 − P(OHV)) · …` constructions).
///
/// # Errors
///
/// [`SafeOptError::InvalidProbability`] unless `c ∈ [0, 1]`.
pub fn scaled(c: f64, p: ProbExpr) -> Result<ProbExpr> {
    if !(0.0..=1.0).contains(&c) {
        return Err(SafeOptError::InvalidProbability {
            expression: "scale factor".to_string(),
            value: c,
        });
    }
    Ok(ProbExpr {
        node: Arc::new(Node::Scaled(c, p)),
    })
}

impl ProbExpr {
    /// Evaluates the expression at a parameter point.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::UnknownParameter`] if the point is too short for a
    /// referenced parameter, and [`SafeOptError::InvalidProbability`] if
    /// any sub-expression leaves `[0, 1]`.
    pub fn eval(&self, params: &ParamValues<'_>) -> Result<f64> {
        let v = match &*self.node {
            Node::Constant(p) => *p,
            Node::Closure { label, f } => {
                let v = f(params);
                if !(0.0..=1.0).contains(&v) {
                    return Err(SafeOptError::InvalidProbability {
                        expression: label.clone(),
                        value: v,
                    });
                }
                v
            }
            Node::Overtime { dist, param } => dist.sf(params.get(*param)?),
            Node::Exposure { rate, param } => {
                let t = params.get(*param)?.max(0.0);
                -(-rate * t).exp_m1()
            }
            Node::Complement(p) => 1.0 - p.eval(params)?,
            Node::Product(factors) => {
                let mut acc = 1.0;
                for p in factors {
                    acc *= p.eval(params)?;
                }
                acc
            }
            Node::Scaled(c, p) => c * p.eval(params)?,
            Node::Sum(terms) => {
                let mut acc = 0.0;
                for p in terms {
                    acc += p.eval(params)?;
                }
                acc.min(1.0)
            }
        };
        // Guard against accumulated floating error pushing us outside.
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "probability {v}");
        Ok(v.clamp(0.0, 1.0))
    }

    /// Short structural description, for reports.
    pub fn describe(&self) -> String {
        match &*self.node {
            Node::Constant(p) => format!("{p:.3e}"),
            Node::Closure { label, .. } => label.clone(),
            Node::Overtime { param, .. } => format!("P(X > x{})", param.index()),
            Node::Exposure { rate, param } => {
                format!("1-exp(-{rate}·x{})", param.index())
            }
            Node::Complement(p) => format!("1-({})", p.describe()),
            Node::Product(ps) => ps
                .iter()
                .map(|p| p.describe())
                .collect::<Vec<_>>()
                .join(" · "),
            Node::Scaled(c, p) => format!("{c:.3e}·({})", p.describe()),
            Node::Sum(terms) => format!(
                "min({}, 1)",
                terms
                    .iter()
                    .map(|p| p.describe())
                    .collect::<Vec<_>>()
                    .join(" + ")
            ),
        }
    }

    /// Stable identity of the shared expression node (clones of one
    /// expression report the same id). Used by the compiler to lower
    /// shared subtrees once.
    pub fn node_id(&self) -> usize {
        Arc::as_ptr(&self.node) as *const () as usize
    }

    /// A structural view of the top node, for tree walkers such as the
    /// evaluation-engine lowering pass. Closure nodes are opaque: walkers
    /// fall back to [`eval`](Self::eval) for those.
    pub fn structure(&self) -> ExprStructure<'_> {
        match &*self.node {
            Node::Constant(p) => ExprStructure::Constant(*p),
            Node::Closure { label, .. } => ExprStructure::Closure { label },
            Node::Overtime { dist, param } => ExprStructure::Overtime {
                dist,
                param: *param,
            },
            Node::Exposure { rate, param } => ExprStructure::Exposure {
                rate: *rate,
                param: *param,
            },
            Node::Complement(p) => ExprStructure::Complement(p),
            Node::Product(ps) => ExprStructure::Product(ps),
            Node::Scaled(c, p) => ExprStructure::Scaled(*c, p),
            Node::Sum(ps) => ExprStructure::Sum(ps),
        }
    }
}

/// Borrowed structural view of a [`ProbExpr`] node (see
/// [`ProbExpr::structure`]).
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum ExprStructure<'a> {
    /// A fixed probability.
    Constant(f64),
    /// An opaque closure; evaluate through [`ProbExpr::eval`].
    Closure {
        /// The closure's report label.
        label: &'a str,
    },
    /// Survival `P(X > x_param)` of a transit-time distribution.
    Overtime {
        /// The transit-time distribution.
        dist: &'a TruncatedNormal,
        /// Parameter holding the evaluation point.
        param: ParamId,
    },
    /// Poisson exposure `1 − e^{−rate · x_param}`.
    Exposure {
        /// Arrival rate λ.
        rate: f64,
        /// Parameter holding the window length.
        param: ParamId,
    },
    /// `1 − p`.
    Complement(&'a ProbExpr),
    /// `∏ pᵢ`.
    Product(&'a [ProbExpr]),
    /// `c · p`.
    Scaled(f64, &'a ProbExpr),
    /// `min(Σ pᵢ, 1)`.
    Sum(&'a [ProbExpr]),
}

/// Exposure expression from an [`Exponential`] arrival-interval
/// distribution (`rate = 1 / mean interval`): convenience for models that
/// carry the distribution rather than the raw rate.
pub fn exposure_from(dist: &Exponential, param: ParamId) -> ProbExpr {
    exposure(dist.rate(), param)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamId;

    fn vals(v: &[f64]) -> ParamValues<'_> {
        ParamValues::new(v)
    }

    #[test]
    fn constant_validation_and_eval() {
        assert!(constant(1.5).is_err());
        assert!(constant(-0.1).is_err());
        assert!(constant(f64::NAN).is_err());
        let p = constant(0.125).unwrap();
        assert_eq!(p.eval(&vals(&[])).unwrap(), 0.125);
    }

    #[test]
    fn overtime_matches_survival_function() {
        let dist = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let t = ParamId(0);
        let p = overtime(dist, t);
        let at_10 = p.eval(&vals(&[10.0])).unwrap();
        let at_19 = p.eval(&vals(&[19.0])).unwrap();
        assert!((at_10 - dist.sf(10.0)).abs() < 1e-15);
        assert!(at_19 < at_10);
        assert!(at_19 > 0.0);
    }

    #[test]
    fn exposure_shape() {
        let t = ParamId(0);
        let p = exposure(0.13, t);
        assert_eq!(p.eval(&vals(&[0.0])).unwrap(), 0.0);
        let at_15 = p.eval(&vals(&[15.6])).unwrap();
        assert!((at_15 - (1.0 - (-0.13f64 * 15.6).exp())).abs() < 1e-15);
        // Negative window clamps to zero exposure.
        assert_eq!(p.eval(&vals(&[-3.0])).unwrap(), 0.0);
    }

    #[test]
    fn complement_product_scaled_compose() {
        let a = constant(0.5).unwrap();
        let b = constant(0.2).unwrap();
        let p = product([complement(a), b]);
        assert!((p.eval(&vals(&[])).unwrap() - 0.1).abs() < 1e-15);
        let s = scaled(0.5, p).unwrap();
        assert!((s.eval(&vals(&[])).unwrap() - 0.05).abs() < 1e-15);
        assert!(scaled(2.0, constant(0.1).unwrap()).is_err());
    }

    #[test]
    fn closure_with_validation() {
        let t = ParamId(0);
        let good = from_fn("linear", move |v| v.get(t).unwrap_or(0.0) / 100.0);
        assert!((good.eval(&vals(&[50.0])).unwrap() - 0.5).abs() < 1e-15);
        let bad = from_fn("broken", |_| 2.0);
        match bad.eval(&vals(&[])) {
            Err(SafeOptError::InvalidProbability { expression, value }) => {
                assert_eq!(expression, "broken");
                assert_eq!(value, 2.0);
            }
            other => panic!("expected InvalidProbability, got {other:?}"),
        }
    }

    #[test]
    fn missing_parameter_is_reported() {
        let p = exposure(0.1, ParamId(3));
        assert!(matches!(
            p.eval(&vals(&[1.0])),
            Err(SafeOptError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn paper_constraint_probability_shape() {
        // Pconstraint1 = P(OHV) + (1−P(OHV))·P(FDpre)·P(FDpost)(T1)
        let t1 = ParamId(0);
        let p_ohv = 1e-3;
        let fd_pre = constant(1e-4).unwrap();
        let fd_post = exposure(1e-4, t1);
        let spurious = scaled(1.0 - p_ohv, product([fd_pre, fd_post])).unwrap();
        let constraint = from_fn("constraint1", {
            let spurious = spurious.clone();
            move |v| p_ohv + spurious.eval(v).unwrap_or(0.0)
        });
        let at_30 = constraint.eval(&vals(&[30.0])).unwrap();
        assert!(at_30 > p_ohv);
        assert!(at_30 < p_ohv + 1e-6);
    }

    #[test]
    fn describe_is_informative() {
        let t = ParamId(1);
        let e = product([constant(0.5).unwrap(), exposure(0.13, t)]);
        let d = e.describe();
        assert!(d.contains("0.13"));
        assert!(d.contains("x1"));
    }

    #[test]
    fn clones_share_structure() {
        let p = constant(0.5).unwrap();
        let q = p.clone();
        assert_eq!(p.eval(&vals(&[])).unwrap(), q.eval(&vals(&[])).unwrap());
    }
}
