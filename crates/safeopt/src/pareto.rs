//! Pareto analysis of opposed hazards.
//!
//! The paper opens with the observation that safety is "a tradeoff
//! between different undesired events" — collision risk versus false
//! alarms can not both be minimized. The weighted cost function resolves
//! that trade-off with one number (the cost ratio); the Pareto front
//! *shows* it instead: every configuration on the front is optimal for
//! *some* cost ratio. Exposing the front lets safety engineers sanity-
//! check the chosen weights ("is a collision really worth 100 000 false
//! alarms — and would the answer move the optimum?").

use crate::compile::CompiledModel;
use crate::model::SafetyModel;
use crate::Result;
use safety_opt_optim::domain::BoxDomain;

/// One configuration with its hazard probabilities.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoPoint {
    /// Parameter values.
    pub x: Vec<f64>,
    /// Hazard probabilities (model order).
    pub objectives: Vec<f64>,
}

impl ParetoPoint {
    /// `true` if `self` dominates `other`: no objective is worse and at
    /// least one is strictly better.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let mut strictly_better = false;
        for (a, b) in self.objectives.iter().zip(&other.objectives) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// The Pareto-efficient configurations found by a grid sweep.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParetoFront {
    /// Non-dominated points, sorted by the first objective.
    pub points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// Sweeps the model's domain with `points_per_dim` grid lines and
    /// keeps the non-dominated configurations (hazard probabilities as
    /// objectives, all minimized).
    ///
    /// # Errors
    ///
    /// Model-evaluation and domain errors.
    pub fn compute(model: &SafetyModel, points_per_dim: usize) -> Result<Self> {
        model.validate()?;
        let domain: BoxDomain = model.space().domain()?;
        // Batch path: enumerate the lattice in slabs and evaluate hazard
        // vectors through the compiled parallel engine.
        let compiled = CompiledModel::compile(model)?;
        let n = points_per_dim.max(2);
        let dim = domain.dim();
        let total = n.pow(dim as u32);
        let n_hazards = model.hazards().len();
        const BATCH: usize = 8192;
        let lattice_point = |mut index: usize| -> Vec<f64> {
            let mut x = Vec::with_capacity(dim);
            for iv in domain.intervals() {
                let k = index % n;
                index /= n;
                x.push(iv.lerp(k as f64 / (n - 1) as f64));
            }
            x
        };
        let mut candidates = Vec::with_capacity(total);
        let mut start = 0;
        while start < total {
            let end = (start + BATCH).min(total);
            let slab: Vec<Vec<f64>> = (start..end).map(lattice_point).collect();
            let (_, hazards) = compiled.cost_and_hazards_batch(&slab)?;
            for (i, x) in slab.into_iter().enumerate() {
                let row = &hazards[i * n_hazards..(i + 1) * n_hazards];
                let objectives = if row.iter().all(|v| v.is_finite()) {
                    row.to_vec()
                } else {
                    // Resolve closure failures to the scalar path's error.
                    model.hazard_probabilities(&x)?
                };
                candidates.push(ParetoPoint { x, objectives });
            }
            start = end;
        }
        let mut front: Vec<ParetoPoint> = Vec::new();
        'outer: for c in candidates {
            let mut i = 0;
            while i < front.len() {
                if front[i].dominates(&c) || front[i].objectives == c.objectives {
                    continue 'outer;
                }
                if c.dominates(&front[i]) {
                    front.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            front.push(c);
        }
        front.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap());
        Ok(Self { points: front })
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the front is empty (cannot happen for valid models).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The front point minimizing the weighted sum with the given cost
    /// weights — by construction this matches the cost-function optimum
    /// up to grid resolution.
    pub fn best_for_weights(&self, weights: &[f64]) -> Option<&ParetoPoint> {
        self.points.iter().min_by(|a, b| {
            let ca: f64 = a.objectives.iter().zip(weights).map(|(o, w)| o * w).sum();
            let cb: f64 = b.objectives.iter().zip(weights).map(|(o, w)| o * w).sum();
            ca.partial_cmp(&cb).unwrap()
        })
    }

    /// CSV export: parameters then objectives per row.
    pub fn to_csv(&self, model: &SafetyModel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let params: Vec<&str> = model.space().iter().map(|(_, p)| p.name()).collect();
        let hazards: Vec<&str> = model.hazards().iter().map(|h| h.name()).collect();
        let _ = writeln!(out, "{},{}", params.join(","), hazards.join(","));
        for p in &self.points {
            let xs: Vec<String> = p.x.iter().map(|v| v.to_string()).collect();
            let os: Vec<String> = p.objectives.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{},{}", xs.join(","), os.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_stats::dist::TruncatedNormal;

    fn opposed_model() -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let col = Hazard::builder("col")
            .cut_set("ot", [overtime(transit, t)])
            .build();
        let alr = Hazard::builder("alr")
            .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t)])
            .build();
        SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0)
    }

    #[test]
    fn dominance_semantics() {
        let a = ParetoPoint {
            x: vec![0.0],
            objectives: vec![0.1, 0.2],
        };
        let b = ParetoPoint {
            x: vec![1.0],
            objectives: vec![0.2, 0.3],
        };
        let c = ParetoPoint {
            x: vec![2.0],
            objectives: vec![0.05, 0.4],
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a)); // incomparable
        assert!(!a.dominates(&a));
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let model = opposed_model();
        let front = ParetoFront::compute(&model, 101).unwrap();
        assert!(front.len() > 5, "front has {} points", front.len());
        for (i, a) in front.points.iter().enumerate() {
            for (j, b) in front.points.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "front point dominates another");
                }
            }
        }
    }

    #[test]
    fn front_is_monotone_tradeoff_curve() {
        // Sorted by collision risk, alarm risk must decrease.
        let model = opposed_model();
        let front = ParetoFront::compute(&model, 101).unwrap();
        for w in front.points.windows(2) {
            assert!(w[0].objectives[0] <= w[1].objectives[0]);
            assert!(w[0].objectives[1] >= w[1].objectives[1] - 1e-15);
        }
    }

    #[test]
    fn weighted_best_matches_cost_optimum() {
        let model = opposed_model();
        let front = ParetoFront::compute(&model, 201).unwrap();
        let best = front.best_for_weights(&[100_000.0, 1.0]).unwrap();
        let direct = crate::optimize::SafetyOptimizer::new(&model).run().unwrap();
        let dt = (best.x[0] - direct.point().values()[0]).abs();
        assert!(
            dt < 0.5,
            "front best {} vs optimizer {}",
            best.x[0],
            direct.point().values()[0]
        );
    }

    #[test]
    fn csv_export_shape() {
        let model = opposed_model();
        let front = ParetoFront::compute(&model, 21).unwrap();
        let csv = front.to_csv(&model);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "t,col,alr");
        assert_eq!(lines.count(), front.len());
    }
}
