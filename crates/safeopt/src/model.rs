//! Safety models: hazards as parameterized minimal cut sets, plus costs.
//!
//! A [`Hazard`] holds the minimal cut sets of one top event, each cut set
//! being a *product of parameterized probability factors* — primary
//! failures and constraint probabilities alike (paper Eq. 2). A
//! [`SafetyModel`] combines several hazards over one
//! [`crate::param::ParameterSpace`] and attaches the cost
//! weight of each hazard, yielding the cost function of Eqs. 5–6.
//!
//! Hazards can be written down directly (as the paper's Sect. IV-B does
//! after FTA identified the cut sets) or derived from an explicit
//! [`FaultTree`] via [`Hazard::from_fault_tree`], which runs the cut-set
//! engine and substitutes a [`ProbExpr`] per leaf. Tree-derived hazards
//! additionally capture the tree's **BDD Shannon decomposition**, so a
//! model can be quantified either with the paper's Eq. 1 rare-event sum
//! ([`QuantMethod::RareEvent`]) or **exactly**
//! ([`QuantMethod::BddExact`]) — the same selector the compiled engine
//! path honours.

use crate::param::{ParamValues, ParameterSpace};
use crate::pprob::{ExprStructure, ProbExpr};
use crate::{Result, SafeOptError};
use safety_opt_fta::bdd::{ShannonRef, TreeBdd};
use safety_opt_fta::modular::{ModularPlan, PlanInput};
use safety_opt_fta::preprocess::{
    preprocess_enabled, preprocess_with_constants, PreprocessOutcome,
};
use safety_opt_fta::tree::FaultTree;
use std::sync::Arc;

/// How hazard probabilities are quantified, both by the scalar
/// interpreter ([`SafetyModel::hazard_probabilities`]) and by the
/// compiled engine path ([`crate::compile::CompiledModel`]).
///
/// The model-level default comes from [`default_quant_method`]
/// (`SAFETY_OPT_QUANT` when set, [`RareEvent`](Self::RareEvent)
/// otherwise); override per model with
/// [`SafetyModel::with_quant_method`]. [`BddExact`](Self::BddExact)
/// applies to hazards that carry an exact structure (built by
/// [`Hazard::from_fault_tree`]); hand-written cut-set hazards have no
/// structure function to decompose and always quantify as rare-event
/// sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum QuantMethod {
    /// Paper Eq. 1/3: `P(H) = min(Σ_MCS ∏ P(PF), 1)` — over-estimates
    /// coherent trees.
    RareEvent,
    /// Exact Shannon decomposition of the hazard's BDD: each node
    /// evaluates `q·P(hi) + (1−q)·P(lo)` — no rare-event error, no
    /// clamp needed.
    BddExact,
}

/// The process-wide default [`QuantMethod`]: the `SAFETY_OPT_QUANT`
/// environment variable when set (`"rare-event"` or `"bdd-exact"`,
/// case-insensitive, `_` accepted for `-`),
/// [`QuantMethod::RareEvent`] otherwise. Read **once per process**,
/// mirroring `SAFETY_OPT_BACKEND`/`SAFETY_OPT_THREADS`: the override
/// exists so CI can force the whole suite through the exact
/// quantification path without touching call sites.
///
/// # Panics
///
/// Panics if `SAFETY_OPT_QUANT` names neither method — a forced
/// quantification exists precisely to pin which semantics run, and a
/// typo silently falling back to rare-event would be undetectable in
/// models without shared events.
pub fn default_quant_method() -> QuantMethod {
    static DEFAULT: std::sync::OnceLock<QuantMethod> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_quant_override(std::env::var("SAFETY_OPT_QUANT").ok().as_deref())
            .unwrap_or(QuantMethod::RareEvent)
    })
}

/// Parses a `SAFETY_OPT_QUANT` override: `None`/empty means "unset".
fn parse_quant_override(value: Option<&str>) -> Option<QuantMethod> {
    safety_opt_engine::env::parse_choice(
        "SAFETY_OPT_QUANT",
        value,
        &[
            ("rare-event", QuantMethod::RareEvent),
            ("bdd-exact", QuantMethod::BddExact),
        ],
        "unset it to use the rare-event default",
    )
}

/// The exact (BDD) structure of a tree-derived hazard: the modular
/// Shannon decomposition (one BDD per independent module, composed over
/// the original tree's leaf slots) plus the substituted probability
/// expression and name per leaf. Captured by [`Hazard::from_fault_tree`];
/// consumed by the scalar exact interpreter, the engine lowering
/// ([`crate::compile`]/[`crate::fleet`]), and the point-importance API
/// ([`crate::importance`]).
#[derive(Debug)]
pub struct ExactHazard {
    pub(crate) plan: ModularPlan,
    /// Per leaf index: the substituted expression (`None` for leaves the
    /// minimal cut sets never reach).
    pub(crate) leaf_exprs: Vec<Option<ProbExpr>>,
    /// Per leaf index: the tree's leaf name.
    pub(crate) leaf_names: Vec<String>,
    /// Lazily compiled leaf tape of [`plan`](Self::plan), shared across
    /// every consumer of this hazard (the `Arc<ExactHazard>` is cloned
    /// into [`crate::compile::CompiledModel`]), so repeated importance
    /// sweeps pay one compilation instead of one per
    /// [`crate::importance::ImportanceReport::at_point`] call.
    leaf_tape: std::sync::OnceLock<safety_opt_engine::Tape>,
}

/// Leaf-tape cache reuse (a call found the tape already compiled).
static LEAF_TAPE_CACHE_HITS: safety_opt_telemetry::Counter =
    safety_opt_telemetry::Counter::new("core.importance.leaf_tape_cache_hit");
/// Leaf-tape compilations (first call per hazard).
static LEAF_TAPE_COMPILES: safety_opt_telemetry::Counter =
    safety_opt_telemetry::Counter::new("core.importance.leaf_tape_compile");

impl ExactHazard {
    /// The exported modular Shannon decomposition.
    pub fn plan(&self) -> &ModularPlan {
        &self.plan
    }

    /// The substituted expression of leaf `leaf`, if the leaf is used.
    pub fn leaf_expr(&self, leaf: usize) -> Option<&ProbExpr> {
        self.leaf_exprs.get(leaf).and_then(Option::as_ref)
    }

    /// The tree name of leaf `leaf`.
    pub fn leaf_name(&self, leaf: usize) -> &str {
        &self.leaf_names[leaf]
    }

    /// The plan's compiled leaf tape (inputs = leaf probabilities),
    /// compiled on first use and cached for the lifetime of the hazard.
    /// Cache hits and compilations are counted in telemetry
    /// (`core.importance.leaf_tape_cache_hit` / `…_compile`).
    pub fn leaf_tape(&self) -> &safety_opt_engine::Tape {
        let mut compiled = false;
        let tape = self.leaf_tape.get_or_init(|| {
            compiled = true;
            self.plan.leaf_tape()
        });
        if compiled {
            LEAF_TAPE_COMPILES.add(1);
        } else {
            LEAF_TAPE_CACHE_HITS.add(1);
        }
        tape
    }

    /// Exact hazard probability at a parameter point: evaluates each
    /// BDD leaf's expression once, then folds each module's Shannon
    /// nodes bottom-up, substituting already-folded child-module tops
    /// where the plan references them — the scalar twin of the compiled
    /// `MulAdd` lowering and of [`TreeBdd::probability`]'s float
    /// sequence.
    pub(crate) fn probability(&self, params: &ParamValues<'_>) -> Result<f64> {
        let mut leaf_vals: Vec<Option<f64>> = vec![None; self.leaf_exprs.len()];
        let mut roots: Vec<f64> = Vec::with_capacity(self.plan.modules().len());
        for m in self.plan.modules() {
            let mut values: Vec<f64> = Vec::with_capacity(m.plan().nodes.len());
            for node in &m.plan().nodes {
                let q = match m.input(node.leaf) {
                    PlanInput::Module(j) => roots[j],
                    PlanInput::Leaf(leaf) => match leaf_vals[leaf] {
                        Some(q) => q,
                        None => {
                            let expr = self.leaf_exprs[leaf]
                                .as_ref()
                                .expect("BDD leaves have substituted expressions");
                            let q = expr.eval(params)?;
                            leaf_vals[leaf] = Some(q);
                            q
                        }
                    },
                };
                let hi = shannon_value(node.high, &values);
                let lo = shannon_value(node.low, &values);
                values.push(q * hi + (1.0 - q) * lo);
            }
            roots.push(shannon_value(m.plan().root, &values));
        }
        Ok(*roots.last().expect("a plan has at least one module"))
    }
}

/// Resolves a Shannon cofactor against already-folded node values.
fn shannon_value(r: ShannonRef, values: &[f64]) -> f64 {
    match r {
        ShannonRef::False => 0.0,
        ShannonRef::True => 1.0,
        ShannonRef::Node(i) => values[i],
    }
}

/// One parameterized (minimal) cut set: the hazard fires if all factors
/// "happen"; its probability is the product of the factor probabilities.
#[derive(Debug, Clone)]
pub struct ModelCutSet {
    name: String,
    factors: Vec<ProbExpr>,
}

impl ModelCutSet {
    /// Creates a cut set from its factors.
    pub fn new(name: impl Into<String>, factors: impl IntoIterator<Item = ProbExpr>) -> Self {
        Self {
            name: name.into(),
            factors: factors.into_iter().collect(),
        }
    }

    /// The cut set's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The probability factors.
    pub fn factors(&self) -> &[ProbExpr] {
        &self.factors
    }

    /// Evaluates `∏ factors` at a parameter point.
    ///
    /// # Errors
    ///
    /// Propagates factor-evaluation errors.
    pub fn probability(&self, params: &ParamValues<'_>) -> Result<f64> {
        let mut p = 1.0;
        for f in &self.factors {
            p *= f.eval(params)?;
        }
        Ok(p)
    }
}

/// A hazard: a named top event with its parameterized minimal cut sets.
///
/// The hazard probability is the paper's Eq. 3 rare-event sum
/// `P(H)(X) = Σ_MCS P(MCS)(X)` (clamped to 1).
#[derive(Debug, Clone)]
pub struct Hazard {
    name: String,
    cut_sets: Vec<ModelCutSet>,
    /// Shannon decomposition of the tree the hazard came from (absent
    /// for hand-written cut-set hazards).
    exact: Option<Arc<ExactHazard>>,
}

impl Hazard {
    /// Starts building a hazard.
    pub fn builder(name: impl Into<String>) -> HazardBuilder {
        HazardBuilder {
            name: name.into(),
            cut_sets: Vec::new(),
        }
    }

    /// The hazard's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameterized cut sets.
    pub fn cut_sets(&self) -> &[ModelCutSet] {
        &self.cut_sets
    }

    /// The hazard's exact (BDD) structure, if it was built from a fault
    /// tree.
    pub fn exact(&self) -> Option<&Arc<ExactHazard>> {
        self.exact.as_ref()
    }

    /// Hazard probability at a parameter point (Eq. 3 / rare-event sum,
    /// clamped into `[0, 1]` — an exotic user closure could in principle
    /// drive the sum negative, and the guard must mirror the upper
    /// clamp; `f64::clamp` propagates NaN untouched, like the compiled
    /// `SumClamp` kernel, whose lowering documents the same two-sided
    /// contract).
    ///
    /// # Errors
    ///
    /// Propagates factor-evaluation errors.
    pub fn probability(&self, params: &ParamValues<'_>) -> Result<f64> {
        let mut sum = 0.0;
        for cs in &self.cut_sets {
            sum += cs.probability(params)?;
        }
        Ok(sum.clamp(0.0, 1.0))
    }

    /// Hazard probability under an explicit quantification method.
    /// [`QuantMethod::BddExact`] uses the captured Shannon decomposition
    /// when present and falls back to the rare-event sum otherwise (a
    /// hand-written hazard has no structure function).
    ///
    /// # Errors
    ///
    /// Propagates factor-evaluation errors.
    pub fn probability_with(&self, params: &ParamValues<'_>, method: QuantMethod) -> Result<f64> {
        match (method, &self.exact) {
            (QuantMethod::BddExact, Some(exact)) => exact.probability(params),
            _ => self.probability(params),
        }
    }

    /// Builds a hazard from a fault tree: runs the minimal-cut-set engine
    /// and substitutes `leaf_expr(leaf_index)` for every leaf — the
    /// *"all instances of failure probabilities are substituted with the
    /// according function"* step of Sect. II-D.2. `leaf_expr` is invoked
    /// **once per reachable leaf** (repeated cut-set occurrences share
    /// the same expression node, maximizing downstream hash-consing).
    ///
    /// The tree's reduced ordered BDD is captured alongside the cut
    /// sets, so the hazard can also be quantified **exactly** — select
    /// with [`SafetyModel::with_quant_method`]
    /// ([`QuantMethod::BddExact`]).
    ///
    /// # Errors
    ///
    /// Fault-tree errors (no root, budget), or whatever `leaf_expr`
    /// returns as `Err` for a leaf it cannot map.
    pub fn from_fault_tree(
        tree: &FaultTree,
        mut leaf_expr: impl FnMut(usize) -> Result<ProbExpr>,
    ) -> Result<Self> {
        let mcs = safety_opt_fta::mcs::bottom_up(tree)?;
        let mut leaf_exprs: Vec<Option<ProbExpr>> = vec![None; tree.leaves().len()];
        for leaf in tree.reachable_leaves()? {
            leaf_exprs[leaf] = Some(leaf_expr(leaf)?);
        }
        let mut cut_sets = Vec::with_capacity(mcs.len());
        for cs in mcs.iter() {
            let mut factors = Vec::with_capacity(cs.order());
            for leaf in cs.iter() {
                factors.push(
                    leaf_exprs[leaf]
                        .clone()
                        .expect("cut-set leaves are reachable"),
                );
            }
            let names = cs.names(tree).join(" & ");
            cut_sets.push(ModelCutSet::new(names, factors));
        }
        // The exact structure goes through the preprocessing pipeline
        // (constant propagation, normalization, coalescing, module
        // detection) unless `SAFETY_OPT_PREPROCESS=off`; the cut sets
        // above always come from the raw tree so the rare-event path is
        // byte-for-byte unaffected by the rewrite. Leaves whose
        // substituted expression is literally 0 or 1 are folded as
        // house events.
        let plan = if preprocess_enabled() {
            let oracle = |leaf: usize| {
                leaf_exprs[leaf]
                    .as_ref()
                    .and_then(|expr| match expr.structure() {
                        ExprStructure::Constant(v) => {
                            if v == 0.0 {
                                Some(false)
                            } else if v == 1.0 {
                                Some(true)
                            } else {
                                None
                            }
                        }
                        _ => None,
                    })
            };
            match preprocess_with_constants(tree, oracle)?.outcome {
                PreprocessOutcome::Tree(reduced) => ModularPlan::build(&reduced)?,
                PreprocessOutcome::Constant(value) => {
                    ModularPlan::constant(value, tree.leaves().len())
                }
            }
        } else {
            ModularPlan::from_single(TreeBdd::build(tree)?.shannon_plan())
        };
        let leaf_names = tree
            .leaves()
            .iter()
            .map(|&id| tree.node(id).name().to_owned())
            .collect();
        Ok(Self {
            name: tree.name().to_owned(),
            cut_sets,
            exact: Some(Arc::new(ExactHazard {
                plan,
                leaf_exprs,
                leaf_names,
                leaf_tape: std::sync::OnceLock::new(),
            })),
        })
    }
}

/// Builder for [`Hazard`].
#[derive(Debug)]
pub struct HazardBuilder {
    name: String,
    cut_sets: Vec<ModelCutSet>,
}

impl HazardBuilder {
    /// Adds a cut set given its probability factors.
    pub fn cut_set(
        mut self,
        name: impl Into<String>,
        factors: impl IntoIterator<Item = ProbExpr>,
    ) -> Self {
        self.cut_sets.push(ModelCutSet::new(name, factors));
        self
    }

    /// Adds a constant residual term — the paper's `P_const` buckets that
    /// accumulate the cut sets not modelled in detail.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`; residuals are literals supplied
    /// by the model author, so this is a programming error, not input.
    pub fn residual(self, name: impl Into<String>, p: f64) -> Self {
        let c = crate::pprob::constant(p).expect("residual probability must be in [0, 1]");
        self.cut_set(name, [c])
    }

    /// Finalizes the hazard.
    pub fn build(self) -> Hazard {
        Hazard {
            name: self.name,
            cut_sets: self.cut_sets,
            exact: None,
        }
    }
}

/// A complete safety model: hazards with cost weights over one parameter
/// space. Implements the paper's cost function (Eq. 6)
/// `f_cost(X) = Σ Cost_i · P(Hᵢ)(X)`.
#[derive(Debug, Clone)]
pub struct SafetyModel {
    space: Arc<ParameterSpace>,
    hazards: Vec<Hazard>,
    costs: Vec<f64>,
    quant: QuantMethod,
}

impl SafetyModel {
    /// Creates an empty model over `space`, quantified with
    /// [`default_quant_method`].
    pub fn new(space: ParameterSpace) -> Self {
        Self {
            space: Arc::new(space),
            hazards: Vec::new(),
            costs: Vec::new(),
            quant: default_quant_method(),
        }
    }

    /// Selects how the model's hazards are quantified — by the scalar
    /// interpreter *and* by every compiled path
    /// ([`crate::compile::CompiledModel`], [`crate::fleet::CompiledFleet`],
    /// and the analysis front-ends built on them).
    pub fn with_quant_method(mut self, method: QuantMethod) -> Self {
        self.quant = method;
        self
    }

    /// The configured quantification method.
    pub fn quant_method(&self) -> QuantMethod {
        self.quant
    }

    /// Adds a hazard with its cost weight (cost per occurrence, in
    /// whatever currency the model uses — the paper weighs a collision at
    /// 100 000 false alarms).
    pub fn hazard(mut self, hazard: Hazard, cost: f64) -> Self {
        self.hazards.push(hazard);
        self.costs.push(cost);
        self
    }

    /// The parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Shared handle to the parameter space.
    pub fn space_arc(&self) -> Arc<ParameterSpace> {
        Arc::clone(&self.space)
    }

    /// The hazards in insertion order.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// The cost weights, aligned with [`hazards`](Self::hazards).
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Validates the model: non-empty, sane costs, and evaluable at the
    /// domain center.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::EmptyModel`], [`SafeOptError::InvalidCost`], or any
    /// evaluation error at the center point.
    pub fn validate(&self) -> Result<()> {
        if self.hazards.is_empty() {
            return Err(SafeOptError::EmptyModel);
        }
        for (h, &c) in self.hazards.iter().zip(&self.costs) {
            if !(c.is_finite() && c >= 0.0) {
                return Err(SafeOptError::InvalidCost {
                    hazard: h.name().to_owned(),
                    value: c,
                });
            }
        }
        let center = self.space.center();
        self.cost(&center)?;
        Ok(())
    }

    /// All hazard probabilities at a parameter point.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points and
    /// factor-evaluation errors.
    pub fn hazard_probabilities(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.space.len() {
            return Err(SafeOptError::DimensionMismatch {
                expected: self.space.len(),
                got: x.len(),
            });
        }
        let params = ParamValues::new(x);
        self.hazards
            .iter()
            .map(|h| h.probability_with(&params, self.quant))
            .collect()
    }

    /// The cost function `f_cost(X)` (Eq. 6).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`hazard_probabilities`](Self::hazard_probabilities).
    pub fn cost(&self, x: &[f64]) -> Result<f64> {
        let probs = self.hazard_probabilities(x)?;
        Ok(probs.iter().zip(&self.costs).map(|(p, c)| p * c).sum())
    }

    /// The cost function as an optimization objective. Evaluation errors
    /// (which can only arise from expression bugs, not from in-domain
    /// points) surface as `+∞`, which every optimizer in
    /// [`safety_opt_optim`] treats as "worse than anything".
    pub fn objective(&self) -> impl Fn(&[f64]) -> f64 + '_ {
        move |x: &[f64]| self.cost(x).unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_stats::dist::TruncatedNormal;

    fn two_hazard_model() -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let collision = Hazard::builder("collision")
            .residual("other", 1e-8)
            .cut_set("ot1", [constant(0.01).unwrap(), overtime(transit, t1)])
            .cut_set("ot2", [constant(0.01).unwrap(), overtime(transit, t2)])
            .build();
        let alarm = Hazard::builder("false-alarm")
            .residual("other", 1e-4)
            .cut_set("hv", [constant(1e-3).unwrap(), exposure(0.13, t2)])
            .build();
        SafetyModel::new(space)
            .hazard(collision, 100_000.0)
            .hazard(alarm, 1.0)
    }

    #[test]
    fn hazard_probability_is_rare_event_sum() {
        let model = two_hazard_model();
        let probs = model.hazard_probabilities(&[30.0, 30.0]).unwrap();
        assert_eq!(probs.len(), 2);
        // At long runtimes overtime ≈ 0: collision ≈ residual.
        assert!((probs[0] - 1e-8).abs() < 1e-10);
        // False alarm: residual + 1e-3 · (1 − e^{−3.9}).
        let expected = 1e-4 + 1e-3 * (1.0 - (-0.13f64 * 30.0).exp());
        assert!((probs[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn cost_is_weighted_sum() {
        let model = two_hazard_model();
        let x = [30.0, 30.0];
        let probs = model.hazard_probabilities(&x).unwrap();
        let cost = model.cost(&x).unwrap();
        assert!((cost - (1e5 * probs[0] + probs[1])).abs() < 1e-12);
    }

    #[test]
    fn cost_tradeoff_creates_interior_optimum() {
        // Short timers: huge collision risk. Long timers: higher alarm
        // risk. Some middle point beats both extremes.
        let model = two_hazard_model();
        let short = model.cost(&[6.0, 6.0]).unwrap();
        let long = model.cost(&[30.0, 30.0]).unwrap();
        let mid = model.cost(&[16.0, 16.0]).unwrap();
        assert!(mid < short, "mid {mid} vs short {short}");
        assert!(mid < long, "mid {mid} vs long {long}");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let model = two_hazard_model();
        assert!(matches!(
            model.cost(&[10.0]),
            Err(SafeOptError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validation_catches_empty_and_bad_costs() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let empty = SafetyModel::new(space);
        assert!(matches!(empty.validate(), Err(SafeOptError::EmptyModel)));

        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let h = Hazard::builder("h").residual("r", 0.1).build();
        let bad = SafetyModel::new(space).hazard(h, -5.0);
        assert!(matches!(
            bad.validate(),
            Err(SafeOptError::InvalidCost { .. })
        ));

        assert!(two_hazard_model().validate().is_ok());
    }

    #[test]
    fn hazard_probability_clamps_at_one() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let h = Hazard::builder("h")
            .residual("a", 0.9)
            .residual("b", 0.9)
            .build();
        let model = SafetyModel::new(space).hazard(h, 1.0);
        let p = model.hazard_probabilities(&[0.5]).unwrap()[0];
        assert_eq!(p, 1.0);
    }

    #[test]
    fn from_fault_tree_substitutes_expressions() {
        // (a AND b) OR c with parameterized c.
        let mut ft = FaultTree::new("hazard");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let c = ft.basic_event("c").unwrap();
        let g = ft.and_gate("ab", [a, b]).unwrap();
        let top = ft.or_gate("top", [g, c]).unwrap();
        ft.set_root(top).unwrap();

        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.0, 10.0).unwrap();
        let hazard = Hazard::from_fault_tree(&ft, |leaf| {
            Ok(match leaf {
                0 => constant(0.1).unwrap(),
                1 => constant(0.2).unwrap(),
                _ => exposure(0.5, t),
            })
        })
        .unwrap();
        assert_eq!(hazard.cut_sets().len(), 2);
        assert!(hazard.exact().is_some(), "tree hazards capture their BDD");
        // Pin the rare-event semantics explicitly: this test asserts the
        // Eq. 3 sum, independent of any SAFETY_OPT_QUANT override.
        let model = SafetyModel::new(space)
            .hazard(hazard, 1.0)
            .with_quant_method(QuantMethod::RareEvent);
        let p = model.hazard_probabilities(&[2.0]).unwrap()[0];
        let expected = 0.1 * 0.2 + (1.0 - (-1.0f64).exp());
        assert!((p - expected).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn bdd_exact_quantification_removes_rare_event_error() {
        // top = (a AND b) OR (a AND c) with shared `a`: rare-event
        // double-counts a, the Shannon decomposition does not.
        let mut ft = FaultTree::new("shared");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let c = ft.basic_event("c").unwrap();
        let g1 = ft.and_gate("g1", [a, b]).unwrap();
        let g2 = ft.and_gate("g2", [a, c]).unwrap();
        let top = ft.or_gate("top", [g1, g2]).unwrap();
        ft.set_root(top).unwrap();

        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.0, 10.0).unwrap();
        let hazard = Hazard::from_fault_tree(&ft, |leaf| {
            Ok(match leaf {
                0 => exposure(0.5, t), // a, parameterized
                1 => constant(0.5).unwrap(),
                _ => constant(0.5).unwrap(),
            })
        })
        .unwrap();
        let rare = SafetyModel::new(space.clone())
            .hazard(hazard.clone(), 1.0)
            .with_quant_method(QuantMethod::RareEvent);
        let exact = SafetyModel::new(space)
            .hazard(hazard, 1.0)
            .with_quant_method(QuantMethod::BddExact);
        assert_eq!(exact.quant_method(), QuantMethod::BddExact);
        let x = [3.0];
        let pa = 1.0 - (-0.5f64 * 3.0).exp();
        // Exact: P(a ∧ (b ∨ c)) = pa · 0.75; rare-event: pa · 1.0.
        let p_exact = exact.hazard_probabilities(&x).unwrap()[0];
        let p_rare = rare.hazard_probabilities(&x).unwrap()[0];
        assert!((p_exact - pa * 0.75).abs() < 1e-12, "exact = {p_exact}");
        assert!((p_rare - pa).abs() < 1e-12, "rare = {p_rare}");
        assert!(p_rare > p_exact);
        // The exact value matches the fta BDD oracle at the same leaf
        // probabilities.
        let pm =
            safety_opt_fta::quant::ProbabilityMap::new(vec![pa.clamp(0.0, 1.0), 0.5, 0.5]).unwrap();
        let oracle = safety_opt_fta::bdd::TreeBdd::build(&ft)
            .unwrap()
            .probability(&pm)
            .unwrap();
        assert!((p_exact - oracle).abs() <= 1e-12 * oracle.max(1e-300));
    }

    #[test]
    fn hand_written_hazards_fall_back_to_rare_event_under_bdd_exact() {
        let model = two_hazard_model();
        let exact = two_hazard_model().with_quant_method(QuantMethod::BddExact);
        let x = [20.0, 20.0];
        // No structure function captured -> identical values.
        assert_eq!(
            model
                .with_quant_method(QuantMethod::RareEvent)
                .hazard_probabilities(&x)
                .unwrap(),
            exact.hazard_probabilities(&x).unwrap()
        );
    }

    #[test]
    fn quant_override_parsing() {
        assert_eq!(parse_quant_override(None), None);
        assert_eq!(parse_quant_override(Some("")), None);
        assert_eq!(
            parse_quant_override(Some("rare-event")),
            Some(QuantMethod::RareEvent)
        );
        assert_eq!(
            parse_quant_override(Some(" BDD_Exact ")),
            Some(QuantMethod::BddExact)
        );
    }

    #[test]
    #[should_panic(expected = "SAFETY_OPT_QUANT must be")]
    fn unknown_quant_override_is_rejected_loudly() {
        parse_quant_override(Some("exactish"));
    }

    #[test]
    fn objective_is_total_on_errors() {
        let model = two_hazard_model();
        let f = model.objective();
        // Wrong dimension through the objective → +∞, not a panic.
        assert_eq!(f(&[1.0]), f64::INFINITY);
        assert!(f(&[20.0, 20.0]).is_finite());
    }

    #[test]
    fn cut_set_describe_names() {
        let model = two_hazard_model();
        assert_eq!(model.hazards()[0].cut_sets()[1].name(), "ot1");
        assert_eq!(model.hazards()[0].name(), "collision");
    }
}
