//! Cost-surface grids — the data behind the paper's Fig. 5.
//!
//! The paper inspects the cost function as a 3-D plot over the two timer
//! runtimes and zooms into the minimum. [`CostSurface::evaluate`]
//! regenerates exactly that artifact: a rectangular grid of
//! `f_cost(x, y)` values over two chosen parameters (all others frozen),
//! exportable as CSV for plotting and as an ASCII heat map for terminals.

use crate::compile::CompiledModel;
use crate::model::SafetyModel;
use crate::param::ParamId;
use crate::{Result, SafeOptError};

/// A rectangular cost-surface sample over two parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostSurface {
    /// Name of the x-axis parameter.
    pub x_name: String,
    /// Name of the y-axis parameter.
    pub y_name: String,
    /// Grid coordinates along x.
    pub x: Vec<f64>,
    /// Grid coordinates along y.
    pub y: Vec<f64>,
    /// Row-major values: `values[j][i] = f(x[i], y[j])`.
    pub values: Vec<Vec<f64>>,
}

impl CostSurface {
    /// Evaluates the model cost over an `nx × ny` grid spanning the full
    /// domains of parameters `px` (x-axis) and `py` (y-axis), holding the
    /// remaining parameters at `reference`.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::UnknownParameter`] for foreign ids,
    /// [`SafeOptError::DimensionMismatch`] for a wrong-arity reference
    /// point, and model-evaluation errors.
    pub fn evaluate(
        model: &SafetyModel,
        px: ParamId,
        py: ParamId,
        reference: &[f64],
        nx: usize,
        ny: usize,
    ) -> Result<Self> {
        let space = model.space();
        if reference.len() != space.len() {
            return Err(SafeOptError::DimensionMismatch {
                expected: space.len(),
                got: reference.len(),
            });
        }
        if px.index() >= space.len() || py.index() >= space.len() || px == py {
            return Err(SafeOptError::UnknownParameter {
                reference: format!("axes #{} / #{}", px.index(), py.index()),
            });
        }
        let nx = nx.max(2);
        let ny = ny.max(2);
        let ix = space.get(px).interval();
        let iy = space.get(py).interval();
        let x: Vec<f64> = (0..nx)
            .map(|i| ix.lerp(i as f64 / (nx - 1) as f64))
            .collect();
        let y: Vec<f64> = (0..ny)
            .map(|j| iy.lerp(j as f64 / (ny - 1) as f64))
            .collect();
        // Batch path: compile once, evaluate the whole grid through the
        // parallel engine. Grid costs come back in row-major order.
        let mut points = Vec::with_capacity(nx * ny);
        let mut point = reference.to_vec();
        for &yj in &y {
            for &xi in &x {
                point[px.index()] = xi;
                point[py.index()] = yj;
                points.push(point.clone());
            }
        }
        let compiled = CompiledModel::compile(model)?;
        let costs = compiled.cost_batch(&points)?;
        let mut values = Vec::with_capacity(ny);
        for (row_costs, row_points) in costs.chunks(nx).zip(points.chunks(nx)) {
            let mut row = Vec::with_capacity(nx);
            for (&v, p) in row_costs.iter().zip(row_points) {
                // NaN marks an opaque-closure failure: resolve it to the
                // scalar path's typed error.
                row.push(if v.is_finite() { v } else { model.cost(p)? });
            }
            values.push(row);
        }
        Ok(Self {
            x_name: space.get(px).name().to_owned(),
            y_name: space.get(py).name().to_owned(),
            x,
            y,
            values,
        })
    }

    /// The grid minimum: `(x, y, value)`.
    pub fn minimum(&self) -> (f64, f64, f64) {
        let mut best = (self.x[0], self.y[0], f64::INFINITY);
        for (j, row) in self.values.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                if v < best.2 {
                    best = (self.x[i], self.y[j], v);
                }
            }
        }
        best
    }

    /// The grid maximum value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// CSV export with header `x_name,y_name,cost`, one row per grid
    /// point.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{},{},cost", self.x_name, self.y_name);
        for (j, row) in self.values.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                let _ = writeln!(out, "{},{},{}", self.x[i], self.y[j], v);
            }
        }
        out
    }

    /// ASCII heat map: darker characters = higher cost, `*` marks the
    /// grid minimum. Rows are printed with y increasing upwards.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+#%@";
        let (min_x, min_y, min_v) = self.minimum();
        let max_v = self.max_value();
        let range = (max_v - min_v).max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for (j, row) in self.values.iter().enumerate().rev() {
            out.push_str(&format!("{:>10.3} |", self.y[j]));
            for (i, &v) in row.iter().enumerate() {
                if self.x[i] == min_x && self.y[j] == min_y {
                    out.push('*');
                } else {
                    let t = ((v - min_v) / range).clamp(0.0, 1.0);
                    let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
                    out.push(RAMP[idx] as char);
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(self.x.len())));
        out.push_str(&format!(
            "{:>12}{:.3} .. {:.3} ({})\n",
            "",
            self.x[0],
            self.x[self.x.len() - 1],
            self.x_name
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_stats::dist::TruncatedNormal;

    fn model_2d() -> (SafetyModel, ParamId, ParamId) {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let col = Hazard::builder("col")
            .cut_set("ot1", [overtime(transit, t1)])
            .cut_set("ot2", [overtime(transit, t2)])
            .build();
        let alr = Hazard::builder("alr")
            .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t2)])
            .build();
        let model = SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0);
        (model, t1, t2)
    }

    #[test]
    fn surface_covers_domain_and_finds_minimum() {
        let (model, t1, t2) = model_2d();
        let reference = model.space().center();
        let surface = CostSurface::evaluate(&model, t1, t2, &reference, 30, 25).unwrap();
        assert_eq!(surface.x.len(), 30);
        assert_eq!(surface.y.len(), 25);
        assert_eq!(surface.values.len(), 25);
        assert_eq!(surface.x[0], 5.0);
        assert_eq!(*surface.x.last().unwrap(), 30.0);
        let (mx, my, mv) = surface.minimum();
        // t1 only matters through collision: larger is better, so the
        // minimum hugs the right edge in x and sits interior in y.
        assert!(mx > 18.0, "mx = {mx}"); // cost is flat in t1 once the tail underflows
        assert!(my > 8.0 && my < 18.0, "my = {my}");
        assert!(mv < surface.max_value());
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let (model, t1, t2) = model_2d();
        let reference = model.space().center();
        let surface = CostSurface::evaluate(&model, t1, t2, &reference, 4, 3).unwrap();
        let csv = surface.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t1,t2,cost");
        assert_eq!(lines.len(), 1 + 12);
    }

    #[test]
    fn ascii_heat_map_marks_minimum() {
        let (model, t1, t2) = model_2d();
        let reference = model.space().center();
        let surface = CostSurface::evaluate(&model, t1, t2, &reference, 12, 8).unwrap();
        let art = surface.to_ascii();
        assert_eq!(art.matches('*').count(), 1);
        assert!(art.contains("(t1)"));
    }

    #[test]
    fn rejects_bad_axes_and_reference() {
        let (model, t1, t2) = model_2d();
        let reference = model.space().center();
        assert!(CostSurface::evaluate(&model, t1, t1, &reference, 4, 4).is_err());
        assert!(CostSurface::evaluate(&model, t1, t2, &[1.0], 4, 4).is_err());
    }
}
