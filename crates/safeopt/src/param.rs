//! Free parameters and parameter spaces.
//!
//! The paper: *"Many real world applications have free parameters, which
//! influence safety requirements: the tolerance of a speed indicator,
//! accepted time delay between request and answers or the average
//! maintenance interval…"* A [`ParameterSpace`] names those parameters and
//! restricts each to a compact interval (so the cost minimum exists,
//! Sect. III-B); a [`ParameterPoint`] is one concrete configuration.

use crate::{Result, SafeOptError};
use safety_opt_optim::domain::{BoxDomain, Interval};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a parameter inside one [`ParameterSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Creates an id from a positional index.
    ///
    /// Normally ids come from
    /// [`ParameterSpace::parameter`](ParameterSpace::parameter); this
    /// constructor exists for code that evaluates
    /// [`ProbExpr`](crate::pprob::ProbExpr)s against raw
    /// [`ParamValues`] slices without a full space (tests, generators).
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Positional index of the parameter within its space.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One named free parameter with its compact domain.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Parameter {
    name: String,
    interval: Interval,
    unit: Option<String>,
}

impl Parameter {
    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compact domain interval.
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// The unit label, if any (e.g. `"min"`).
    pub fn unit(&self) -> Option<&str> {
        self.unit.as_deref()
    }
}

/// An ordered collection of named parameters.
///
/// ```
/// use safety_opt_core::param::ParameterSpace;
///
/// # fn main() -> Result<(), safety_opt_core::SafeOptError> {
/// let mut space = ParameterSpace::new();
/// let t1 = space.parameter_with_unit("timer1", 5.0, 30.0, "min")?;
/// let t2 = space.parameter_with_unit("timer2", 5.0, 30.0, "min")?;
/// assert_eq!(space.len(), 2);
/// assert_eq!(space.id("timer2"), Some(t2));
/// assert_ne!(t1, t2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParameterSpace {
    params: Vec<Parameter>,
    by_name: HashMap<String, ParamId>,
}

impl ParameterSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter with domain `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DuplicateParameter`] for repeated names and
    /// [`SafeOptError::Optim`] for an invalid interval.
    pub fn parameter(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> Result<ParamId> {
        self.add(name.into(), lo, hi, None)
    }

    /// Adds a parameter with a unit label.
    ///
    /// # Errors
    ///
    /// Same conditions as [`parameter`](Self::parameter).
    pub fn parameter_with_unit(
        &mut self,
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        unit: impl Into<String>,
    ) -> Result<ParamId> {
        self.add(name.into(), lo, hi, Some(unit.into()))
    }

    fn add(&mut self, name: String, lo: f64, hi: f64, unit: Option<String>) -> Result<ParamId> {
        if self.by_name.contains_key(&name) {
            return Err(SafeOptError::DuplicateParameter { name });
        }
        let interval = Interval::new(lo, hi)?;
        let id = ParamId(self.params.len());
        self.by_name.insert(name.clone(), id);
        self.params.push(Parameter {
            name,
            interval,
            unit,
        });
        Ok(id)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if no parameters are declared.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Looks a parameter up by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// The parameter behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this space.
    pub fn get(&self, id: ParamId) -> &Parameter {
        &self.params[id.0]
    }

    /// Iterates parameters in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Parameter)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// The optimization domain: the Cartesian product of the parameter
    /// intervals.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::Optim`] if the space is empty.
    pub fn domain(&self) -> Result<BoxDomain> {
        Ok(BoxDomain::new(
            self.params.iter().map(|p| p.interval).collect(),
        )?)
    }

    /// Wraps raw coordinates as a [`ParameterPoint`] of this space.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] unless `values.len()` matches.
    pub fn point(self: &Arc<Self>, values: Vec<f64>) -> Result<ParameterPoint> {
        if values.len() != self.len() {
            return Err(SafeOptError::DimensionMismatch {
                expected: self.len(),
                got: values.len(),
            });
        }
        Ok(ParameterPoint {
            space: Arc::clone(self),
            values,
        })
    }

    /// The domain center as a starting configuration.
    pub fn center(&self) -> Vec<f64> {
        self.params.iter().map(|p| p.interval.center()).collect()
    }
}

/// A concrete configuration: one value per parameter of a space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterPoint {
    space: Arc<ParameterSpace>,
    values: Vec<f64>,
}

impl ParameterPoint {
    /// The owning space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Raw coordinates in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the parameter named `name`, if it exists.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.space.id(name).map(|id| self.values[id.0])
    }

    /// Value by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the owning space.
    pub fn value_of(&self, id: ParamId) -> f64 {
        self.values[id.0]
    }
}

impl std::fmt::Display for ParameterPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, (_, p)) in self.space.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {:.4}", p.name(), self.values[i])?;
            if let Some(u) = p.unit() {
                write!(f, " {u}")?;
            }
        }
        write!(f, ")")
    }
}

/// Lightweight view used by probability expressions during evaluation:
/// raw values addressable by [`ParamId`].
#[derive(Debug, Clone, Copy)]
pub struct ParamValues<'a> {
    values: &'a [f64],
}

impl<'a> ParamValues<'a> {
    /// Wraps a raw coordinate slice.
    pub fn new(values: &'a [f64]) -> Self {
        Self { values }
    }

    /// Value of parameter `id`.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::UnknownParameter`] if the id is out of range for
    /// this point.
    pub fn get(&self, id: ParamId) -> Result<f64> {
        self.values
            .get(id.0)
            .copied()
            .ok_or_else(|| SafeOptError::UnknownParameter {
                reference: format!("#{}", id.0),
            })
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no coordinates.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_looks_up_parameters() {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter_with_unit("t2", 0.0, 1.0, "min").unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(space.id("t1"), Some(t1));
        assert_eq!(space.id("t2"), Some(t2));
        assert_eq!(space.id("nope"), None);
        assert_eq!(space.get(t2).unit(), Some("min"));
        assert_eq!(space.get(t1).interval().lo(), 5.0);
    }

    #[test]
    fn rejects_duplicates_and_bad_intervals() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        assert!(matches!(
            space.parameter("t", 0.0, 2.0),
            Err(SafeOptError::DuplicateParameter { .. })
        ));
        assert!(matches!(
            space.parameter("u", 2.0, 1.0),
            Err(SafeOptError::Optim(_))
        ));
    }

    #[test]
    fn domain_matches_declarations() {
        let mut space = ParameterSpace::new();
        space.parameter("a", 0.0, 1.0).unwrap();
        space.parameter("b", 5.0, 30.0).unwrap();
        let domain = space.domain().unwrap();
        assert_eq!(domain.dim(), 2);
        assert_eq!(domain.interval(1).hi(), 30.0);
        assert_eq!(space.center(), vec![0.5, 17.5]);
    }

    #[test]
    fn empty_space_has_no_domain() {
        let space = ParameterSpace::new();
        assert!(space.domain().is_err());
    }

    #[test]
    fn point_dimension_checking() {
        let mut space = ParameterSpace::new();
        space.parameter("a", 0.0, 1.0).unwrap();
        let space = Arc::new(space);
        assert!(space.point(vec![0.5]).is_ok());
        assert!(matches!(
            space.point(vec![0.5, 0.6]),
            Err(SafeOptError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn point_accessors_and_display() {
        let mut space = ParameterSpace::new();
        space
            .parameter_with_unit("timer1", 5.0, 30.0, "min")
            .unwrap();
        space.parameter("rate", 0.0, 1.0).unwrap();
        let space = Arc::new(space);
        let p = space.point(vec![19.0, 0.13]).unwrap();
        assert_eq!(p.value("timer1"), Some(19.0));
        assert_eq!(p.value("rate"), Some(0.13));
        assert_eq!(p.value("nope"), None);
        let shown = p.to_string();
        assert!(shown.contains("timer1 = 19.0000 min"));
    }

    #[test]
    fn param_values_view() {
        let values = [1.0, 2.0];
        let view = ParamValues::new(&values);
        assert_eq!(view.get(ParamId(1)).unwrap(), 2.0);
        assert!(view.get(ParamId(5)).is_err());
        assert_eq!(view.len(), 2);
    }
}
