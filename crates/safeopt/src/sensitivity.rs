//! Sensitivity and environment-scaling analysis.
//!
//! The paper's most striking result (Fig. 6) is not the optimum itself but
//! what a *sweep* revealed: plotting the false-alarm probability against
//! timer 2 while conditioning on an overhigh vehicle in the controlled
//! area exposed a design flaw neither model checking nor the engineers
//! had seen. This module provides those tools:
//!
//! * [`sweep`] — one-at-a-time parameter sweeps of cost and hazard
//!   probabilities (Fig. 6's curves).
//! * [`tornado`] — per-parameter cost ranges over each parameter's full
//!   interval (which knob matters?).
//! * [`local_gradient`] — central-difference cost gradient at a point
//!   (direction of steepest improvement).

use crate::compile::CompiledModel;
use crate::model::SafetyModel;
use crate::param::ParamId;
use crate::{Result, SafeOptError};

/// One sample of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// Value of the swept parameter.
    pub value: f64,
    /// Cost at this value.
    pub cost: f64,
    /// Hazard probabilities at this value (model order).
    pub hazard_probabilities: Vec<f64>,
}

/// A one-at-a-time sweep of one parameter.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sweep {
    /// Name of the swept parameter.
    pub parameter: String,
    /// Samples in increasing parameter order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// CSV export: `value,cost,<hazard names...>`.
    pub fn to_csv(&self, model: &SafetyModel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let hazard_names: Vec<&str> = model.hazards().iter().map(|h| h.name()).collect();
        let _ = writeln!(out, "{},cost,{}", self.parameter, hazard_names.join(","));
        for p in &self.points {
            let probs: Vec<String> = p
                .hazard_probabilities
                .iter()
                .map(|v| format!("{v}"))
                .collect();
            let _ = writeln!(out, "{},{},{}", p.value, p.cost, probs.join(","));
        }
        out
    }

    /// The swept value with the lowest cost.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap())
    }
}

/// Sweeps parameter `param` over its full interval in `steps` points,
/// holding all other parameters at `reference`.
///
/// # Errors
///
/// [`SafeOptError::UnknownParameter`] for a foreign id,
/// [`SafeOptError::DimensionMismatch`] for a wrong-arity reference, and
/// model-evaluation errors.
pub fn sweep(
    model: &SafetyModel,
    param: ParamId,
    reference: &[f64],
    steps: usize,
) -> Result<Sweep> {
    let space = model.space();
    if param.index() >= space.len() {
        return Err(SafeOptError::UnknownParameter {
            reference: format!("#{}", param.index()),
        });
    }
    if reference.len() != space.len() {
        return Err(SafeOptError::DimensionMismatch {
            expected: space.len(),
            got: reference.len(),
        });
    }
    let steps = steps.max(2);
    let interval = space.get(param).interval();
    let mut point = reference.to_vec();
    let mut grid = Vec::with_capacity(steps);
    for i in 0..steps {
        let v = interval.lerp(i as f64 / (steps - 1) as f64);
        point[param.index()] = v;
        grid.push(point.clone());
    }
    // Batch path: one compiled parallel sweep for costs and hazards.
    let compiled = CompiledModel::compile(model)?;
    let (costs, hazards) = compiled.cost_and_hazards_batch(&grid)?;
    let n_hazards = model.hazards().len();
    let mut points = Vec::with_capacity(steps);
    for (i, p) in grid.iter().enumerate() {
        let row = &hazards[i * n_hazards..(i + 1) * n_hazards];
        let (cost, hazard_probabilities) =
            if costs[i].is_finite() && row.iter().all(|v| v.is_finite()) {
                (costs[i], row.to_vec())
            } else {
                // Resolve closure failures to the scalar path's error.
                (model.cost(p)?, model.hazard_probabilities(p)?)
            };
        points.push(SweepPoint {
            value: p[param.index()],
            cost,
            hazard_probabilities,
        });
    }
    Ok(Sweep {
        parameter: space.get(param).name().to_owned(),
        points,
    })
}

/// One bar of a tornado diagram.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TornadoBar {
    /// Parameter name.
    pub parameter: String,
    /// Cost at the interval's lower end.
    pub cost_at_lo: f64,
    /// Cost at the interval's upper end.
    pub cost_at_hi: f64,
    /// Cost at the reference point.
    pub cost_at_reference: f64,
}

impl TornadoBar {
    /// Total cost swing `|hi − lo|` — the bar length.
    pub fn swing(&self) -> f64 {
        (self.cost_at_hi - self.cost_at_lo).abs()
    }
}

/// Computes a tornado diagram: for each parameter, the cost at its
/// interval endpoints with everything else held at `reference`. Bars are
/// sorted by descending swing.
///
/// # Errors
///
/// [`SafeOptError::DimensionMismatch`] for a wrong-arity reference and
/// model-evaluation errors.
pub fn tornado(model: &SafetyModel, reference: &[f64]) -> Result<Vec<TornadoBar>> {
    let space = model.space();
    if reference.len() != space.len() {
        return Err(SafeOptError::DimensionMismatch {
            expected: space.len(),
            got: reference.len(),
        });
    }
    // Batch path: the reference plus both interval endpoints of every
    // parameter in one compiled evaluation.
    let mut probes = Vec::with_capacity(1 + 2 * space.len());
    probes.push(reference.to_vec());
    let mut point = reference.to_vec();
    for (id, p) in space.iter() {
        point[id.index()] = p.interval().lo();
        probes.push(point.clone());
        point[id.index()] = p.interval().hi();
        probes.push(point.clone());
        point[id.index()] = reference[id.index()];
    }
    let compiled = CompiledModel::compile(model)?;
    let raw = compiled.cost_batch(&probes)?;
    let mut costs = Vec::with_capacity(raw.len());
    for (v, p) in raw.into_iter().zip(&probes) {
        costs.push(if v.is_finite() { v } else { model.cost(p)? });
    }
    let cost_at_reference = costs[0];
    let mut bars = Vec::with_capacity(space.len());
    for (i, (_, p)) in space.iter().enumerate() {
        bars.push(TornadoBar {
            parameter: p.name().to_owned(),
            cost_at_lo: costs[1 + 2 * i],
            cost_at_hi: costs[2 + 2 * i],
            cost_at_reference,
        });
    }
    bars.sort_by(|a, b| b.swing().partial_cmp(&a.swing()).unwrap());
    Ok(bars)
}

/// Cost gradient at `x`, via the engine's reverse-mode adjoint sweep:
/// one forward + one backward tape pass yields **all** partials at a
/// cost independent of the parameter count, instead of the `2·dim`
/// tape sweeps of the old one-at-a-time central differences. Opaque
/// closure factors differentiate through per-op central differences
/// inside the adjoint pass, so every model keeps working.
///
/// When the adjoint gradient comes back non-finite (the model fails to
/// evaluate somewhere in the NaN-poisoned region), the old
/// central-difference path runs instead — step `h` relative to each
/// parameter's interval width, probes clamped into the domain — so
/// failures surface as the same typed errors as before. `h` only
/// affects that fallback.
///
/// # Errors
///
/// [`SafeOptError::DimensionMismatch`] for a wrong-arity point and
/// model-evaluation errors.
pub fn local_gradient(model: &SafetyModel, x: &[f64], h: f64) -> Result<Vec<f64>> {
    let space = model.space();
    if x.len() != space.len() {
        return Err(SafeOptError::DimensionMismatch {
            expected: space.len(),
            got: x.len(),
        });
    }
    let compiled = CompiledModel::compile(model)?;
    // Routed through `gradient_batch` — the `ExecBackend`-dispatched
    // batch seam — instead of the pointwise `value_grad`, so this entry
    // point shares the SoA adjoint path with every other gradient
    // consumer (a single point runs the scalar tail and stays
    // bit-identical to `value_grad`).
    let (values, grad) = compiled.gradient_batch(std::slice::from_ref(&x.to_vec()))?;
    let value = values[0];
    if value.is_finite() && grad.iter().all(|g| g.is_finite()) {
        return Ok(grad);
    }
    // Fallback: the pre-adjoint central-difference path — all probes in
    // one compiled batch, non-finite rows resolved to the scalar path's
    // typed error.
    let mut spans = Vec::with_capacity(space.len());
    let mut probes = Vec::with_capacity(2 * space.len());
    let mut probe = x.to_vec();
    for (id, p) in space.iter() {
        let step = (h * p.interval().width()).max(1e-12);
        let hi = p.interval().clamp(x[id.index()] + step);
        let lo = p.interval().clamp(x[id.index()] - step);
        probe[id.index()] = hi;
        probes.push(probe.clone());
        probe[id.index()] = lo;
        probes.push(probe.clone());
        probe[id.index()] = x[id.index()];
        spans.push(hi - lo);
    }
    let raw = compiled.cost_batch(&probes)?;
    let mut costs = Vec::with_capacity(raw.len());
    for (v, p) in raw.into_iter().zip(&probes) {
        costs.push(if v.is_finite() { v } else { model.cost(p)? });
    }
    let grad = spans
        .iter()
        .enumerate()
        .map(|(i, &span)| {
            if span > 0.0 {
                (costs[2 * i] - costs[2 * i + 1]) / span
            } else {
                0.0
            }
        })
        .collect();
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_stats::dist::TruncatedNormal;

    fn model() -> (SafetyModel, ParamId, ParamId) {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let col = Hazard::builder("col")
            .cut_set("ot1", [overtime(transit, t1)])
            .build();
        let alr = Hazard::builder("alr")
            .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t2)])
            .build();
        let m = SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0);
        (m, t1, t2)
    }

    #[test]
    fn sweep_monotonicities_match_model() {
        let (m, t1, t2) = model();
        let reference = m.space().center();
        // Collision probability falls with t1.
        let s1 = sweep(&m, t1, &reference, 20).unwrap();
        for w in s1.points.windows(2) {
            assert!(w[1].hazard_probabilities[0] <= w[0].hazard_probabilities[0] + 1e-15);
        }
        // Alarm probability grows with t2.
        let s2 = sweep(&m, t2, &reference, 20).unwrap();
        for w in s2.points.windows(2) {
            assert!(w[1].hazard_probabilities[1] >= w[0].hazard_probabilities[1] - 1e-15);
        }
        assert_eq!(s1.parameter, "t1");
        assert_eq!(s1.points.len(), 20);
        assert_eq!(s1.points[0].value, 5.0);
        assert_eq!(s1.points.last().unwrap().value, 30.0);
    }

    #[test]
    fn sweep_best_is_cost_minimum() {
        let (m, t1, _) = model();
        let reference = m.space().center();
        let s = sweep(&m, t1, &reference, 50).unwrap();
        let best = s.best().unwrap();
        for p in &s.points {
            assert!(best.cost <= p.cost + 1e-15);
        }
    }

    #[test]
    fn sweep_csv_format() {
        let (m, t1, _) = model();
        let reference = m.space().center();
        let s = sweep(&m, t1, &reference, 3).unwrap();
        let csv = s.to_csv(&m);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "t1,cost,col,alr");
        assert_eq!(lines.count(), 3);
    }

    #[test]
    fn tornado_ranks_influential_parameter_first() {
        let (m, _, _) = model();
        let reference = m.space().center();
        let bars = tornado(&m, &reference).unwrap();
        assert_eq!(bars.len(), 2);
        // t1 moves the 1e5-weighted collision term: far bigger swing.
        assert_eq!(bars[0].parameter, "t1");
        assert!(bars[0].swing() > bars[1].swing());
    }

    #[test]
    fn gradient_signs_match_tradeoff() {
        let (m, _, _) = model();
        // At short runtimes the collision term dominates: cost decreases
        // in t1 (negative gradient), and the alarm term makes t2's
        // gradient positive once overtime is negligible.
        let g = local_gradient(&m, &[10.0, 25.0], 1e-4).unwrap();
        assert!(g[0] < 0.0, "g_t1 = {}", g[0]);
        assert!(g[1] > 0.0, "g_t2 = {}", g[1]);
    }

    #[test]
    fn adjoint_gradient_matches_central_differences() {
        let (m, _, _) = model();
        for x in [[12.0, 18.0], [7.5, 25.0], [22.0, 9.0]] {
            let g = local_gradient(&m, &x, 1e-6).unwrap();
            for i in 0..2 {
                // Reference step large enough that central-difference
                // cancellation stays below the tolerance.
                let h = 1e-4 * 25.0;
                let mut p = x;
                p[i] = x[i] + h;
                let fp = m.cost(&p).unwrap();
                p[i] = x[i] - h;
                let fm = m.cost(&p).unwrap();
                let fd = (fp - fm) / (2.0 * h);
                let scale = g[i].abs().max(fd.abs()).max(1e-9);
                assert!(
                    (g[i] - fd).abs() <= 1e-5 * scale,
                    "component {i} at {x:?}: adjoint {} vs fd {fd}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn closure_models_still_differentiate() {
        // An opaque factor forces the adjoint pass through its per-op
        // central-difference fallback; the gradient must stay finite
        // and correct in sign (cost grows with t via 0.01·t²).
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.1, 10.0).unwrap();
        let _ = t;
        let h = Hazard::builder("h")
            .cut_set(
                "smooth closure",
                [crate::pprob::from_fn("quad", |v| {
                    let t = v.get(crate::param::ParamId::new(0)).unwrap_or(f64::NAN);
                    (0.01 * t * t).min(1.0)
                })],
            )
            .build();
        let m = SafetyModel::new(space).hazard(h, 1.0);
        let g = local_gradient(&m, &[3.0], 1e-6).unwrap();
        assert!(
            (g[0] - 0.06).abs() < 1e-6,
            "d/dt 0.01 t² at 3 = 0.06, got {}",
            g[0]
        );
    }

    #[test]
    fn errors_on_bad_input() {
        let (m, t1, _) = model();
        assert!(sweep(&m, t1, &[1.0], 5).is_err());
        assert!(sweep(&m, ParamId(9), &m.space().center(), 5).is_err());
        assert!(tornado(&m, &[1.0]).is_err());
        assert!(local_gradient(&m, &[1.0], 1e-4).is_err());
    }
}
