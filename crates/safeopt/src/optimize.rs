//! The safety-optimization front-end.
//!
//! [`SafetyOptimizer`] wires a [`SafetyModel`] to any
//! [`safety_opt_optim::Minimizer`] (default: multi-start
//! Nelder–Mead over a deterministic Halton scatter) and returns an
//! [`OptimalConfiguration`]: the arg-min point, its cost, and the hazard
//! probabilities there. [`ConfigurationComparison`] reports how the
//! optimum improves on a baseline configuration — the paper's headline
//! numbers ("~10 % improvement in false alarm risk, < 0.1 % change in
//! collision risk") are exactly such a comparison against the engineers'
//! initial 30-minute guesses.

use crate::model::SafetyModel;
use crate::param::ParameterPoint;
use crate::Result;
use safety_opt_optim::gradient::GradientDescent;
use safety_opt_optim::multistart::MultiStart;
use safety_opt_optim::nelder_mead::NelderMead;
use safety_opt_optim::{
    BatchDifferentiableObjective, BatchObjective, Minimizer, OptimizationOutcome, TraceHook,
};
use std::sync::Arc;

/// The result of a safety optimization run.
#[derive(Debug, Clone)]
pub struct OptimalConfiguration {
    point: ParameterPoint,
    cost: f64,
    hazard_probabilities: Vec<f64>,
    outcome: OptimizationOutcome,
}

impl OptimalConfiguration {
    /// The optimal parameter configuration.
    pub fn point(&self) -> &ParameterPoint {
        &self.point
    }

    /// The minimal mean cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Hazard probabilities at the optimum (aligned with the model's
    /// hazards).
    pub fn hazard_probabilities(&self) -> &[f64] {
        &self.hazard_probabilities
    }

    /// The raw optimizer outcome (evaluations, termination, trace).
    pub fn outcome(&self) -> &OptimizationOutcome {
        &self.outcome
    }

    /// Post-processes a raw optimizer outcome into the front-end result
    /// (scalar-path hazard probabilities at the optimum, named point) —
    /// shared by every optimization driver so fleet-backed runs report
    /// exactly like model-backed ones.
    pub(crate) fn from_outcome(model: &SafetyModel, outcome: OptimizationOutcome) -> Result<Self> {
        let hazard_probabilities = model.hazard_probabilities(&outcome.best_x)?;
        let point = model.space_arc().point(outcome.best_x.clone())?;
        Ok(Self {
            point,
            cost: outcome.best_value,
            hazard_probabilities,
            outcome,
        })
    }
}

impl std::fmt::Display for OptimalConfiguration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "optimum at {} with mean cost {:.6e}",
            self.point, self.cost
        )
    }
}

/// Safety optimizer: model + minimization strategy.
///
/// ```no_run
/// use safety_opt_core::optimize::SafetyOptimizer;
/// use safety_opt_optim::grid::GridSearch;
/// # fn demo(model: &safety_opt_core::model::SafetyModel) -> Result<(), safety_opt_core::SafeOptError> {
/// // Default strategy:
/// let optimum = SafetyOptimizer::new(model).run()?;
/// // Or any custom minimizer:
/// let grid = GridSearch::new(301);
/// let optimum = SafetyOptimizer::new(model).with_minimizer(&grid).run()?;
/// # Ok(())
/// # }
/// ```
pub struct SafetyOptimizer<'m> {
    model: &'m SafetyModel,
    minimizer: Option<&'m dyn Minimizer>,
    batch_objective: Option<&'m dyn BatchObjective>,
    batch_differentiable: Option<&'m dyn BatchDifferentiableObjective>,
    starts: usize,
    hook: Option<Arc<dyn TraceHook>>,
}

impl std::fmt::Debug for SafetyOptimizer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafetyOptimizer")
            .field("model", &self.model)
            .field("custom_minimizer", &self.minimizer.is_some())
            .field("batch_objective", &self.batch_objective.is_some())
            .field("batch_differentiable", &self.batch_differentiable.is_some())
            .field("starts", &self.starts)
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

impl<'m> SafetyOptimizer<'m> {
    /// Creates an optimizer with the default strategy (multi-start
    /// Nelder–Mead with 8 scattered starts).
    pub fn new(model: &'m SafetyModel) -> Self {
        Self {
            model,
            minimizer: None,
            batch_objective: None,
            batch_differentiable: None,
            starts: 8,
            hook: None,
        }
    }

    /// Overrides the minimization algorithm. Gradient-based algorithms
    /// (e.g. [`safety_opt_optim::gradient::GradientDescent`]) receive
    /// the compiled objective through
    /// [`Minimizer::minimize_differentiable`] and therefore consume the
    /// engine's analytic adjoint gradients — one tape sweep per
    /// gradient instead of `2·dim` finite-difference probes;
    /// derivative-free algorithms are unaffected.
    pub fn with_minimizer(mut self, minimizer: &'m dyn Minimizer) -> Self {
        self.minimizer = Some(minimizer);
        self
    }

    /// Supplies a precompiled batch objective (e.g. one model of a
    /// [`crate::fleet::CompiledFleet`]) instead of compiling the model
    /// internally. The default multi-start Nelder–Mead strategy then
    /// runs its restarts **in lockstep**, submitting every restart's
    /// probes as one batch per round
    /// ([`MultiStart::minimize_batch`]); a custom
    /// [`with_minimizer`](Self::with_minimizer) takes precedence and
    /// ignores this hook.
    ///
    /// The supplied objective must be pointwise-equal to the model's
    /// compiled cost; trajectories then match an **uncached** run of
    /// the internal path exactly. (The internal path additionally
    /// memoizes through a [`safety_opt_engine::QuantizedCache`] whose
    /// 1e-9 quantization is far below every optimizer tolerance; it can
    /// only diverge if two *distinct* probe points collide within that
    /// grid — the pinned-seed golden tests assert the two paths agree
    /// bit-for-bit on the shipped workloads.)
    pub fn with_batch_objective(mut self, objective: &'m dyn BatchObjective) -> Self {
        self.batch_objective = Some(objective);
        self
    }

    /// Supplies a precompiled **gradient-capable** batch objective (e.g.
    /// one model of a [`crate::fleet::CompiledFleet`] via
    /// [`crate::fleet::CompiledFleet::model_batch_objective`]). The
    /// default strategy then becomes multi-start gradient descent whose
    /// restarts step **in lockstep**, submitting one analytic-adjoint
    /// gradient batch per round
    /// ([`MultiStart::minimize_batch`](MultiStart::<GradientDescent>::minimize_batch))
    /// — every value+gradient the restarts need lands on the engine's
    /// SoA adjoint sweep as a single `[points × dims]` batch instead of
    /// `starts` separate tape walks. A custom
    /// [`with_minimizer`](Self::with_minimizer) takes precedence;
    /// this hook takes precedence over the derivative-free
    /// [`with_batch_objective`](Self::with_batch_objective).
    ///
    /// Trajectories are pinned bit-identical to running the same
    /// gradient-descent restarts sequentially against the per-model
    /// scalar objective (see the fleet golden tests).
    pub fn with_batch_differentiable_objective(
        mut self,
        objective: &'m dyn BatchDifferentiableObjective,
    ) -> Self {
        self.batch_differentiable = Some(objective);
        self
    }

    /// Number of restarts used by the default strategy (ignored with a
    /// custom minimizer).
    pub fn starts(mut self, starts: usize) -> Self {
        self.starts = starts.max(1);
        self
    }

    /// Registers a convergence-trace observer on the default multi-start
    /// strategy: `hook` sees every restart's per-iteration best cost and
    /// evaluation count, tagged with the restart index (see
    /// [`safety_opt_optim::TraceHook`]). With a custom
    /// [`with_minimizer`](Self::with_minimizer) the hook is ignored —
    /// configure the minimizer's own
    /// `with_trace_hook` instead.
    pub fn with_trace_hook(mut self, hook: Arc<dyn TraceHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Runs the optimization.
    ///
    /// The cost function is compiled onto the evaluation engine first
    /// (see [`crate::compile`]): the minimizer then drives an
    /// allocation-free op-tape with a quantized memo cache instead of
    /// re-walking the expression trees per evaluation. The reported
    /// hazard probabilities at the optimum come from the scalar
    /// reference path.
    ///
    /// # Errors
    ///
    /// Model-validation errors and any optimizer error.
    pub fn run(self) -> Result<OptimalConfiguration> {
        self.model.validate()?;
        let domain = self.model.space().domain()?;

        let outcome = match (
            self.minimizer,
            self.batch_differentiable,
            self.batch_objective,
        ) {
            (Some(m), _, _) => {
                let compiled = crate::compile::CompiledModel::compile(self.model)?;
                let f = compiled.objective(true);
                // The differentiable entry point: gradient-based
                // minimizers (GradientDescent) consume the compiled
                // tape's analytic adjoint gradients; derivative-free
                // algorithms fall through to plain `minimize` via the
                // trait's default implementation.
                m.minimize_differentiable(&f, &domain)?
            }
            (None, Some(batch), _) => {
                // Gradient-capable batch hook: multi-start gradient
                // descent in lockstep, one analytic-gradient batch per
                // round through the SoA adjoint backend.
                let mut ms = MultiStart::new(GradientDescent::default(), self.starts);
                if let Some(hook) = &self.hook {
                    ms = ms.with_trace_hook(Arc::clone(hook));
                }
                ms.minimize_batch(batch, &domain)?
            }
            (None, None, Some(batch)) => {
                let mut ms = MultiStart::new(NelderMead::default(), self.starts);
                if let Some(hook) = &self.hook {
                    ms = ms.with_trace_hook(Arc::clone(hook));
                }
                ms.minimize_batch(batch, &domain)?
            }
            (None, None, None) => {
                let compiled = crate::compile::CompiledModel::compile(self.model)?;
                let f = compiled.objective(true);
                let mut ms = MultiStart::new(NelderMead::default(), self.starts);
                if let Some(hook) = &self.hook {
                    ms = ms.with_trace_hook(Arc::clone(hook));
                }
                ms.minimize(&f, &domain)?
            }
        };

        OptimalConfiguration::from_outcome(self.model, outcome)
    }
}

/// Per-hazard delta between two configurations.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HazardDelta {
    /// Hazard name.
    pub hazard: String,
    /// Probability at the baseline configuration.
    pub baseline: f64,
    /// Probability at the candidate configuration.
    pub candidate: f64,
    /// Relative change `(candidate − baseline) / baseline` (0 when the
    /// baseline probability is 0).
    pub relative_change: f64,
}

/// Comparison of two configurations of the same model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigurationComparison {
    /// Baseline parameter values.
    pub baseline: Vec<f64>,
    /// Candidate parameter values.
    pub candidate: Vec<f64>,
    /// Cost at the baseline.
    pub baseline_cost: f64,
    /// Cost at the candidate.
    pub candidate_cost: f64,
    /// Per-hazard probability changes.
    pub hazards: Vec<HazardDelta>,
}

impl ConfigurationComparison {
    /// Compares `candidate` against `baseline` on `model`.
    ///
    /// # Errors
    ///
    /// Evaluation errors from the model (dimension mismatch, expression
    /// failures).
    pub fn compute(model: &SafetyModel, baseline: &[f64], candidate: &[f64]) -> Result<Self> {
        let base_probs = model.hazard_probabilities(baseline)?;
        let cand_probs = model.hazard_probabilities(candidate)?;
        let hazards = model
            .hazards()
            .iter()
            .zip(base_probs.iter().zip(&cand_probs))
            .map(|(h, (&b, &c))| HazardDelta {
                hazard: h.name().to_owned(),
                baseline: b,
                candidate: c,
                relative_change: if b > 0.0 { (c - b) / b } else { 0.0 },
            })
            .collect();
        Ok(Self {
            baseline: baseline.to_vec(),
            candidate: candidate.to_vec(),
            baseline_cost: model.cost(baseline)?,
            candidate_cost: model.cost(candidate)?,
            hazards,
        })
    }

    /// Relative cost improvement `(baseline − candidate) / baseline`
    /// (positive = candidate is better).
    pub fn cost_improvement(&self) -> f64 {
        if self.baseline_cost > 0.0 {
            (self.baseline_cost - self.candidate_cost) / self.baseline_cost
        } else {
            0.0
        }
    }

    /// Delta for one hazard by name.
    pub fn hazard(&self, name: &str) -> Option<&HazardDelta> {
        self.hazards.iter().find(|h| h.hazard == name)
    }
}

impl std::fmt::Display for ConfigurationComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cost: {:.6e} -> {:.6e} ({:+.2}%)",
            self.baseline_cost,
            self.candidate_cost,
            -100.0 * self.cost_improvement()
        )?;
        for h in &self.hazards {
            writeln!(
                f,
                "  {}: {:.6e} -> {:.6e} ({:+.2}%)",
                h.hazard,
                h.baseline,
                h.candidate,
                100.0 * h.relative_change
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_optim::grid::GridSearch;
    use safety_opt_stats::dist::TruncatedNormal;

    fn model() -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let collision = Hazard::builder("collision")
            .cut_set("ot", [overtime(transit, t)])
            .build();
        let alarm = Hazard::builder("alarm")
            .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t)])
            .build();
        SafetyModel::new(space)
            .hazard(collision, 100_000.0)
            .hazard(alarm, 1.0)
    }

    #[test]
    fn default_strategy_finds_interior_optimum() {
        let optimum = SafetyOptimizer::new(&model()).run().unwrap();
        let t = optimum.point().value("t").unwrap();
        // Stationarity: 1e5·φ(t) = 0.5·0.13·e^{−0.13 t} has its root
        // around t ≈ 12–13 for N(4,2) truncated at 0.
        assert!(t > 10.0 && t < 16.0, "t* = {t}");
        assert!(optimum.cost() < 0.5);
        assert_eq!(optimum.hazard_probabilities().len(), 2);
    }

    #[test]
    fn custom_minimizer_agrees_with_default() {
        let m = model();
        let grid = GridSearch::new(2001);
        let by_grid = SafetyOptimizer::new(&m)
            .with_minimizer(&grid)
            .run()
            .unwrap();
        let by_default = SafetyOptimizer::new(&m).run().unwrap();
        let dt =
            (by_grid.point().value("t").unwrap() - by_default.point().value("t").unwrap()).abs();
        assert!(dt < 0.1, "grid vs nelder-mead differ by {dt}");
    }

    #[test]
    fn gradient_descent_via_front_end_uses_analytic_gradients() {
        use safety_opt_optim::gradient::GradientDescent;
        let m = model();
        let gd = GradientDescent::default();
        let optimum = SafetyOptimizer::new(&m).with_minimizer(&gd).run().unwrap();
        // Reference: the same algorithm forced onto finite differences.
        let compiled = crate::compile::CompiledModel::compile(&m).unwrap();
        let obj = compiled.objective(true);
        let domain = m.space().domain().unwrap();
        let fd = gd.minimize(&obj, &domain).unwrap();
        assert!(
            (optimum.cost() - fd.best_value).abs() < 1e-9,
            "same optimum: {} vs {}",
            optimum.cost(),
            fd.best_value
        );
        assert!(
            optimum.outcome().evaluations < fd.evaluations,
            "front-end run must ride the analytic path: {} vs {} evaluations",
            optimum.outcome().evaluations,
            fd.evaluations
        );
    }

    #[test]
    fn comparison_reports_improvements() {
        let m = model();
        let optimum = SafetyOptimizer::new(&m).run().unwrap();
        let baseline = vec![30.0];
        let cmp =
            ConfigurationComparison::compute(&m, &baseline, optimum.point().values()).unwrap();
        assert!(cmp.cost_improvement() > 0.0);
        let alarm = cmp.hazard("alarm").unwrap();
        assert!(alarm.relative_change < 0.0, "alarm risk should drop");
        assert!(cmp.hazard("nope").is_none());
        let shown = cmp.to_string();
        assert!(shown.contains("alarm"));
    }

    #[test]
    fn trace_hook_observes_every_restart() {
        use safety_opt_optim::CollectingHook;
        let m = model();
        let hook = Arc::new(CollectingHook::default());
        let starts = 4;
        let optimum = SafetyOptimizer::new(&m)
            .starts(starts)
            .with_trace_hook(hook.clone())
            .run()
            .unwrap();
        let collected = hook.collected();
        assert!(!collected.is_empty(), "hook saw no iterations");
        let restarts: std::collections::BTreeSet<u64> = collected.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            restarts.into_iter().collect::<Vec<_>>(),
            (0..starts as u64).collect::<Vec<_>>(),
            "every restart must emit trace points"
        );
        // The best traced value can never beat the reported optimum.
        let best_traced = collected
            .iter()
            .map(|(_, p)| p.best_value)
            .fold(f64::INFINITY, f64::min);
        assert!(best_traced >= optimum.cost() - 1e-12);
        // The hook must not perturb the optimization itself.
        let plain = SafetyOptimizer::new(&m).starts(starts).run().unwrap();
        assert_eq!(plain.cost().to_bits(), optimum.cost().to_bits());
    }

    #[test]
    fn empty_model_fails_fast() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let empty = SafetyModel::new(space);
        assert!(SafetyOptimizer::new(&empty).run().is_err());
    }

    #[test]
    fn display_formats() {
        let optimum = SafetyOptimizer::new(&model()).run().unwrap();
        let s = optimum.to_string();
        assert!(s.contains("optimum at"));
        assert!(s.contains("t = "));
    }
}
