//! Fleet compilation of safety-model families.
//!
//! Monte-Carlo uncertainty ([`crate::uncertainty`]) and scenario studies
//! optimize *populations* of sampled models that share almost all of
//! their structure. [`CompiledFleet`] lowers every model of such a
//! family into one [`safety_opt_engine::fleet::Fleet`]: ops are
//! hash-consed **across models**, so the shared structure compiles and
//! evaluates once no matter how many variants reference it, while each
//! model's results stay bit-identical to compiling it alone with
//! [`crate::compile::CompiledModel`] (the equivalence property suites in
//! `engine` and this crate enforce 0-ULP agreement for every thread
//! count).
//!
//! ```
//! use safety_opt_core::fleet::CompiledFleet;
//! # use safety_opt_core::model::{Hazard, SafetyModel};
//! # use safety_opt_core::param::ParameterSpace;
//! # use safety_opt_core::pprob::{constant, exposure};
//!
//! # fn main() -> Result<(), safety_opt_core::SafeOptError> {
//! // A tiny family: three sampled models differing in one rate.
//! let mut models = Vec::new();
//! for rate in [0.10, 0.12, 0.14] {
//!     let mut space = ParameterSpace::new();
//!     let t = space.parameter("t", 0.0, 30.0)?;
//!     let h = Hazard::builder("alarm")
//!         .cut_set("hv", [constant(0.5)?, exposure(rate, t)])
//!         .build();
//!     models.push(SafetyModel::new(space).hazard(h, 1000.0));
//! }
//! let fleet = CompiledFleet::compile(&models)?;
//! assert_eq!(fleet.n_models(), 3);
//! // One arena sweep per point yields every model's cost and hazards.
//! let (costs, hazards) = fleet.cost_and_hazards_all(&[vec![10.0]])?;
//! assert_eq!(costs.len(), 3);
//! assert_eq!(hazards.len(), 3);
//! assert!(costs.windows(2).all(|w| w[0] < w[1]), "higher rate, higher cost");
//! # Ok(())
//! # }
//! ```

use crate::compile::lower_hazard;
use crate::model::SafetyModel;
use crate::{Result, SafeOptError};
use safety_opt_engine::fleet::{Fleet, FleetBuilder, FleetEvaluator};
use safety_opt_engine::{
    faultinject, CacheStats, CompileBudget, CompileStats, EngineError, EvalDeadline, ExecBackend,
    GradWorkspace, QuantizedCache, Value,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// A family of safety models compiled into one shared-arena fleet.
///
/// Cheap to clone (the fleet is shared). The models must agree on
/// parameter-space dimension; their hazard counts may differ. Batch
/// entry points sweep each chunk on the configured execution backend
/// (the `SAFETY_OPT_BACKEND` env default, or
/// [`with_backend`](Self::with_backend)); results are bit-identical for
/// every thread count and backend.
#[derive(Debug, Clone)]
pub struct CompiledFleet {
    fleet: Arc<Fleet>,
    threads: usize,
    backend: ExecBackend,
}

impl CompiledFleet {
    /// Compiles `models` with default parallelism for batches
    /// ([`safety_opt_engine::default_threads`]).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for inconsistent parameter
    /// dimensions, [`SafeOptError::UnknownParameter`] for expressions
    /// referencing parameters outside their model's space, and an
    /// invalid-config error for an empty family.
    pub fn compile(models: &[SafetyModel]) -> Result<Self> {
        Self::compile_with_threads(models, safety_opt_engine::default_threads())
    }

    /// Compiles `models` with an explicit batch worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile`](Self::compile).
    pub fn compile_with_threads(models: &[SafetyModel], threads: usize) -> Result<Self> {
        let _scope = safety_opt_telemetry::TraceScope::enter("compile.fleet");
        let Some(first) = models.first() else {
            return Err(SafeOptError::Optim(
                safety_opt_optim::OptimError::InvalidConfig {
                    option: "models",
                    requirement: "fleet needs at least one model",
                },
            ));
        };
        let dim = first.space().len();
        let mut builder = FleetBuilder::new(dim);
        for model in models {
            lower_model_into(&mut builder, model, dim)?;
            builder.finish_model();
        }
        Ok(Self {
            fleet: Arc::new(builder.build()),
            threads: threads.max(1),
            backend: safety_opt_engine::default_backend(),
        })
    }

    /// Fault-tolerant compilation: models that fail to lower (foreign
    /// parameter ids, parameter-dimension mismatch with the first model)
    /// are rolled back and reported per slot instead of failing the
    /// whole family — the hook for Monte-Carlo loops that tolerate bad
    /// samples. Returns the fleet (absent when *no* model compiled) and,
    /// per input model, its fleet index or its compile error.
    #[allow(clippy::type_complexity)]
    pub fn compile_partial(
        models: &[SafetyModel],
        threads: usize,
    ) -> (Option<Self>, Vec<std::result::Result<usize, SafeOptError>>) {
        let _scope = safety_opt_telemetry::TraceScope::enter("compile.fleet");
        let Some(first) = models.first() else {
            return (None, Vec::new());
        };
        let dim = first.space().len();
        let mut builder = FleetBuilder::new(dim);
        let mut slots = Vec::with_capacity(models.len());
        for model in models {
            match lower_model_into(&mut builder, model, dim) {
                Ok(()) => slots.push(Ok(builder.finish_model())),
                Err(e) => {
                    builder.abort_model();
                    slots.push(Err(e));
                }
            }
        }
        if slots.iter().all(|s| s.is_err()) {
            return (None, slots);
        }
        let fleet = Self {
            fleet: Arc::new(builder.build()),
            threads: threads.max(1),
            backend: safety_opt_engine::default_backend(),
        };
        (Some(fleet), slots)
    }

    /// Overrides the execution backend for every batch entry point
    /// (results are bit-identical for every choice).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Configured execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The underlying engine fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Per-op sweep-time attribution for the fleet's shared arena tape,
    /// populated only under `SAFETY_OPT_TRACE=full` (every evaluator
    /// and worker thread sweeping this fleet accumulates into the same
    /// cells).
    pub fn profile_report(&self) -> safety_opt_engine::ProfileReport {
        self.fleet.tape().profile_report()
    }

    /// Number of models in the fleet.
    pub fn n_models(&self) -> usize {
        self.fleet.n_models()
    }

    /// Number of parameters every model expects.
    pub fn dim(&self) -> usize {
        self.fleet.n_inputs()
    }

    /// Number of hazards of `model`.
    pub fn n_hazards(&self, model: usize) -> usize {
        self.fleet.n_outputs(model)
    }

    /// Columns of `model` in the flat all-models hazard row.
    pub fn hazard_range(&self, model: usize) -> Range<usize> {
        self.fleet.output_range(model)
    }

    /// Configured batch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fraction of per-model ops saved by cross-model hash-consing.
    pub fn sharing(&self) -> f64 {
        self.fleet.sharing()
    }

    /// Compile-time statistics of the shared arena (ops requested vs
    /// emitted, constant folds, hash-consing hits, fused ops). Recorded
    /// unconditionally — independent of the `SAFETY_OPT_TELEMETRY` mode.
    pub fn compile_stats(&self) -> CompileStats {
        self.fleet.compile_stats()
    }

    fn check_points(&self, points: &[Vec<f64>]) -> Result<()> {
        for p in points {
            if p.len() != self.dim() {
                return Err(SafeOptError::DimensionMismatch {
                    expected: self.dim(),
                    got: p.len(),
                });
            }
        }
        Ok(())
    }

    /// Costs of **every model** at every point (point-major,
    /// `points.len() × n_models`), one arena sweep per point, evaluated
    /// in parallel with deterministic chunking.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn costs_all(&self, points: &[Vec<f64>]) -> Result<Vec<f64>> {
        self.check_points(points)?;
        Ok(self.evaluator().costs_all(points))
    }

    /// Costs **and** hazard probabilities of every model at every point.
    /// Returns `(costs, hazards)`: `costs` point-major
    /// (`points.len() × n_models`), `hazards` point-major with each
    /// model occupying its [`hazard_range`](Self::hazard_range) columns.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn cost_and_hazards_all(&self, points: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_points(points)?;
        Ok(self.evaluator().costs_and_outputs_all(points))
    }

    /// Costs of **one model** at every point through its reachability
    /// mask — bit-identical to that model's standalone
    /// [`crate::compile::CompiledModel::cost_batch`].
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn model_cost_batch(&self, model: usize, points: &[Vec<f64>]) -> Result<Vec<f64>> {
        self.check_points(points)?;
        Ok(self.evaluator().model_costs(model, points))
    }

    /// Costs **and** analytic cost gradients of **one model** at every
    /// point via the masked reverse-mode adjoint sweep, sharded across
    /// the deterministic chunked pool on the configured execution
    /// backend (`grads` is row-major, `points.len() × dim`) —
    /// bit-identical to that model's standalone
    /// [`crate::compile::CompiledModel::gradient_batch`] for every
    /// thread count, backend, and lane width.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn model_gradient_batch(
        &self,
        model: usize,
        points: &[Vec<f64>],
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_points(points)?;
        Ok(self.evaluator().model_grads(model, points))
    }

    /// Fallible twin of [`costs_all`](Self::costs_all): worker panics
    /// are isolated into typed errors and an optional cooperative
    /// [`EvalDeadline`] is checked between chunks. All-or-nothing — an
    /// error means no partial results, and the fleet stays fully usable
    /// (an identical retry returns bit-identical results).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points;
    /// [`SafeOptError::Engine`] for isolated worker panics
    /// ([`EngineError::WorkerPanicked`]) and expired deadlines
    /// ([`EngineError::DeadlineExceeded`]).
    pub fn try_costs_all(
        &self,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<Vec<f64>> {
        self.check_points(points)?;
        self.evaluator()
            .try_costs_all(points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// Fallible twin of
    /// [`cost_and_hazards_all`](Self::cost_and_hazards_all) (see
    /// [`try_costs_all`](Self::try_costs_all) for the error contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_costs_all`](Self::try_costs_all).
    pub fn try_cost_and_hazards_all(
        &self,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_points(points)?;
        self.evaluator()
            .try_costs_and_outputs_all(points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// Fallible twin of [`model_cost_batch`](Self::model_cost_batch)
    /// (see [`try_costs_all`](Self::try_costs_all) for the error
    /// contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_costs_all`](Self::try_costs_all).
    pub fn try_model_cost_batch(
        &self,
        model: usize,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<Vec<f64>> {
        self.check_points(points)?;
        self.evaluator()
            .try_model_costs(model, points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// Fallible twin of
    /// [`model_gradient_batch`](Self::model_gradient_batch) (see
    /// [`try_costs_all`](Self::try_costs_all) for the error contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_costs_all`](Self::try_costs_all).
    pub fn try_model_gradient_batch(
        &self,
        model: usize,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        self.check_points(points)?;
        self.evaluator()
            .try_model_grads(model, points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// The fleet evaluator every batch entry point routes through.
    fn evaluator(&self) -> FleetEvaluator<'_> {
        FleetEvaluator::new(&self.fleet, self.threads).backend(self.backend)
    }

    /// One model's compiled cost as a scalar optimization objective with
    /// an optional quantized memo cache — the fleet twin of
    /// [`crate::compile::CompiledModel::objective`].
    pub fn model_objective(&self, model: usize, memo: bool) -> FleetModelObjective {
        FleetModelObjective {
            fleet: Arc::clone(&self.fleet),
            model,
            scratch: RefCell::new((Vec::new(), vec![0.0; self.n_hazards(model)])),
            grad_ws: RefCell::new(GradWorkspace::new()),
            cache: memo.then(QuantizedCache::fine),
        }
    }

    /// One model's compiled cost as a
    /// [`safety_opt_optim::BatchObjective`] — the hook the lockstep
    /// multi-start and population optimizers plug into.
    pub fn model_batch_objective(&self, model: usize) -> FleetModelBatchObjective {
        FleetModelBatchObjective {
            fleet: Arc::clone(&self.fleet),
            model,
            threads: self.threads,
            backend: self.backend,
        }
    }
}

/// Lowers one model into the shared fleet arena, mirroring
/// [`crate::compile::CompiledModel`]'s lowering exactly.
///
/// A fresh expression memo per model means every node is demanded
/// through the tape builder, which both hash-conses across models and
/// keeps this model's canonicalization order equal to a standalone
/// compile. On error the caller must roll back with
/// [`FleetBuilder::abort_model`].
fn lower_model_into(builder: &mut FleetBuilder, model: &SafetyModel, dim: usize) -> Result<()> {
    if faultinject::should_fail(faultinject::sites::FLEET_BUILD) {
        return Err(SafeOptError::Engine(EngineError::FaultInjected {
            site: faultinject::sites::FLEET_BUILD,
        }));
    }
    let space = model.space_arc();
    if space.len() != dim {
        return Err(SafeOptError::DimensionMismatch {
            expected: dim,
            got: space.len(),
        });
    }
    let mut memo: HashMap<usize, Value> = HashMap::new();
    let quant = model.quant_method();
    for (hazard, &cost) in model.hazards().iter().zip(model.costs()) {
        let b = builder.lowerer();
        let hazard_value = lower_hazard(
            b,
            &mut memo,
            &space,
            hazard,
            quant,
            &CompileBudget::UNLIMITED,
        )?;
        b.output(hazard_value, cost);
    }
    Ok(())
}

/// One fleet model's cost as an [`safety_opt_optim::Objective`]
/// (masked arena sweep; evaluation failures surface as `+∞`, exactly
/// like [`crate::compile::CompiledObjective`]).
#[derive(Debug)]
pub struct FleetModelObjective {
    fleet: Arc<Fleet>,
    model: usize,
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
    grad_ws: RefCell<GradWorkspace>,
    cache: Option<QuantizedCache>,
}

impl FleetModelObjective {
    fn eval_raw(&self, x: &[f64]) -> f64 {
        let (scratch, hazards) = &mut *self.scratch.borrow_mut();
        let v = self.fleet.eval_model_into(self.model, x, scratch, hazards);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }

    /// Hit/miss/eviction statistics of the memo cache (all zero when
    /// disabled). Recorded unconditionally — independent of the
    /// `SAFETY_OPT_TELEMETRY` mode.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map_or_else(CacheStats::default, QuantizedCache::stats)
    }
}

impl safety_opt_optim::Objective for FleetModelObjective {
    fn eval(&self, x: &[f64]) -> f64 {
        if x.len() != self.fleet.n_inputs() {
            return f64::INFINITY;
        }
        match &self.cache {
            Some(cache) => cache.get_or_insert_with(x, || self.eval_raw(x)),
            None => self.eval_raw(x),
        }
    }
}

/// The analytic-gradient hook, via the masked reverse-mode adjoint
/// sweep ([`Fleet::eval_model_grad_into`]) — value and gradient match
/// the standalone [`crate::compile::CompiledObjective`]'s `value_grad`
/// bit for bit on the safety-model lowering (golden-pinned; in general
/// the gradient carries the engine's ulp-level adjoint
/// accumulation-order caveat when cross-model sharing reorders a
/// subexpression's consumers). Evaluation
/// failures surface as an `∞` value alongside the poisoned gradient
/// (finite-difference fallback signal), and the memo cache is bypassed,
/// exactly like the standalone twin.
impl safety_opt_optim::DifferentiableObjective for FleetModelObjective {
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        if x.len() != self.fleet.n_inputs() || grad.len() != x.len() {
            grad.fill(f64::NAN);
            return f64::INFINITY;
        }
        let ws = &mut *self.grad_ws.borrow_mut();
        let (_, hazards) = &mut *self.scratch.borrow_mut();
        let v = self
            .fleet
            .eval_model_grad_into(self.model, x, ws, hazards, grad);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }
}

/// One fleet model's cost as a [`safety_opt_optim::BatchObjective`]:
/// one parallel masked sweep per generation/round.
#[derive(Debug)]
pub struct FleetModelBatchObjective {
    fleet: Arc<Fleet>,
    model: usize,
    threads: usize,
    backend: ExecBackend,
}

impl safety_opt_optim::BatchObjective for FleetModelBatchObjective {
    fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>) {
        *out = FleetEvaluator::new(&self.fleet, self.threads)
            .backend(self.backend)
            .model_costs(self.model, points);
        for v in out.iter_mut() {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }
    }
}

/// The batched analytic-gradient hook the gradient-descent lockstep
/// driver ([`safety_opt_optim::multistart::MultiStart::minimize_batch`])
/// plugs into: one parallel masked adjoint sweep per round — and within
/// each worker, the engine's lane-blocked SoA adjoint path. Values map
/// non-finite to `∞` and gradients stay poisoned, pointwise identical
/// to [`FleetModelObjective`]'s sequential `value_grad`.
impl safety_opt_optim::BatchDifferentiableObjective for FleetModelBatchObjective {
    fn eval_grad_batch(&self, points: &[Vec<f64>], values: &mut Vec<f64>, grads: &mut Vec<f64>) {
        let (v, g) = FleetEvaluator::new(&self.fleet, self.threads)
            .backend(self.backend)
            .model_grads(self.model, points);
        *values = v;
        *grads = g;
        for v in values.iter_mut() {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledModel;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{complement, constant, exposure, from_fn, overtime, ProbExpr};
    use safety_opt_optim::{
        BatchDifferentiableObjective as _, BatchObjective as _, DifferentiableObjective as _,
        Objective as _,
    };
    use safety_opt_stats::dist::TruncatedNormal;

    fn family_member(lambda: f64, shared_alarm: &ProbExpr) -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let collision = Hazard::builder("collision")
            .residual("rest", 1e-8)
            .cut_set("ot1", [constant(1e-3).unwrap(), overtime(transit, t1)])
            .cut_set(
                "ot2",
                [
                    constant(1e-3).unwrap(),
                    complement(overtime(transit, t1)),
                    overtime(transit, t2),
                ],
            )
            .build();
        let alarm = Hazard::builder("alarm")
            .cut_set("hv", [shared_alarm.clone(), exposure(lambda, t2)])
            .build();
        SafetyModel::new(space)
            .hazard(collision, 100_000.0)
            .hazard(alarm, 1.0)
    }

    fn family(n: usize) -> Vec<SafetyModel> {
        let shared = constant(0.5).unwrap();
        (0..n)
            .map(|k| family_member(0.10 + 0.005 * k as f64, &shared))
            .collect()
    }

    fn grid_points() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        let mut t1 = 5.0;
        while t1 <= 30.0 {
            pts.push(vec![t1, 35.0 - t1]);
            t1 += 0.83;
        }
        pts
    }

    #[test]
    fn fleet_matches_per_model_compilation_bitwise() {
        let models = family(6);
        let fleet = CompiledFleet::compile_with_threads(&models, 3).unwrap();
        let points = grid_points();
        let (costs, hazards) = fleet.cost_and_hazards_all(&points).unwrap();
        for (k, model) in models.iter().enumerate() {
            let compiled = CompiledModel::compile_with_threads(model, 1).unwrap();
            let (mc, mh) = compiled.cost_and_hazards_batch(&points).unwrap();
            let batch = fleet.model_cost_batch(k, &points).unwrap();
            for (i, p) in points.iter().enumerate() {
                assert_eq!(
                    costs[i * 6 + k].to_bits(),
                    mc[i].to_bits(),
                    "cost of model {k} at {p:?}"
                );
                assert_eq!(batch[i].to_bits(), mc[i].to_bits());
                let range = fleet.hazard_range(k);
                let width = fleet.fleet().total_outputs();
                for h in 0..2 {
                    assert_eq!(
                        hazards[i * width + range.start + h].to_bits(),
                        mh[i * 2 + h].to_bits(),
                        "hazard {h} of model {k} at {p:?}"
                    );
                }
            }
        }
        // The collision subtree is shared by all six models.
        assert!(fleet.sharing() > 0.4, "sharing = {}", fleet.sharing());
    }

    #[test]
    fn fleet_objectives_match_compiled_objectives() {
        let models = family(3);
        let fleet = CompiledFleet::compile_with_threads(&models, 2).unwrap();
        for (k, model) in models.iter().enumerate() {
            let compiled = CompiledModel::compile_with_threads(model, 1).unwrap();
            let single = compiled.objective(false);
            let fo = fleet.model_objective(k, false);
            for p in grid_points() {
                assert_eq!(fo.eval(&p).to_bits(), single.eval(&p).to_bits());
            }
            // Wrong arity is infeasible, not a panic.
            assert_eq!(fo.eval(&[1.0]), f64::INFINITY);
            // Memoized twin caches revisits.
            let memo = fleet.model_objective(k, true);
            let a = memo.eval(&[19.0, 15.5]);
            assert_eq!(a, memo.eval(&[19.0, 15.5]));
            let stats = memo.cache_stats();
            assert_eq!((stats.hits, stats.misses), (1, 1));
            // Batch objective agrees pointwise.
            let bo = fleet.model_batch_objective(k);
            let pts = grid_points();
            let mut out = Vec::new();
            bo.eval_batch(&pts, &mut out);
            for (p, &v) in pts.iter().zip(&out) {
                assert_eq!(v.to_bits(), single.eval(p).to_bits());
            }
        }
    }

    #[test]
    fn soa_backend_matches_scalar_bitwise() {
        let models = family(4);
        let scalar = CompiledFleet::compile_with_threads(&models, 1)
            .unwrap()
            .with_backend(ExecBackend::Scalar);
        let soa = CompiledFleet::compile_with_threads(&models, 2)
            .unwrap()
            .with_backend(ExecBackend::Soa);
        assert_eq!(soa.backend(), ExecBackend::Soa);
        let points = grid_points();
        let (sc, sh) = scalar.cost_and_hazards_all(&points).unwrap();
        let (fc, fh) = soa.cost_and_hazards_all(&points).unwrap();
        assert_eq!(sc, fc);
        assert_eq!(sh, fh);
        for k in 0..4 {
            assert_eq!(
                scalar.model_cost_batch(k, &points).unwrap(),
                soa.model_cost_batch(k, &points).unwrap(),
                "model {k}"
            );
            let mut a = Vec::new();
            let mut b = Vec::new();
            scalar.model_batch_objective(k).eval_batch(&points, &mut a);
            soa.model_batch_objective(k).eval_batch(&points, &mut b);
            assert_eq!(a, b, "batch objective, model {k}");
        }
    }

    #[test]
    fn fleet_gradients_match_per_model_compilation_bitwise() {
        let models = family(5);
        let points = grid_points();
        for backend in [ExecBackend::Scalar, ExecBackend::Soa] {
            let fleet = CompiledFleet::compile_with_threads(&models, 3)
                .unwrap()
                .with_backend(backend);
            for (k, model) in models.iter().enumerate() {
                let compiled = CompiledModel::compile_with_threads(model, 1).unwrap();
                let (sv, sg) = compiled.gradient_batch(&points).unwrap();
                let (fv, fg) = fleet.model_gradient_batch(k, &points).unwrap();
                assert_eq!(sv, fv, "values, model {k}, {backend:?}");
                for (a, b) in sg.iter().zip(&fg) {
                    assert_eq!(a.to_bits(), b.to_bits(), "grads, model {k}, {backend:?}");
                }
            }
        }
    }

    #[test]
    fn fleet_differentiable_objectives_match_compiled_value_grad() {
        let models = family(3);
        let fleet = CompiledFleet::compile_with_threads(&models, 2).unwrap();
        let points = grid_points();
        for (k, model) in models.iter().enumerate() {
            let compiled = CompiledModel::compile_with_threads(model, 1).unwrap();
            let single = compiled.objective(false);
            let fo = fleet.model_objective(k, false);
            let mut gs = vec![0.0; 2];
            let mut gf = vec![0.0; 2];
            for p in &points {
                let vs = single.value_grad(p, &mut gs);
                let vf = fo.value_grad(p, &mut gf);
                assert_eq!(vs.to_bits(), vf.to_bits(), "value, model {k}");
                for (a, b) in gs.iter().zip(&gf) {
                    assert_eq!(a.to_bits(), b.to_bits(), "grad, model {k}");
                }
            }
            // Wrong arity poisons the gradient and returns ∞, like the
            // standalone twin.
            assert_eq!(fo.value_grad(&[1.0], &mut gf), f64::INFINITY);
            // Batch gradient hook agrees pointwise with the sequential
            // value_grad (the lockstep-vs-sequential invariant).
            let bo = fleet.model_batch_objective(k);
            let mut values = Vec::new();
            let mut grads = Vec::new();
            bo.eval_grad_batch(&points, &mut values, &mut grads);
            for (i, p) in points.iter().enumerate() {
                let v = fo.value_grad(p, &mut gf);
                assert_eq!(values[i].to_bits(), v.to_bits(), "batch value {i}");
                for (a, b) in grads[i * 2..i * 2 + 2].iter().zip(&gf) {
                    assert_eq!(a.to_bits(), b.to_bits(), "batch grad {i}");
                }
            }
        }
    }

    #[test]
    fn gd_lockstep_on_the_fleet_equals_sequential_gd() {
        use safety_opt_optim::gradient::GradientDescent;
        use safety_opt_optim::multistart::MultiStart;
        use safety_opt_optim::Minimizer;

        let models = family(3);
        let fleet = CompiledFleet::compile_with_threads(&models, 2).unwrap();
        let domain = models[0].space().domain().unwrap();
        for k in 0..models.len() {
            let lockstep = MultiStart::new(GradientDescent::default(), 3)
                .minimize_batch(&fleet.model_batch_objective(k), &domain)
                .unwrap();
            let sequential = MultiStart::new(GradientDescent::default(), 3)
                .minimize_differentiable(&fleet.model_objective(k, false), &domain)
                .unwrap();
            assert_eq!(lockstep.best_x, sequential.best_x, "model {k}");
            assert_eq!(
                lockstep.best_value.to_bits(),
                sequential.best_value.to_bits(),
                "model {k}"
            );
            assert_eq!(lockstep.evaluations, sequential.evaluations, "model {k}");
            assert_eq!(lockstep.iterations, sequential.iterations, "model {k}");
            assert_eq!(lockstep.termination, sequential.termination, "model {k}");
        }
    }

    #[test]
    fn closure_failures_surface_as_infinity() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let broken = Hazard::builder("h")
            .cut_set("bad", [from_fn("broken", |_| 2.0)])
            .build();
        let model = SafetyModel::new(space).hazard(broken, 1.0);
        let fleet = CompiledFleet::compile(std::slice::from_ref(&model)).unwrap();
        let costs = fleet.costs_all(&[vec![0.5]]).unwrap();
        assert!(costs[0].is_nan());
        let obj = fleet.model_objective(0, false);
        assert_eq!(obj.eval(&[0.5]), f64::INFINITY);
    }

    #[test]
    fn partial_compilation_rolls_back_bad_models() {
        let good = family(3);
        let mut space = ParameterSpace::new();
        space.parameter("t1", 5.0, 30.0).unwrap();
        space.parameter("t2", 5.0, 30.0).unwrap();
        let foreign = Hazard::builder("h")
            .cut_set("ok", [constant(0.5).unwrap()])
            .cut_set("bad", [exposure(0.1, crate::param::ParamId::new(7))])
            .build();
        let broken = SafetyModel::new(space).hazard(foreign, 1.0);
        let models = vec![good[0].clone(), broken, good[1].clone(), good[2].clone()];

        let (fleet, slots) = CompiledFleet::compile_partial(&models, 1);
        let fleet = fleet.expect("three models compile");
        assert_eq!(fleet.n_models(), 3);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].as_ref().unwrap(), &0);
        assert!(matches!(
            slots[1],
            Err(SafeOptError::UnknownParameter { .. })
        ));
        assert_eq!(slots[2].as_ref().unwrap(), &1);
        assert_eq!(slots[3].as_ref().unwrap(), &2);
        // The rollback must not disturb the surviving models: still
        // bit-identical to standalone compilation, with two hazards
        // each.
        for (model, slot) in [(&models[0], 0usize), (&models[2], 1), (&models[3], 2)] {
            assert_eq!(fleet.n_hazards(slot), 2);
            let compiled = CompiledModel::compile_with_threads(model, 1).unwrap();
            for p in grid_points() {
                let batch = fleet
                    .model_cost_batch(slot, std::slice::from_ref(&p))
                    .unwrap();
                assert_eq!(batch[0].to_bits(), compiled.cost(&p).unwrap().to_bits());
            }
        }

        // Nothing compiles: no fleet, every slot an error.
        let (none, slots) = CompiledFleet::compile_partial(&models[1..2], 1);
        assert!(none.is_none());
        assert!(slots[0].is_err());
        let (none, slots) = CompiledFleet::compile_partial(&[], 1);
        assert!(none.is_none());
        assert!(slots.is_empty());
    }

    #[test]
    fn dimension_mismatches_are_detected() {
        let mut models = family(2);
        let mut space = ParameterSpace::new();
        space.parameter("only", 0.0, 1.0).unwrap();
        let h = Hazard::builder("h")
            .cut_set("c", [constant(0.1).unwrap()])
            .build();
        models.push(SafetyModel::new(space).hazard(h, 1.0));
        assert!(matches!(
            CompiledFleet::compile(&models),
            Err(SafeOptError::DimensionMismatch { .. })
        ));

        let fleet = CompiledFleet::compile(&family(2)).unwrap();
        assert!(matches!(
            fleet.costs_all(&[vec![1.0]]),
            Err(SafeOptError::DimensionMismatch { .. })
        ));
        assert!(CompiledFleet::compile(&[]).is_err());
    }
}
