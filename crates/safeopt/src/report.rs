//! Analysis reports: one call, one reviewable document.
//!
//! The paper closes on the observation that industrial adoption needs
//! "intuitive tool support" and an integrated methodology. [`AnalysisReport`]
//! is that front door: given a [`SafetyModel`] and a baseline
//! configuration, it runs the full safety-optimization pipeline —
//! optimization, baseline comparison, per-parameter sensitivity — and
//! renders a self-contained Markdown document a safety engineer can review
//! and archive.

use crate::model::SafetyModel;
use crate::optimize::{ConfigurationComparison, OptimalConfiguration, SafetyOptimizer};
use crate::sensitivity::{sweep, tornado, Sweep, TornadoBar};
use crate::Result;
use std::fmt::Write as _;

/// A complete safety-optimization analysis of one model.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Model display name used in the heading.
    pub title: String,
    /// The baseline (current) configuration.
    pub baseline: Vec<f64>,
    /// The optimization result.
    pub optimum: OptimalConfiguration,
    /// Baseline-vs-optimum comparison.
    pub comparison: ConfigurationComparison,
    /// Tornado bars at the optimum (sorted by swing).
    pub tornado: Vec<TornadoBar>,
    /// One sweep per parameter, around the optimum.
    pub sweeps: Vec<Sweep>,
}

impl AnalysisReport {
    /// Runs the full pipeline on `model` with `baseline` as the current
    /// configuration.
    ///
    /// # Errors
    ///
    /// Model-validation, optimization, and sensitivity errors.
    pub fn run(title: impl Into<String>, model: &SafetyModel, baseline: &[f64]) -> Result<Self> {
        let optimum = SafetyOptimizer::new(model).run()?;
        let comparison =
            ConfigurationComparison::compute(model, baseline, optimum.point().values())?;
        let tornado = tornado(model, optimum.point().values())?;
        let mut sweeps = Vec::with_capacity(model.space().len());
        for (id, _) in model.space().iter() {
            sweeps.push(sweep(model, id, optimum.point().values(), 17)?);
        }
        Ok(Self {
            title: title.into(),
            baseline: baseline.to_vec(),
            optimum,
            comparison,
            tornado,
            sweeps,
        })
    }

    /// Renders the report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# Safety optimization report — {}\n", self.title);

        let _ = writeln!(md, "## Recommended configuration\n");
        let _ = writeln!(
            md,
            "`{}` with mean cost `{:.6e}`\n",
            self.optimum.point(),
            self.optimum.cost()
        );
        let _ = writeln!(
            md,
            "(found in {} objective evaluations, {})\n",
            self.optimum.outcome().evaluations,
            self.optimum.outcome().termination
        );

        let _ = writeln!(md, "## Against the current configuration\n");
        let _ = writeln!(md, "| hazard | current | recommended | change |");
        let _ = writeln!(md, "|---|---|---|---|");
        for h in &self.comparison.hazards {
            let _ = writeln!(
                md,
                "| {} | {:.4e} | {:.4e} | {:+.2} % |",
                h.hazard,
                h.baseline,
                h.candidate,
                100.0 * h.relative_change
            );
        }
        let _ = writeln!(
            md,
            "\nMean cost {:.6e} → {:.6e} (**{:+.2} %**).\n",
            self.comparison.baseline_cost,
            self.comparison.candidate_cost,
            -100.0 * self.comparison.cost_improvement()
        );

        let _ = writeln!(md, "## Which parameter matters (tornado)\n");
        let _ = writeln!(
            md,
            "| parameter | cost at low end | cost at high end | swing |"
        );
        let _ = writeln!(md, "|---|---|---|---|");
        for bar in &self.tornado {
            let _ = writeln!(
                md,
                "| {} | {:.4e} | {:.4e} | {:.4e} |",
                bar.parameter,
                bar.cost_at_lo,
                bar.cost_at_hi,
                bar.swing()
            );
        }

        let _ = writeln!(md, "\n## Sensitivity around the optimum\n");
        for s in &self.sweeps {
            let best = s.best().map(|b| b.value).unwrap_or(f64::NAN);
            let _ = writeln!(
                md,
                "* `{}`: sweep minimum at {:.3}; cost range [{:.4e}, {:.4e}] across the domain",
                s.parameter,
                best,
                s.points
                    .iter()
                    .map(|p| p.cost)
                    .fold(f64::INFINITY, f64::min),
                s.points
                    .iter()
                    .map(|p| p.cost)
                    .fold(f64::NEG_INFINITY, f64::max),
            );
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use safety_opt_stats::dist::TruncatedNormal;

    fn model() -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t = space
            .parameter_with_unit("timer", 5.0, 30.0, "min")
            .unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let col = Hazard::builder("collision")
            .cut_set("ot", [overtime(transit, t)])
            .build();
        let alr = Hazard::builder("alarm")
            .cut_set("hv", [constant(0.5).unwrap(), exposure(0.13, t)])
            .build();
        SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0)
    }

    #[test]
    fn report_runs_and_renders() {
        let m = model();
        let report = AnalysisReport::run("watchdog study", &m, &[30.0]).unwrap();
        let md = report.to_markdown();
        // Structure checks.
        assert!(md.starts_with("# Safety optimization report — watchdog study"));
        assert!(md.contains("## Recommended configuration"));
        assert!(md.contains("| collision |"));
        assert!(md.contains("| alarm |"));
        assert!(md.contains("tornado"));
        assert!(md.contains("`timer`"));
        // The optimum beats the baseline.
        assert!(report.comparison.cost_improvement() > 0.0);
        // One sweep per parameter.
        assert_eq!(report.sweeps.len(), 1);
        assert_eq!(report.sweeps[0].points.len(), 17);
    }

    #[test]
    fn report_errors_on_invalid_models() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let empty = SafetyModel::new(space);
        assert!(AnalysisReport::run("x", &empty, &[0.5]).is_err());
    }

    #[test]
    fn markdown_tables_are_well_formed() {
        let m = model();
        let report = AnalysisReport::run("t", &m, &[30.0]).unwrap();
        let md = report.to_markdown();
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "broken table row: {line}");
        }
    }
}
