//! Uncertainty propagation — the paper's Sect. V outlook made concrete.
//!
//! *"It is our experience, that the results of this analysis depend a lot
//! on how well the statistical model reflects reality"* — and the paper
//! points to **stochastic programming** as the natural extension. This
//! module implements the Monte-Carlo form of that idea: the analyst
//! supplies a *sampler* that draws whole safety models from the joint
//! distribution of the uncertain constants (failure rates estimated from
//! finite data, disputed cost ratios, …), and the analysis propagates that
//! uncertainty to
//!
//! * the cost and hazard probabilities of a **fixed configuration**
//!   ([`propagate`]), and
//! * the **optimal configuration itself** ([`optimize_under_uncertainty`])
//!   — how much do the optimal timer runtimes move when the model
//!   constants wiggle within their credible ranges?
//!
//! ```
//! use safety_opt_core::uncertainty::propagate;
//! # use safety_opt_core::model::{Hazard, SafetyModel};
//! # use safety_opt_core::param::ParameterSpace;
//! # use safety_opt_core::pprob::constant;
//! use rand::Rng;
//!
//! # fn main() -> Result<(), safety_opt_core::SafeOptError> {
//! let report = propagate(
//!     |rng| {
//!         // Basic-event probability known only to within a factor ~2:
//!         let p = 1e-4 * (1.0 + rng.gen::<f64>());
//!         let mut space = ParameterSpace::new();
//!         space.parameter("t", 0.0, 1.0)?;
//!         let hazard = Hazard::builder("h").cut_set("c", [constant(p)?]).build();
//!         Ok(SafetyModel::new(space).hazard(hazard, 1000.0))
//!     },
//!     &[0.5],
//!     200,
//!     42,
//! )?;
//! let (lo, hi) = report.cost.mean_confidence_interval(0.95)?;
//! assert!(lo < 0.15 && hi > 0.15); // E[cost] = 1000 · 1.5e-4
//! # Ok(())
//! # }
//! ```

use crate::fleet::CompiledFleet;
use crate::model::SafetyModel;
use crate::optimize::SafetyOptimizer;
use crate::{Result, SafeOptError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safety_opt_stats::mc::RunningStats;

/// Draws the whole Monte-Carlo batch of models up front — the shared
/// structure of the sampled family then lowers and evaluates once
/// through a fleet (see [`crate::fleet`]).
fn sample_models<F>(sampler: &mut F, runs: usize, seed: u64) -> Result<Vec<SafetyModel>>
where
    F: FnMut(&mut StdRng) -> Result<SafetyModel>,
{
    if runs == 0 {
        return Err(SafeOptError::Optim(
            safety_opt_optim::OptimError::InvalidConfig {
                option: "runs",
                requirement: "must be >= 1",
            },
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut models = Vec::with_capacity(runs);
    for _ in 0..runs {
        models.push(sampler(&mut rng)?);
    }
    Ok(models)
}

/// Distribution of cost and hazard probabilities at a fixed configuration
/// under model uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationReport {
    /// The evaluated configuration.
    pub point: Vec<f64>,
    /// Monte-Carlo statistics of the cost.
    pub cost: RunningStats,
    /// Per-hazard Monte-Carlo statistics (order of the first sampled
    /// model's hazards).
    pub hazards: Vec<RunningStats>,
    /// Models sampled.
    pub runs: usize,
}

/// Evaluates `point` under `runs` models drawn from `sampler`.
///
/// The sampler receives a seeded RNG and returns a fresh [`SafetyModel`];
/// it is free to perturb probabilities, rates, costs, or even structure.
///
/// # Errors
///
/// Propagates sampler and evaluation errors; requires `runs >= 1` and a
/// consistent hazard count across sampled models
/// ([`SafeOptError::DimensionMismatch`] otherwise).
pub fn propagate<F>(
    mut sampler: F,
    point: &[f64],
    runs: usize,
    seed: u64,
) -> Result<PropagationReport>
where
    F: FnMut(&mut StdRng) -> Result<SafetyModel>,
{
    // Fleet path: the whole Monte-Carlo batch compiles into one shared
    // op arena (the sampled models differ only in a few constants, so
    // most ops dedupe across models), and a single arena sweep at
    // `point` evaluates every sample — bit-identical to compiling and
    // evaluating each model's tape alone.
    let models = sample_models(&mut sampler, runs, seed)?;
    let fleet = CompiledFleet::compile(&models)?;
    let (costs, flat) = fleet.cost_and_hazards_all(&[point.to_vec()])?;
    let mut cost = RunningStats::new();
    let mut hazards: Vec<RunningStats> = Vec::new();
    for (k, model) in models.iter().enumerate() {
        let range = fleet.hazard_range(k);
        let model_probs = &flat[range];
        let model_cost = costs[k];
        let (probs, cost_value) =
            if model_cost.is_finite() && model_probs.iter().all(|v| v.is_finite()) {
                (model_probs.to_vec(), model_cost)
            } else {
                // Resolve closure failures to the scalar path's typed
                // error.
                (model.hazard_probabilities(point)?, model.cost(point)?)
            };
        if hazards.is_empty() {
            hazards = vec![RunningStats::new(); probs.len()];
        } else if hazards.len() != probs.len() {
            return Err(SafeOptError::DimensionMismatch {
                expected: hazards.len(),
                got: probs.len(),
            });
        }
        for (stat, p) in hazards.iter_mut().zip(&probs) {
            stat.push(*p);
        }
        cost.push(cost_value);
    }
    Ok(PropagationReport {
        point: point.to_vec(),
        cost,
        hazards,
        runs,
    })
}

/// Distribution of the *optimum* under model uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimumDistribution {
    /// Per-parameter statistics of the arg-min.
    pub arg_min: Vec<RunningStats>,
    /// Statistics of the minimal cost.
    pub min_cost: RunningStats,
    /// Models sampled (failed optimizations are skipped and counted
    /// here).
    pub runs: usize,
    /// Optimizations that failed (e.g. fully infeasible sampled models).
    pub failures: usize,
}

impl OptimumDistribution {
    /// Robustness summary: the largest per-parameter standard deviation
    /// of the arg-min — small means the recommendation is insensitive to
    /// the model uncertainty.
    pub fn arg_min_spread(&self) -> f64 {
        self.arg_min
            .iter()
            .map(RunningStats::sample_std_dev)
            .fold(0.0, f64::max)
    }
}

/// Optimizes each of `runs` sampled models and reports the distribution
/// of the optimal configuration.
///
/// # Errors
///
/// Propagates sampler errors; requires `runs >= 1`. Compilation and
/// optimizer failures on individual samples are tolerated (counted in
/// [`OptimumDistribution::failures`]) as long as at least one sample
/// optimizes successfully. This per-sample tolerance covers the typed
/// engine errors too — a blown [`safety_opt_engine::CompileBudget`], an
/// expired deadline, or an injected fault
/// ([`SafeOptError::Engine`](crate::SafeOptError::Engine)) on one sample
/// increments `failures` instead of aborting the whole study.
pub fn optimize_under_uncertainty<F>(
    mut sampler: F,
    runs: usize,
    seed: u64,
) -> Result<OptimumDistribution>
where
    F: FnMut(&mut StdRng) -> Result<SafetyModel>,
{
    // Fleet path: one shared-arena compilation for the whole batch
    // (samples that fail to compile are rolled back and counted as
    // failures, like every other per-sample fault); each sample's
    // multi-start gradient-descent restarts then run in lockstep
    // against its masked fleet objective, submitting every restart's
    // value+gradient probes as one analytic-adjoint batch per round
    // (`MultiStart::minimize_batch` over the engine's SoA adjoint
    // sweep) — bit-identical to optimizing each sample sequentially
    // with the same gradient-descent restarts.
    let models = sample_models(&mut sampler, runs, seed)?;
    let (fleet, slots) =
        CompiledFleet::compile_partial(&models, safety_opt_engine::default_threads());
    let mut arg_min: Vec<RunningStats> = Vec::new();
    let mut min_cost = RunningStats::new();
    let mut failures = 0usize;
    let mut last_error: Option<SafeOptError> = None;
    for (model, slot) in models.iter().zip(slots) {
        let result = match slot {
            Ok(k) => {
                let fleet = fleet.as_ref().expect("fleet exists when a model compiled");
                let objective = fleet.model_batch_objective(k);
                SafetyOptimizer::new(model)
                    .starts(4)
                    .with_batch_differentiable_objective(&objective)
                    .run()
            }
            Err(e) => Err(e),
        };
        match result {
            Ok(optimum) => {
                let x = optimum.point().values();
                if arg_min.is_empty() {
                    arg_min = vec![RunningStats::new(); x.len()];
                }
                for (stat, v) in arg_min.iter_mut().zip(x) {
                    stat.push(*v);
                }
                min_cost.push(optimum.cost());
            }
            Err(e) => {
                failures += 1;
                last_error = Some(e);
            }
        }
    }
    if min_cost.count() == 0 {
        return Err(last_error.expect("runs >= 1 and all failed"));
    }
    Ok(OptimumDistribution {
        arg_min,
        min_cost,
        runs,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure, overtime};
    use rand::Rng;
    use safety_opt_stats::dist::TruncatedNormal;

    fn sampled_model(rng: &mut StdRng) -> Result<SafetyModel> {
        // Tradeoff model with an uncertain HV rate λ ∈ [0.1, 0.16].
        let lambda = 0.1 + 0.06 * rng.gen::<f64>();
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 5.0, 30.0)?;
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0)?;
        let col = Hazard::builder("col")
            .cut_set("ot", [overtime(transit, t)])
            .build();
        let alr = Hazard::builder("alr")
            .cut_set("hv", [constant(0.5)?, exposure(lambda, t)])
            .build();
        Ok(SafetyModel::new(space)
            .hazard(col, 100_000.0)
            .hazard(alr, 1.0))
    }

    #[test]
    fn propagation_statistics_are_sane() {
        let report = propagate(sampled_model, &[15.0], 200, 1).unwrap();
        assert_eq!(report.runs, 200);
        assert_eq!(report.cost.count(), 200);
        assert_eq!(report.hazards.len(), 2);
        // Collision hazard does not depend on λ: zero variance.
        assert!(report.hazards[0].sample_variance() < 1e-30);
        // Alarm hazard does: strictly positive variance.
        assert!(report.hazards[1].sample_variance() > 0.0);
        // Mean alarm probability near the λ-midpoint value.
        let mid = 0.5 * (1.0 - (-0.13f64 * 15.0).exp());
        assert!((report.hazards[1].mean() - mid).abs() < 0.02);
    }

    #[test]
    fn propagation_is_deterministic_per_seed() {
        let a = propagate(sampled_model, &[12.0], 50, 7).unwrap();
        let b = propagate(sampled_model, &[12.0], 50, 7).unwrap();
        assert_eq!(a, b);
        let c = propagate(sampled_model, &[12.0], 50, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn optimum_distribution_tracks_uncertainty() {
        let dist = optimize_under_uncertainty(sampled_model, 24, 3).unwrap();
        assert_eq!(dist.failures, 0);
        assert_eq!(dist.arg_min.len(), 1);
        // The optimum moves with λ but stays in a sane band.
        let mean_t = dist.arg_min[0].mean();
        assert!(mean_t > 9.0 && mean_t < 17.0, "mean t* = {mean_t}");
        assert!(dist.arg_min_spread() > 0.0);
        assert!(
            dist.arg_min_spread() < 2.0,
            "spread {}",
            dist.arg_min_spread()
        );
        assert!(dist.min_cost.mean() > 0.0);
    }

    #[test]
    fn uncompilable_samples_count_as_failures_not_hard_errors() {
        // One sample references a parameter outside its space: its
        // compilation fails, it is counted in `failures`, and the
        // healthy samples still aggregate (the pre-fleet per-sample
        // tolerance).
        let mut k = 0usize;
        let dist = optimize_under_uncertainty(
            move |rng| {
                k += 1;
                if k == 2 {
                    let mut space = ParameterSpace::new();
                    space.parameter("t", 5.0, 30.0)?;
                    let h = Hazard::builder("h")
                        .cut_set("e", [exposure(0.1, crate::param::ParamId::new(9))])
                        .build();
                    Ok(SafetyModel::new(space).hazard(h, 1.0))
                } else {
                    sampled_model(rng)
                }
            },
            5,
            3,
        )
        .unwrap();
        assert_eq!(dist.runs, 5);
        assert_eq!(dist.failures, 1);
        assert_eq!(dist.min_cost.count(), 4);

        // All samples uncompilable: the last typed error surfaces.
        let all_bad = optimize_under_uncertainty(
            |_| {
                let mut space = ParameterSpace::new();
                space.parameter("t", 5.0, 30.0)?;
                let h = Hazard::builder("h")
                    .cut_set("e", [exposure(0.1, crate::param::ParamId::new(9))])
                    .build();
                Ok(SafetyModel::new(space).hazard(h, 1.0))
            },
            3,
            3,
        );
        assert!(matches!(
            all_bad,
            Err(SafeOptError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn zero_runs_is_an_error() {
        assert!(propagate(sampled_model, &[12.0], 0, 1).is_err());
        assert!(optimize_under_uncertainty(sampled_model, 0, 1).is_err());
    }

    #[test]
    fn sampler_errors_propagate() {
        let result = propagate(|_| Err(SafeOptError::EmptyModel), &[1.0], 5, 1);
        assert!(matches!(result, Err(SafeOptError::EmptyModel)));
    }

    /// A model whose opaque closure factor yields an invalid probability
    /// past `t = 0.5` — the compiled tape turns that into NaN, the
    /// scalar interpreter into a typed error.
    fn poisoned_model(shift: f64) -> Result<SafetyModel> {
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.0, 1.0)?;
        let good = Hazard::builder("good")
            .cut_set("e", [exposure(0.5, t)])
            .build();
        let bad = Hazard::builder("bad")
            .cut_set(
                "c",
                [crate::pprob::from_fn("poisoned", move |v| {
                    let x = v.get(crate::param::ParamId::new(0)).unwrap_or(0.0);
                    // Valid probability below the threshold, invalid
                    // (> 1) above it.
                    if x <= 0.5 {
                        0.25 + shift
                    } else {
                        2.0
                    }
                })],
            )
            .build();
        Ok(SafetyModel::new(space).hazard(good, 10.0).hazard(bad, 1.0))
    }

    #[test]
    fn non_finite_tape_results_fall_back_to_the_scalar_paths_typed_error() {
        // At t = 0.8 the closure produces 2.0: the tape evaluates the
        // hazard to NaN, and the fallback branch must resolve that
        // through the scalar interpreter's typed error instead of
        // pushing NaN into the running statistics.
        let result = propagate(|_| poisoned_model(0.0), &[0.8], 8, 3);
        match result {
            Err(SafeOptError::InvalidProbability { expression, value }) => {
                assert_eq!(expression, "poisoned");
                assert_eq!(value, 2.0);
            }
            other => panic!("expected InvalidProbability, got {other:?}"),
        }

        // One poisoned sample inside an otherwise healthy batch still
        // surfaces the typed error (never NaN statistics).
        let mut k = 0usize;
        let mixed = propagate(
            move |_| {
                k += 1;
                if k == 3 {
                    poisoned_model(0.0)
                } else {
                    let mut space = ParameterSpace::new();
                    let t = space.parameter("t", 0.0, 1.0)?;
                    let good = Hazard::builder("good")
                        .cut_set("e", [exposure(0.5, t)])
                        .build();
                    let also = Hazard::builder("bad")
                        .cut_set("c", [constant(0.25)?])
                        .build();
                    Ok(SafetyModel::new(space).hazard(good, 10.0).hazard(also, 1.0))
                }
            },
            &[0.8],
            5,
            3,
        );
        assert!(matches!(
            mixed,
            Err(SafeOptError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn valid_closures_propagate_without_the_fallback_distorting_stats() {
        // Below the poison threshold the closure is a valid constant:
        // the tape path is finite, the fallback never fires, and the
        // statistics match the scalar interpreter exactly.
        let report = propagate(|_| poisoned_model(0.0), &[0.3], 16, 3).unwrap();
        assert_eq!(report.cost.count(), 16);
        assert!(report.cost.mean().is_finite());
        let model = poisoned_model(0.0).unwrap();
        let scalar_probs = model.hazard_probabilities(&[0.3]).unwrap();
        let scalar_cost = model.cost(&[0.3]).unwrap();
        assert_eq!(
            report.hazards[0].mean().to_bits(),
            scalar_probs[0].to_bits()
        );
        assert_eq!(
            report.hazards[1].mean().to_bits(),
            scalar_probs[1].to_bits()
        );
        assert_eq!(report.cost.mean().to_bits(), scalar_cost.to_bits());
        assert_eq!(report.hazards[1].sample_variance(), 0.0);
    }

    #[test]
    fn inconsistent_hazard_counts_are_detected() {
        let mut toggle = false;
        let result = propagate(
            move |_| {
                toggle = !toggle;
                let mut space = ParameterSpace::new();
                space.parameter("t", 0.0, 1.0)?;
                let h = Hazard::builder("h").cut_set("c", [constant(0.1)?]).build();
                let mut model = SafetyModel::new(space).hazard(h.clone(), 1.0);
                if toggle {
                    model = model.hazard(h, 1.0);
                }
                Ok(model)
            },
            &[0.5],
            4,
            1,
        );
        assert!(matches!(
            result,
            Err(SafeOptError::DimensionMismatch { .. })
        ));
    }
}
