//! Safety optimization — the core contribution of Ortmeier & Reif,
//! *"Safety Optimization: A combination of fault tree analysis and
//! optimization techniques"*, DSN 2004.
//!
//! The method in one paragraph: run (quantitative) fault tree analysis to
//! get minimal cut sets per hazard; generalize the cut-set probabilities
//! with **constraint probabilities** (how likely the environment is "bad
//! enough" — the paper's Eq. 2) and **parameterized probabilities**
//! (functions of free system parameters such as timer runtimes — Eqs.
//! 3–4); assign each hazard a cost and form the weighted-sum **cost
//! function** `f_cost(X) = Σᵢ Cost_i · P(Hᵢ)(X)` (Eqs. 5–6); then minimize
//! it over the compact parameter domain with mathematical optimization.
//! The minimizer is the optimal system configuration.
//!
//! Module map:
//!
//! * [`param`] — free parameters and parameter spaces (compact intervals).
//! * [`pprob`] — parameterized probability expressions: constants,
//!   closures, overtime tails `P(X > T)` of a transit-time distribution,
//!   Poisson exposure windows `1 − e^{−λT}`, complements and products.
//! * [`model`] — hazards as parameterized minimal cut sets, safety models
//!   as hazards + costs over one parameter space; bridging from
//!   [`safety_opt_fta`] fault trees.
//! * [`importance`] — component importance (Birnbaum, criticality,
//!   Fussell–Vesely, RAW/RRW) at a parameter point, from one adjoint
//!   gradient per tree-derived hazard.
//! * [`optimize`] — the optimization front-end and baseline-vs-optimum
//!   comparison reports.
//! * [`surface`] — cost-surface grids (the paper's Fig. 5 3-D plot) with
//!   CSV and ASCII-heat-map output.
//! * [`sensitivity`] — one-at-a-time sweeps, tornado tables and local
//!   gradients; the tool behind the paper's Fig. 6 scaling analysis.
//! * [`pareto`] — the Pareto front between opposed hazards (collision vs
//!   false alarm), making the trade-off the cost weights resolve visible.
//! * [`uncertainty`] — Monte-Carlo propagation of model-constant
//!   uncertainty to costs and to the optimum itself (the paper's
//!   stochastic-programming outlook, Sect. V).
//! * [`report`] — a one-call Markdown analysis report (optimum,
//!   comparison, sensitivity) for review and archival.
//!
//! # Example
//!
//! A miniature two-hazard model with one free parameter:
//!
//! ```
//! use safety_opt_core::model::{Hazard, SafetyModel};
//! use safety_opt_core::param::ParameterSpace;
//! use safety_opt_core::pprob::{constant, exposure, overtime};
//! use safety_opt_core::optimize::SafetyOptimizer;
//! use safety_opt_stats::dist::TruncatedNormal;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut space = ParameterSpace::new();
//! let t = space.parameter("timer", 5.0, 30.0)?; // minutes
//!
//! let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0)?;
//! let collision = Hazard::builder("collision")
//!     .cut_set("overtime", [overtime(transit, t)])
//!     .build();
//! let false_alarm = Hazard::builder("false-alarm")
//!     .cut_set("exposure", [constant(0.5)?, exposure(0.13, t)])
//!     .build();
//!
//! let model = SafetyModel::new(space)
//!     .hazard(collision, 100_000.0)
//!     .hazard(false_alarm, 1.0);
//!
//! let optimum = SafetyOptimizer::new(&model).run()?;
//! let t_star = optimum.point().value("timer").unwrap();
//! assert!(t_star > 10.0 && t_star < 20.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
mod error;
pub mod fleet;
pub mod importance;
pub mod model;
pub mod optimize;
pub mod param;
pub mod pareto;
pub mod pprob;
pub mod report;
pub mod sensitivity;
pub mod surface;
pub mod uncertainty;

pub use error::SafeOptError;
// The quantification selector of `SafetyModel::with_quant_method`,
// re-exported at the root next to `ExecBackend` — the two knobs that
// choose *what* is computed (rare-event vs BDD-exact) and *how* (scalar
// vs SoA sweeps).
pub use model::{default_quant_method, QuantMethod};
// The backend selector of `CompiledModel::with_backend` /
// `CompiledFleet::with_backend`, re-exported so facade users can name
// it without depending on the engine crate directly.
pub use safety_opt_engine::ExecBackend;

/// Convenience result alias for fallible safety-optimization operations.
pub type Result<T> = std::result::Result<T, SafeOptError>;
