use std::fmt;

/// Error type for safety-optimization operations.
///
/// Wraps the substrate errors (statistics, optimization, FTA) and adds
/// model-level failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SafeOptError {
    /// A parameter name was declared twice in one space.
    DuplicateParameter {
        /// The offending name.
        name: String,
    },
    /// A parameter name or id was not found in the space.
    UnknownParameter {
        /// The requested name/id.
        reference: String,
    },
    /// A parameter point had the wrong dimensionality for its space.
    DimensionMismatch {
        /// Expected dimensionality (the space's).
        expected: usize,
        /// Supplied dimensionality.
        got: usize,
    },
    /// A probability expression produced a value outside `[0, 1]`.
    InvalidProbability {
        /// The expression's label.
        expression: String,
        /// The offending value.
        value: f64,
    },
    /// The model has no hazards — nothing to optimize.
    EmptyModel,
    /// A hazard cost was negative or non-finite.
    InvalidCost {
        /// Hazard name.
        hazard: String,
        /// The rejected cost.
        value: f64,
    },
    /// Underlying statistics error.
    Stats(safety_opt_stats::StatsError),
    /// Underlying optimization error.
    Optim(safety_opt_optim::OptimError),
    /// Underlying fault-tree error.
    Fta(safety_opt_fta::FtaError),
    /// Underlying engine error: a blown compile budget, an expired
    /// evaluation deadline, an isolated worker panic, or an injected
    /// fault (see `safety_opt_engine::error`).
    Engine(safety_opt_engine::EngineError),
}

impl fmt::Display for SafeOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafeOptError::DuplicateParameter { name } => {
                write!(f, "duplicate parameter {name:?}")
            }
            SafeOptError::UnknownParameter { reference } => {
                write!(f, "unknown parameter {reference:?}")
            }
            SafeOptError::DimensionMismatch { expected, got } => {
                write!(f, "parameter point has {got} values, space has {expected}")
            }
            SafeOptError::InvalidProbability { expression, value } => {
                write!(f, "expression {expression:?} produced probability {value}")
            }
            SafeOptError::EmptyModel => write!(f, "safety model has no hazards"),
            SafeOptError::InvalidCost { hazard, value } => {
                write!(f, "invalid cost {value} for hazard {hazard:?}")
            }
            SafeOptError::Stats(e) => write!(f, "statistics error: {e}"),
            SafeOptError::Optim(e) => write!(f, "optimization error: {e}"),
            SafeOptError::Fta(e) => write!(f, "fault-tree error: {e}"),
            SafeOptError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SafeOptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SafeOptError::Stats(e) => Some(e),
            SafeOptError::Optim(e) => Some(e),
            SafeOptError::Fta(e) => Some(e),
            SafeOptError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<safety_opt_stats::StatsError> for SafeOptError {
    fn from(e: safety_opt_stats::StatsError) -> Self {
        SafeOptError::Stats(e)
    }
}

impl From<safety_opt_optim::OptimError> for SafeOptError {
    fn from(e: safety_opt_optim::OptimError) -> Self {
        SafeOptError::Optim(e)
    }
}

impl From<safety_opt_fta::FtaError> for SafeOptError {
    fn from(e: safety_opt_fta::FtaError) -> Self {
        SafeOptError::Fta(e)
    }
}

impl From<safety_opt_engine::EngineError> for SafeOptError {
    fn from(e: safety_opt_engine::EngineError) -> Self {
        SafeOptError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_wrapped_errors() {
        let e = SafeOptError::from(safety_opt_optim::OptimError::EmptyDomain);
        assert!(e.to_string().contains("optimization error"));
        let e = SafeOptError::from(safety_opt_fta::FtaError::NoRoot);
        assert!(e.to_string().contains("fault-tree error"));
        let e = SafeOptError::from(safety_opt_engine::EngineError::BudgetExceeded {
            what: "tape ops",
            limit: 10,
            used: 12,
        });
        assert!(e.to_string().contains("engine error"));
        assert!(e.to_string().contains("budget"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn source_chains_to_substrate() {
        use std::error::Error;
        let e = SafeOptError::from(safety_opt_stats::StatsError::InvalidProbability { value: 2.0 });
        assert!(e.source().is_some());
        let e = SafeOptError::EmptyModel;
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SafeOptError>();
    }
}
