//! Compilation of safety models onto the evaluation engine.
//!
//! [`CompiledModel::compile`] lowers a [`SafetyModel`] — every hazard's
//! parameterized cut sets — into one flat [`safety_opt_engine`] op-tape:
//! constants fold (residual cut sets become their hazard's bias),
//! subexpressions shared across cut sets and hazards deduplicate via the
//! expression nodes' shared identity, cut-set products and hazard sums
//! fuse into n-ary ops, and the truncated-normal overtime kernel runs on
//! the engine's fixed-cost `erfc`. Opaque [`pprob::from_fn`] closures
//! lower to fallback ops that delegate to the scalar interpreter for
//! just that factor.
//!
//! One compiled evaluation is an allocation-free tape sweep; batches
//! shard across threads with deterministic chunking. The analysis
//! front-ends ([`surface`](crate::surface),
//! [`sensitivity`](crate::sensitivity), [`pareto`](crate::pareto),
//! [`uncertainty`](crate::uncertainty), [`optimize`](crate::optimize))
//! all route their inner loops through this path behind their unchanged
//! public APIs; the equivalence contract (compiled == scalar to ≤1e-12,
//! thread-count independent) is enforced by property tests.
//!
//! [`pprob::from_fn`]: crate::pprob::from_fn

use crate::model::{Hazard, QuantMethod, SafetyModel};
use crate::param::{ParamValues, ParameterSpace};
use crate::pprob::{ExprStructure, ProbExpr};
use crate::{Result, SafeOptError};
use safety_opt_engine::{
    faultinject, BatchEvaluator, CacheStats, CompileBudget, CompileStats, DegradeMode, EngineError,
    EvalDeadline, ExecBackend, GradWorkspace, QuantizedCache, Tape, TapeBuilder, Value,
};
use safety_opt_fta::bdd::ShannonRef;
use safety_opt_fta::modular::PlanInput;
use safety_opt_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Hazards whose exact BDD lowering blew its node budget and degraded
/// to rare-event lowering (`SAFETY_OPT_DEGRADE=fallback`).
static DEGRADE_FALLBACKS: telemetry::Counter = telemetry::Counter::new("safeopt.degrade.fallback");

/// Warns once per process when graceful degradation first kicks in;
/// every further degradation is visible in the
/// `safeopt.degrade.fallback` telemetry counter.
fn warn_degrade_fallback_once(hazard: &str, nodes: usize, limit: usize) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "safety-opt: hazard {hazard:?} has a {nodes}-node BDD plan over the \
             {limit}-node budget; degrading to rare-event lowering \
             (SAFETY_OPT_DEGRADE=fallback). Probabilities for this hazard are \
             conservative rare-event approximations, not BDD-exact. \
             Further degradations are counted in safeopt.degrade.fallback."
        );
    });
}

/// A safety model compiled to an engine tape.
///
/// Cheap to clone (the tape is shared). Thread-safe: batch methods shard
/// across a scoped worker pool sized by `threads` and sweep each chunk
/// on the configured execution backend (the `SAFETY_OPT_BACKEND` env
/// default, or [`with_backend`](Self::with_backend)); results are
/// bit-identical for every thread count and backend.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    tape: Arc<Tape>,
    space: Arc<ParameterSpace>,
    threads: usize,
    backend: ExecBackend,
    quant: QuantMethod,
    /// The source hazards (names + exact BDD structures) — what the
    /// point-importance API ([`crate::importance`]) walks.
    hazards: Arc<Vec<Hazard>>,
}

impl CompiledModel {
    /// Compiles `model` with machine-sized parallelism for batches.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::UnknownParameter`] if an expression references a
    /// parameter outside the model's space.
    pub fn compile(model: &SafetyModel) -> Result<Self> {
        Self::compile_with_threads(model, safety_opt_engine::default_threads())
    }

    /// Compiles `model` with an explicit batch worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile`](Self::compile).
    pub fn compile_with_threads(model: &SafetyModel, threads: usize) -> Result<Self> {
        Self::try_compile_with_threads(model, threads, CompileBudget::UNLIMITED)
    }

    /// Compiles `model` under a [`CompileBudget`], with machine-sized
    /// parallelism for batches. With [`CompileBudget::UNLIMITED`] this
    /// is exactly [`compile`](Self::compile).
    ///
    /// Budget enforcement is **all-or-nothing**: a blown limit returns
    /// [`SafeOptError::Engine`]`(`[`EngineError::BudgetExceeded`]`)`
    /// and no partially compiled model. Exception: when the process
    /// degradation policy is `SAFETY_OPT_DEGRADE=fallback` (or
    /// [`safety_opt_engine::set_degrade_mode`]), a hazard whose exact
    /// BDD plan alone blows `max_bdd_nodes` falls back to rare-event
    /// lowering for that hazard — a documented accuracy degradation,
    /// counted in the `safeopt.degrade.fallback` telemetry counter and
    /// warned once per process.
    ///
    /// # Errors
    ///
    /// Everything [`compile`](Self::compile) can return, plus
    /// [`SafeOptError::Engine`] for blown budgets.
    pub fn try_compile(model: &SafetyModel, budget: CompileBudget) -> Result<Self> {
        Self::try_compile_with_threads(model, safety_opt_engine::default_threads(), budget)
    }

    /// [`try_compile`](Self::try_compile) with an explicit batch worker
    /// count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_compile`](Self::try_compile).
    pub fn try_compile_with_threads(
        model: &SafetyModel,
        threads: usize,
        budget: CompileBudget,
    ) -> Result<Self> {
        let _scope = telemetry::TraceScope::enter("compile");
        let space = model.space_arc();
        let quant = model.quant_method();
        let mut builder = TapeBuilder::new(space.len());
        let mut memo: HashMap<usize, Value> = HashMap::new();
        for (hazard, &cost) in model.hazards().iter().zip(model.costs()) {
            let hazard_value =
                lower_hazard(&mut builder, &mut memo, &space, hazard, quant, &budget)?;
            builder.output(hazard_value, cost);
            // Checked per hazard so a runaway model stops at the first
            // hazard that blows the cap, not after lowering everything.
            budget
                .check_ops(builder.compile_stats().ops_emitted as usize)
                .map_err(SafeOptError::Engine)?;
        }
        Ok(Self {
            tape: Arc::new(builder.build()),
            space,
            threads: threads.max(1),
            backend: safety_opt_engine::default_backend(),
            quant,
            hazards: Arc::new(model.hazards().to_vec()),
        })
    }

    /// The quantification method the tape was compiled with.
    pub fn quant_method(&self) -> QuantMethod {
        self.quant
    }

    /// The source hazards the tape was compiled from.
    pub(crate) fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// Overrides the execution backend for every batch entry point
    /// (results are bit-identical for every choice).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Configured execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The underlying tape.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Compile-time statistics of the underlying tape (ops requested vs
    /// emitted, constant folds, hash-consing hits, fused ops). Recorded
    /// unconditionally — independent of the `SAFETY_OPT_TELEMETRY` mode.
    pub fn compile_stats(&self) -> CompileStats {
        self.tape.compile_stats()
    }

    /// Per-op sweep-time attribution for this model's tape, populated
    /// only under `SAFETY_OPT_TRACE=full` (every evaluator and worker
    /// thread sweeping this model accumulates into the same cells).
    pub fn profile_report(&self) -> safety_opt_engine::ProfileReport {
        self.tape.profile_report()
    }

    /// Number of parameters the compiled model expects.
    pub fn dim(&self) -> usize {
        self.space.len()
    }

    /// Number of hazards (tape outputs).
    pub fn n_hazards(&self) -> usize {
        self.tape.n_outputs()
    }

    /// Configured batch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    pub(crate) fn check_dim(&self, got: usize) -> Result<()> {
        if got != self.dim() {
            return Err(SafeOptError::DimensionMismatch {
                expected: self.dim(),
                got,
            });
        }
        Ok(())
    }

    /// Cost at one point; NaN signals an evaluation failure of an opaque
    /// closure factor (mirror of the scalar path's typed error).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn cost(&self, x: &[f64]) -> Result<f64> {
        self.check_dim(x.len())?;
        let mut scratch = Vec::with_capacity(self.tape.scratch_len());
        let mut hazards = vec![0.0; self.n_hazards()];
        Ok(self.tape.eval_into(x, &mut scratch, &mut hazards))
    }

    /// Costs for a batch of points, evaluated in parallel with
    /// deterministic chunking (results are independent of the thread
    /// count).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn cost_batch(&self, points: &[Vec<f64>]) -> Result<Vec<f64>> {
        for p in points {
            self.check_dim(p.len())?;
        }
        Ok(self.evaluator().costs(points))
    }

    /// Costs **and** hazard probabilities for a batch of points
    /// (`hazards` is row-major, `points.len() × n_hazards`).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn cost_and_hazards_batch(&self, points: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<f64>)> {
        for p in points {
            self.check_dim(p.len())?;
        }
        Ok(self.evaluator().costs_and_outputs(points))
    }

    /// Cost **and** analytic cost gradient at one point, via the
    /// engine's reverse-mode adjoint sweep (one forward + one backward
    /// pass — cost independent of the parameter count, unlike the
    /// `2·dim` tape sweeps of a central-difference gradient). The value
    /// is bit-identical to [`cost`](Self::cost); NaN (a failing opaque
    /// closure factor) propagates into the value and every gradient
    /// component it reaches.
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn value_grad(&self, x: &[f64]) -> Result<(f64, Vec<f64>)> {
        self.check_dim(x.len())?;
        Ok(self.tape.eval_grad(x))
    }

    /// The analytic cost gradient at one point (see
    /// [`value_grad`](Self::value_grad)).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn gradient(&self, x: &[f64]) -> Result<Vec<f64>> {
        Ok(self.value_grad(x)?.1)
    }

    /// Costs and analytic gradients for a batch of points, sharded
    /// across the deterministic chunked pool (`grads` is row-major,
    /// `points.len() × dim`; results are independent of the thread
    /// count).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points.
    pub fn gradient_batch(&self, points: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<f64>)> {
        for p in points {
            self.check_dim(p.len())?;
        }
        Ok(self.evaluator().eval_grad_batch(points))
    }

    /// Fallible twin of [`cost_batch`](Self::cost_batch): worker panics
    /// are isolated into typed errors and an optional cooperative
    /// [`EvalDeadline`] is checked between chunks. All-or-nothing — an
    /// error means no partial results, and the model stays fully usable
    /// (an identical retry returns bit-identical results).
    ///
    /// # Errors
    ///
    /// [`SafeOptError::DimensionMismatch`] for wrong-arity points;
    /// [`SafeOptError::Engine`] for isolated worker panics
    /// ([`EngineError::WorkerPanicked`]) and expired deadlines
    /// ([`EngineError::DeadlineExceeded`]).
    pub fn try_cost_batch(
        &self,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<Vec<f64>> {
        for p in points {
            self.check_dim(p.len())?;
        }
        self.evaluator()
            .try_costs(points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// Fallible twin of
    /// [`cost_and_hazards_batch`](Self::cost_and_hazards_batch) (see
    /// [`try_cost_batch`](Self::try_cost_batch) for the error contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_cost_batch`](Self::try_cost_batch).
    pub fn try_cost_and_hazards_batch(
        &self,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        for p in points {
            self.check_dim(p.len())?;
        }
        self.evaluator()
            .try_costs_and_outputs(points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// Fallible twin of [`gradient_batch`](Self::gradient_batch) (see
    /// [`try_cost_batch`](Self::try_cost_batch) for the error contract).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_cost_batch`](Self::try_cost_batch).
    pub fn try_gradient_batch(
        &self,
        points: &[Vec<f64>],
        deadline: Option<&EvalDeadline>,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        for p in points {
            self.check_dim(p.len())?;
        }
        self.evaluator()
            .try_eval_grad_batch(points, deadline)
            .map_err(SafeOptError::Engine)
    }

    /// The batch evaluator every batch entry point routes through.
    fn evaluator(&self) -> BatchEvaluator<'_> {
        BatchEvaluator::new(&self.tape, self.threads).backend(self.backend)
    }

    /// The compiled cost as a scalar optimization objective with an
    /// optional quantized memo cache (see [`CompiledObjective`]).
    pub fn objective(&self, memo: bool) -> CompiledObjective {
        CompiledObjective {
            tape: Arc::clone(&self.tape),
            scratch: RefCell::new((
                Vec::with_capacity(self.tape.scratch_len()),
                vec![0.0; self.n_hazards()],
            )),
            grad_ws: RefCell::new(GradWorkspace::new()),
            cache: memo.then(QuantizedCache::fine),
        }
    }
}

/// The compiled cost function as an [`safety_opt_optim::Objective`].
///
/// Evaluation failures (NaN from an opaque closure factor) surface as
/// `+∞`, exactly like [`SafetyModel::objective`]. With `memo` enabled,
/// evaluations are cached per quantized point — multi-start local
/// searches and pattern moves revisit points constantly.
#[derive(Debug)]
pub struct CompiledObjective {
    tape: Arc<Tape>,
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
    grad_ws: RefCell<GradWorkspace>,
    cache: Option<QuantizedCache>,
}

impl CompiledObjective {
    fn eval_raw(&self, x: &[f64]) -> f64 {
        let (scratch, hazards) = &mut *self.scratch.borrow_mut();
        let v = self.tape.eval_into(x, scratch, hazards);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }

    /// Hit/miss/eviction statistics of the memo cache (all zero when
    /// disabled). Recorded unconditionally — independent of the
    /// `SAFETY_OPT_TELEMETRY` mode.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map_or_else(CacheStats::default, QuantizedCache::stats)
    }
}

impl safety_opt_optim::Objective for CompiledObjective {
    fn eval(&self, x: &[f64]) -> f64 {
        if x.len() != self.tape.n_inputs() {
            return f64::INFINITY;
        }
        match &self.cache {
            Some(cache) => cache.get_or_insert_with(x, || self.eval_raw(x)),
            None => self.eval_raw(x),
        }
    }
}

/// The analytic-gradient hook for
/// [`safety_opt_optim::gradient::GradientDescent::minimize_differentiable`]:
/// one reverse-mode adjoint sweep of the compiled tape per gradient.
/// Evaluation failures surface as an `∞` value (exactly like
/// [`eval`](safety_opt_optim::Objective::eval)) alongside the poisoned
/// gradient, which tells the optimizer to fall back to finite
/// differences at that point. The memo cache is bypassed — a gradient
/// call is as cheap as the forward evaluation it embeds.
impl safety_opt_optim::DifferentiableObjective for CompiledObjective {
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        if x.len() != self.tape.n_inputs() || grad.len() != x.len() {
            grad.fill(f64::NAN);
            return f64::INFINITY;
        }
        let ws = &mut *self.grad_ws.borrow_mut();
        let (_, hazards) = &mut *self.scratch.borrow_mut();
        let v = self.tape.eval_grad_into(x, ws, hazards, grad);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    }
}

/// [`safety_opt_optim::BatchObjective`] for the batch entry points of
/// grid search, differential evolution, and population annealing: one
/// parallel tape sweep per generation.
impl safety_opt_optim::BatchObjective for CompiledModel {
    fn eval_batch(&self, points: &[Vec<f64>], out: &mut Vec<f64>) {
        *out = self.evaluator().costs(points);
        for v in out.iter_mut() {
            if !v.is_finite() {
                *v = f64::INFINITY;
            }
        }
    }
}

/// Lowers one hazard onto the tape under the model's quantification
/// method (shared between [`CompiledModel`] and the fleet compiler in
/// [`crate::fleet`]).
///
/// * [`QuantMethod::RareEvent`] (and every hazard without a captured
///   structure function): each cut set fuses into an n-ary product, the
///   hazard into one clamped sum — the paper's Eq. 3.
/// * [`QuantMethod::BddExact`]: the hazard's Shannon decomposition
///   lowers node-by-node into fused `p·hi + (1−p)·lo` ops
///   ([`TapeBuilder::mul_add`]), leaf expressions lowering through the
///   same expression memo as the rare-event path. Hash-consing dedups
///   shared BDD subgraphs **within and across hazards** (and across
///   fleet models) for free, because structurally identical nodes
///   produce identical op keys.
pub(crate) fn lower_hazard(
    b: &mut TapeBuilder,
    memo: &mut HashMap<usize, Value>,
    space: &ParameterSpace,
    hazard: &Hazard,
    method: QuantMethod,
    budget: &CompileBudget,
) -> Result<Value> {
    if faultinject::should_fail(faultinject::sites::TAPE_COMPILE) {
        return Err(SafeOptError::Engine(EngineError::FaultInjected {
            site: faultinject::sites::TAPE_COMPILE,
        }));
    }
    if method == QuantMethod::BddExact {
        if let Some(exact) = hazard.exact() {
            let plan = exact.plan();
            // Exact lowering emits one fused op per Shannon node, so the
            // plan's node count is the budget-relevant size. A blown
            // `max_bdd_nodes` either aborts (all-or-nothing) or — under
            // `SAFETY_OPT_DEGRADE=fallback` — degrades this hazard to
            // the rare-event cut-set lowering below.
            if let Err(e) = budget.check_bdd_nodes(plan.node_count()) {
                match safety_opt_engine::degrade_mode() {
                    DegradeMode::Off => return Err(SafeOptError::Engine(e)),
                    DegradeMode::Fallback => {
                        DEGRADE_FALLBACKS.add(1);
                        telemetry::trace::trace_instant(
                            telemetry::EventKind::DegradeFallback,
                            hazard.name(),
                            plan.node_count() as u64,
                        );
                        warn_degrade_fallback_once(
                            hazard.name(),
                            plan.node_count(),
                            budget.max_bdd_nodes.unwrap_or(usize::MAX),
                        );
                        return lower_rare_event(b, memo, space, hazard);
                    }
                }
            }
            let resolve = |r: ShannonRef, vals: &[Value], b: &TapeBuilder| match r {
                ShannonRef::False => b.constant(0.0),
                ShannonRef::True => b.constant(1.0),
                ShannonRef::Node(i) => vals[i],
            };
            // Modules are listed children-before-parents (root last), so
            // a parent's `PlanInput::Module` reference always finds its
            // child's already-lowered top value.
            let mut roots: Vec<Value> = Vec::with_capacity(plan.modules().len());
            for m in plan.modules() {
                let mut vals: Vec<Value> = Vec::with_capacity(m.plan().nodes.len());
                for node in &m.plan().nodes {
                    let p = match m.input(node.leaf) {
                        PlanInput::Module(j) => roots[j],
                        PlanInput::Leaf(leaf) => {
                            let expr = exact
                                .leaf_expr(leaf)
                                .expect("BDD leaves have substituted expressions");
                            lower(b, memo, space, expr)?
                        }
                    };
                    let hi = resolve(node.high, &vals, b);
                    let lo = resolve(node.low, &vals, b);
                    vals.push(b.mul_add(p, hi, lo));
                }
                roots.push(resolve(m.plan().root, &vals, b));
            }
            return Ok(*roots.last().expect("a plan has at least one module"));
        }
    }
    lower_rare_event(b, memo, space, hazard)
}

/// The rare-event cut-set lowering (paper Eq. 3) — the default path and
/// the graceful-degradation target for budget-blown exact hazards.
fn lower_rare_event(
    b: &mut TapeBuilder,
    memo: &mut HashMap<usize, Value>,
    space: &ParameterSpace,
    hazard: &Hazard,
) -> Result<Value> {
    let mut cut_sets = Vec::with_capacity(hazard.cut_sets().len());
    for cs in hazard.cut_sets() {
        let factors = cs
            .factors()
            .iter()
            .map(|f| lower(b, memo, space, f))
            .collect::<Result<Vec<_>>>()?;
        cut_sets.push(b.product(factors));
    }
    Ok(b.sum_clamped(0.0, cut_sets))
}

/// Lowers one probability expression, reusing shared nodes through the
/// expression-identity memo (shared with the fleet compiler in
/// [`crate::fleet`]).
pub(crate) fn lower(
    b: &mut TapeBuilder,
    memo: &mut HashMap<usize, Value>,
    space: &ParameterSpace,
    expr: &ProbExpr,
) -> Result<Value> {
    let id = expr.node_id();
    if let Some(v) = memo.get(&id) {
        return Ok(*v);
    }
    let check_param = |param: crate::param::ParamId| -> Result<usize> {
        let i = param.index();
        if i >= space.len() {
            return Err(SafeOptError::UnknownParameter {
                reference: format!("#{i}"),
            });
        }
        Ok(i)
    };
    let value = match expr.structure() {
        ExprStructure::Constant(p) => b.constant(p),
        ExprStructure::Overtime { dist, param } => {
            let i = check_param(param)?;
            let t = b.input(i);
            b.overtime(dist, t)
        }
        ExprStructure::Exposure { rate, param } => {
            let i = check_param(param)?;
            let t = b.input(i);
            b.exposure(rate, t)
        }
        ExprStructure::Complement(inner) => {
            let v = lower(b, memo, space, inner)?;
            b.complement(v)
        }
        ExprStructure::Scaled(c, inner) => {
            let v = lower(b, memo, space, inner)?;
            b.scale(c, v)
        }
        ExprStructure::Product(terms) => {
            let vs = terms
                .iter()
                .map(|t| lower(b, memo, space, t))
                .collect::<Result<Vec<_>>>()?;
            b.product(vs)
        }
        ExprStructure::Sum(terms) => {
            let vs = terms
                .iter()
                .map(|t| lower(b, memo, space, t))
                .collect::<Result<Vec<_>>>()?;
            b.sum_clamped(0.0, vs)
        }
        ExprStructure::Closure { .. } => {
            // Opaque: delegate this factor to the scalar interpreter;
            // evaluation failures become NaN and propagate through the
            // tape.
            let fallback = expr.clone();
            b.closure(
                id,
                Arc::new(move |xs: &[f64]| {
                    fallback.eval(&ParamValues::new(xs)).unwrap_or(f64::NAN)
                }),
            )
        }
        // `ExprStructure` is non-exhaustive for future node kinds; new
        // kinds must be lowered explicitly before this is reachable.
        #[allow(unreachable_patterns)]
        other => unreachable!("unlowered expression kind {other:?}"),
    };
    memo.insert(id, value);
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hazard;
    use crate::param::ParameterSpace;
    use crate::pprob::{complement, constant, exposure, from_fn, overtime, product, scaled, sum};
    use safety_opt_optim::Objective as _;
    use safety_opt_stats::dist::TruncatedNormal;

    fn elb_like_model() -> SafetyModel {
        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 5.0, 30.0).unwrap();
        let t2 = space.parameter("t2", 5.0, 30.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let crit = constant(1e-3).unwrap();
        let collision = Hazard::builder("collision")
            .residual("rest", 1e-8)
            .cut_set("ot1", [crit.clone(), overtime(transit, t1)])
            .cut_set(
                "ot2",
                [
                    crit,
                    complement(overtime(transit, t1)),
                    overtime(transit, t2),
                ],
            )
            .build();
        let activation = sum([
            constant(1e-3).unwrap(),
            scaled(
                1.0 - 1e-3,
                product([constant(1e-4).unwrap(), exposure(1e-4, t1)]),
            )
            .unwrap(),
        ]);
        let alarm = Hazard::builder("alarm")
            .residual("rest", 1e-4)
            .cut_set("hv", [activation, exposure(0.13, t2)])
            .build();
        SafetyModel::new(space)
            .hazard(collision, 100_000.0)
            .hazard(alarm, 1.0)
    }

    #[test]
    fn compiled_matches_scalar_everywhere() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        let mut t1 = 5.0;
        while t1 <= 30.0 {
            let mut t2 = 5.0;
            while t2 <= 30.0 {
                let x = [t1, t2];
                let scalar = model.cost(&x).unwrap();
                let fast = compiled.cost(&x).unwrap();
                assert!(
                    (scalar - fast).abs() <= 1e-12,
                    "cost mismatch at {x:?}: {scalar} vs {fast}"
                );
                t2 += 1.37;
            }
            t1 += 1.37;
        }
    }

    #[test]
    fn shared_subexpressions_compile_once() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        // overtime(t1) is shared between the two collision cut sets
        // through the cloned expression node; the tape carries each
        // distinct op once: 2 overtime, 2 exposure, 1 complement,
        // 1 scale(product) chain, products and 2 hazard sums.
        assert!(
            compiled.tape().n_ops() <= 14,
            "expected a deduplicated tape, got {} ops",
            compiled.tape().n_ops()
        );
        // Duplicating a hazard (same shared expression nodes) must not
        // add a single expression op — only the new hazard sum.
        let mut dup = elb_like_model();
        let h = dup.hazards()[0].clone();
        dup = dup.hazard(h, 1.0);
        let dup_compiled = CompiledModel::compile(&dup).unwrap();
        assert!(
            dup_compiled.tape().n_ops() <= compiled.tape().n_ops() + 1,
            "duplicate hazard re-lowered: {} vs {} ops",
            dup_compiled.tape().n_ops(),
            compiled.tape().n_ops()
        );
    }

    #[test]
    fn batch_and_scalar_compiled_paths_agree_bitwise() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile_with_threads(&model, 3).unwrap();
        let points: Vec<Vec<f64>> = (0..500)
            .map(|i| {
                let t = 5.0 + (i as f64) * 25.0 / 499.0;
                vec![t, 35.0 - t]
            })
            .collect();
        let batch = compiled.cost_batch(&points).unwrap();
        for (p, &v) in points.iter().zip(&batch) {
            assert_eq!(compiled.cost(p).unwrap(), v);
        }
        let (costs, hazards) = compiled.cost_and_hazards_batch(&points).unwrap();
        assert_eq!(costs, batch);
        for (i, p) in points.iter().enumerate() {
            let scalar = model.hazard_probabilities(p).unwrap();
            for h in 0..2 {
                assert!(
                    (hazards[i * 2 + h] - scalar[h]).abs() <= 1e-12,
                    "hazard {h} mismatch at {p:?}"
                );
            }
        }
    }

    #[test]
    fn soa_backend_matches_scalar_bitwise() {
        let model = elb_like_model();
        let scalar = CompiledModel::compile_with_threads(&model, 1)
            .unwrap()
            .with_backend(ExecBackend::Scalar);
        let soa = CompiledModel::compile_with_threads(&model, 2)
            .unwrap()
            .with_backend(ExecBackend::Soa);
        assert_eq!(soa.backend(), ExecBackend::Soa);
        let points: Vec<Vec<f64>> = (0..203)
            .map(|i| {
                let t = 5.0 + (i as f64) * 25.0 / 202.0;
                vec![t, 35.0 - t]
            })
            .collect();
        let (sc, sh) = scalar.cost_and_hazards_batch(&points).unwrap();
        let (fc, fh) = soa.cost_and_hazards_batch(&points).unwrap();
        assert_eq!(sc, fc);
        assert_eq!(sh, fh);
        assert_eq!(
            scalar.cost_batch(&points).unwrap(),
            soa.cost_batch(&points).unwrap()
        );
    }

    #[test]
    fn adjoint_gradient_matches_finite_differences() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        for x in [[10.0, 12.0], [19.0, 15.6], [6.5, 27.0]] {
            let (value, grad) = compiled.value_grad(&x).unwrap();
            assert_eq!(
                value.to_bits(),
                compiled.cost(&x).unwrap().to_bits(),
                "value must be bit-identical to plain evaluation"
            );
            // Large enough that the reference's subtractive
            // cancellation stays below the comparison tolerance (the
            // adjoint side has no step at all).
            let h = 1e-4;
            for i in 0..2 {
                let mut p = x;
                p[i] += h;
                let fp = compiled.cost(&p).unwrap();
                p[i] = x[i] - h;
                let fm = compiled.cost(&p).unwrap();
                let fd = (fp - fm) / (2.0 * h);
                let scale = grad[i].abs().max(fd.abs()).max(1e-9);
                assert!(
                    (grad[i] - fd).abs() <= 1e-5 * scale,
                    "∂f/∂x{i} at {x:?}: adjoint {} vs fd {fd}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn gradient_batch_is_bit_identical_to_pointwise() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile_with_threads(&model, 3).unwrap();
        let points: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let t = 5.0 + (i as f64) * 25.0 / 299.0;
                vec![t, 35.0 - t]
            })
            .collect();
        let (costs, grads) = compiled.gradient_batch(&points).unwrap();
        assert_eq!(costs, compiled.cost_batch(&points).unwrap());
        for (i, p) in points.iter().enumerate() {
            let (_, g) = compiled.value_grad(p).unwrap();
            for (a, b) in g.iter().zip(&grads[i * 2..(i + 1) * 2]) {
                assert_eq!(a.to_bits(), b.to_bits(), "point {i}");
            }
        }
        assert!(compiled.gradient(&[1.0]).is_err());
        assert!(compiled.gradient_batch(&[vec![1.0]]).is_err());
    }

    #[test]
    fn differentiable_objective_agrees_with_eval() {
        use safety_opt_optim::DifferentiableObjective as _;
        let model = elb_like_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        let obj = compiled.objective(false);
        let x = [14.0, 17.0];
        let mut grad = [0.0; 2];
        let v = obj.value_grad(&x, &mut grad);
        assert_eq!(v.to_bits(), obj.eval(&x).to_bits());
        assert_eq!(
            grad[0].to_bits(),
            compiled.gradient(&x).unwrap()[0].to_bits()
        );
        // Wrong arity is infeasible, not a panic — and poisons the
        // gradient so the optimizer falls back to finite differences.
        let mut bad = [0.0; 1];
        assert_eq!(obj.value_grad(&[1.0], &mut bad), f64::INFINITY);
        assert!(bad[0].is_nan());
    }

    #[test]
    fn objective_memo_caches_revisits() {
        let model = elb_like_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        let obj = compiled.objective(true);
        let a = obj.eval(&[19.0, 15.6]);
        let b = obj.eval(&[19.0, 15.6]);
        assert_eq!(a, b);
        let stats = obj.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.hit_rate(), 0.5);
        // Wrong arity through the objective is infeasible, not a panic.
        assert_eq!(obj.eval(&[1.0]), f64::INFINITY);
    }

    #[test]
    fn bdd_exact_compilation_matches_scalar_exact_eval() {
        use crate::model::QuantMethod;
        use safety_opt_fta::tree::FaultTree;
        // Shared-event tree where rare-event and exact genuinely differ.
        let mut ft = FaultTree::new("shared");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let c = ft.basic_event("c").unwrap();
        let g1 = ft.and_gate("g1", [a, b]).unwrap();
        let g2 = ft.and_gate("g2", [a, c]).unwrap();
        let top = ft.or_gate("top", [g1, g2]).unwrap();
        ft.set_root(top).unwrap();

        let mut space = ParameterSpace::new();
        let t1 = space.parameter("t1", 0.1, 10.0).unwrap();
        let t2 = space.parameter("t2", 0.1, 10.0).unwrap();
        let transit = TruncatedNormal::lower_bounded(4.0, 2.0, 0.0).unwrap();
        let hazard = Hazard::from_fault_tree(&ft, |leaf| {
            Ok(match leaf {
                0 => overtime(transit, t1),
                1 => exposure(0.3, t2),
                _ => constant(0.25).unwrap(),
            })
        })
        .unwrap();
        let model = SafetyModel::new(space)
            .hazard(hazard, 1000.0)
            .with_quant_method(QuantMethod::BddExact);
        let compiled = CompiledModel::compile(&model).unwrap();
        assert_eq!(compiled.quant_method(), QuantMethod::BddExact);
        let mut x0 = 0.1;
        while x0 <= 10.0 {
            let x = [x0, 10.1 - x0];
            let scalar = model.cost(&x).unwrap();
            let fast = compiled.cost(&x).unwrap();
            let scale = scalar.abs().max(1e-300);
            assert!(
                (scalar - fast).abs() <= 1e-12 * scale.max(1.0),
                "exact cost mismatch at {x:?}: {scalar} vs {fast}"
            );
            // Adjoint gradient through the MulAdd chain vs central
            // differences on the compiled cost.
            let (value, grad) = compiled.value_grad(&x).unwrap();
            assert_eq!(value.to_bits(), fast.to_bits());
            let h = 1e-5;
            for i in 0..2 {
                let mut p = x;
                p[i] += h;
                let fp = compiled.cost(&p).unwrap();
                p[i] = x[i] - h;
                let fm = compiled.cost(&p).unwrap();
                let fd = (fp - fm) / (2.0 * h);
                let scale = grad[i].abs().max(fd.abs()).max(1e-9);
                assert!(
                    (grad[i] - fd).abs() <= 1e-4 * scale,
                    "∂f/∂x{i} at {x:?}: adjoint {} vs fd {fd}",
                    grad[i]
                );
            }
            x0 += 1.7;
        }
    }

    #[test]
    fn shared_bdd_subgraphs_compile_once_across_hazards() {
        use crate::model::QuantMethod;
        use safety_opt_fta::tree::FaultTree;
        let tree = || {
            let mut ft = FaultTree::new("h");
            let a = ft.basic_event("a").unwrap();
            let b = ft.basic_event("b").unwrap();
            let g = ft.or_gate("top", [a, b]).unwrap();
            ft.set_root(g).unwrap();
            ft
        };
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.1, 10.0).unwrap();
        let ea = exposure(0.2, t);
        let eb = constant(0.125).unwrap();
        let leafs = |leaf: usize| -> Result<ProbExpr> {
            Ok(if leaf == 0 { ea.clone() } else { eb.clone() })
        };
        let h1 = Hazard::from_fault_tree(&tree(), leafs).unwrap();
        let h2 = Hazard::from_fault_tree(&tree(), leafs).unwrap();
        let one = SafetyModel::new(space.clone())
            .hazard(h1.clone(), 1.0)
            .with_quant_method(QuantMethod::BddExact);
        let two = SafetyModel::new(space)
            .hazard(h1, 1.0)
            .hazard(h2, 2.0)
            .with_quant_method(QuantMethod::BddExact);
        let one_ops = CompiledModel::compile(&one).unwrap().tape().n_ops();
        let two_ops = CompiledModel::compile(&two).unwrap().tape().n_ops();
        // The second hazard's BDD is structurally identical (same shared
        // leaf expressions), so its Shannon nodes hash-cons away
        // entirely.
        assert_eq!(
            one_ops, two_ops,
            "identical BDD across hazards must not add ops"
        );
    }

    #[test]
    fn closure_failures_surface_like_the_scalar_path() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let broken = Hazard::builder("h")
            .cut_set("bad", [from_fn("broken", |_| 2.0)])
            .build();
        let model = SafetyModel::new(space).hazard(broken, 1.0);
        let compiled = CompiledModel::compile(&model).unwrap();
        assert!(compiled.cost(&[0.5]).unwrap().is_nan());
        let obj = compiled.objective(false);
        assert_eq!(obj.eval(&[0.5]), f64::INFINITY);
        assert_eq!(model.objective()(&[0.5]), f64::INFINITY);
    }

    #[test]
    fn foreign_param_ids_are_rejected_at_compile_time() {
        let mut space = ParameterSpace::new();
        space.parameter("t", 0.0, 1.0).unwrap();
        let h = Hazard::builder("h")
            .cut_set("e", [exposure(0.1, crate::param::ParamId::new(7))])
            .build();
        let model = SafetyModel::new(space).hazard(h, 1.0);
        assert!(matches!(
            CompiledModel::compile(&model),
            Err(SafeOptError::UnknownParameter { .. })
        ));
    }
}
