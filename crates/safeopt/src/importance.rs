//! Component importance at a parameter point — the bridge between the
//! FTA-level importance measures ([`safety_opt_fta::importance`]) and
//! the parameterized safety model.
//!
//! The paper's case-study argument ("HV at ODfinal will be the
//! dominating factor … by two orders of magnitude") is an importance
//! ranking *at a specific configuration*. For hazards built from fault
//! trees ([`crate::model::Hazard::from_fault_tree`]), this module
//! evaluates every leaf's parameterized probability at the point and
//! derives all classical measures from **one reverse-mode adjoint
//! sweep** over the hazard's compiled Shannon leaf tape: the top-event
//! probability is multilinear in the leaf probabilities, so the adjoint
//! gradient `∂P/∂qᵢ` *is* the Birnbaum importance, and every
//! conditional `P(top | qᵢ=v) = P + (v − qᵢ)·I_B(i)` follows exactly —
//! no `2·n` BDD re-evaluations.
//!
//! Hand-written cut-set hazards have no structure function, so they
//! appear in the report with their probability but no leaf breakdown.

use crate::compile::CompiledModel;
use crate::model::ExactHazard;
use crate::param::ParamValues;
use crate::Result;

/// All importance measures of one fault-tree leaf at a parameter point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LeafImportance {
    /// Leaf index within the hazard's tree.
    pub leaf: usize,
    /// Leaf name.
    pub name: String,
    /// The leaf's probability at the evaluated point.
    pub probability: f64,
    /// Birnbaum structural sensitivity `∂P(H)/∂qᵢ`.
    pub birnbaum: f64,
    /// Criticality `I_B · qᵢ / P(H)`.
    pub criticality: f64,
    /// BDD-exact Fussell–Vesely `1 − P(H | qᵢ=0) / P(H)` — the fraction
    /// of the hazard probability that vanishes when the component is
    /// made perfect.
    pub fussell_vesely: f64,
    /// Risk achievement worth `P(H | qᵢ=1) / P(H)`.
    pub raw: f64,
    /// Risk reduction worth `P(H) / P(H | qᵢ=0)`.
    pub rrw: f64,
}

/// Importance breakdown of one hazard at a parameter point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HazardImportance {
    /// Hazard name.
    pub hazard: String,
    /// Hazard probability at the point. Tree-derived hazards report the
    /// **BDD-exact** value (the structure function the measures are
    /// defined on, whatever the model compiles with — mirroring
    /// [`safety_opt_fta::importance::ImportanceReport`]); hand-written
    /// hazards report under the compiled model's quantification method.
    pub probability: f64,
    /// `true` when the hazard carries a BDD structure (tree-derived) and
    /// `leaves` is populated.
    pub exact: bool,
    /// Per-leaf measures, sorted by descending Birnbaum importance.
    /// Empty for hand-written cut-set hazards.
    pub leaves: Vec<LeafImportance>,
}

impl HazardImportance {
    /// The most Birnbaum-important leaf, if any.
    pub fn most_important(&self) -> Option<&LeafImportance> {
        self.leaves.first()
    }

    /// Looks a leaf's measures up by name.
    pub fn by_name(&self, name: &str) -> Option<&LeafImportance> {
        self.leaves.iter().find(|l| l.name == name)
    }
}

/// Importance analysis of a whole compiled model at one parameter point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImportanceReport {
    /// The evaluated parameter point.
    pub point: Vec<f64>,
    /// Per-hazard breakdowns, in model order.
    pub hazards: Vec<HazardImportance>,
}

impl ImportanceReport {
    /// Computes the importance breakdown of every hazard of `compiled`
    /// at parameter point `x`: leaf probabilities from the substituted
    /// expressions, all measures from one adjoint gradient call per
    /// tree-derived hazard.
    ///
    /// # Errors
    ///
    /// [`crate::SafeOptError::DimensionMismatch`] for wrong-arity points
    /// and leaf-expression evaluation errors.
    pub fn at_point(compiled: &CompiledModel, x: &[f64]) -> Result<Self> {
        compiled.check_dim(x.len())?;
        let params = ParamValues::new(x);
        let mut hazards = Vec::new();
        for hazard in compiled.hazards() {
            match hazard.exact() {
                Some(exact) => hazards.push(hazard_importance(hazard.name(), exact, &params)?),
                None => hazards.push(HazardImportance {
                    hazard: hazard.name().to_owned(),
                    probability: hazard.probability_with(&params, compiled.quant_method())?,
                    exact: false,
                    leaves: Vec::new(),
                }),
            }
        }
        Ok(Self {
            point: x.to_vec(),
            hazards,
        })
    }

    /// Looks a hazard's breakdown up by name.
    pub fn hazard(&self, name: &str) -> Option<&HazardImportance> {
        self.hazards.iter().find(|h| h.hazard == name)
    }
}

/// One hazard's breakdown: leaf expressions evaluated once, one adjoint
/// sweep for `P(H)` and every Birnbaum, affine identities for the rest.
fn hazard_importance(
    name: &str,
    exact: &ExactHazard,
    params: &ParamValues<'_>,
) -> Result<HazardImportance> {
    let plan = exact.plan();
    let mut q = vec![0.0; plan.num_leaves()];
    let mut used = vec![false; plan.num_leaves()];
    for m in plan.modules() {
        for node in &m.plan().nodes {
            if let safety_opt_fta::modular::PlanInput::Leaf(leaf) = m.input(node.leaf) {
                if !used[leaf] {
                    used[leaf] = true;
                    q[leaf] = exact
                        .leaf_expr(leaf)
                        .expect("BDD leaves have substituted expressions")
                        .eval(params)?;
                }
            }
        }
    }
    // The leaf tape is compiled once per hazard and cached on the
    // `ExactHazard` (telemetry: `core.importance.leaf_tape_cache_hit`),
    // so repeated importance sweeps stop paying a recompilation per
    // call; the gradient itself routes through the batch evaluator —
    // the same `ExecBackend` seam every other gradient consumer uses.
    let tape = exact.leaf_tape();
    let (p, grads) = safety_opt_engine::BatchEvaluator::new(tape, 1).eval_grad_batch(&[&q[..]]);
    let (p_top, birnbaum) = (p[0], grads);
    let mut leaves = Vec::new();
    for leaf in 0..plan.num_leaves() {
        if !used[leaf] {
            continue;
        }
        let b = birnbaum[leaf];
        // Multilinearity: P(H | qᵢ = v) = P + (v − qᵢ)·I_B.
        let p_up = p_top + (1.0 - q[leaf]) * b;
        let mut p_down = p_top - q[leaf] * b;
        if p_down < p_top * 1e-8 {
            // Near-total cancellation (dominant component): recover the
            // tiny conditional with one exact forced sweep of the leaf
            // tape instead of the lossy subtraction.
            let mut forced = q.clone();
            forced[leaf] = 0.0;
            p_down = tape.eval(&forced);
        }
        let criticality = if p_top > 0.0 {
            b * q[leaf] / p_top
        } else {
            0.0
        };
        let fussell_vesely = if p_top > 0.0 {
            1.0 - p_down / p_top
        } else {
            0.0
        };
        let raw = if p_top > 0.0 {
            p_up / p_top
        } else {
            f64::INFINITY
        };
        let rrw = if p_down > 0.0 {
            p_top / p_down
        } else if p_top > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        leaves.push(LeafImportance {
            leaf,
            name: exact.leaf_name(leaf).to_owned(),
            probability: q[leaf],
            birnbaum: b,
            criticality,
            fussell_vesely,
            raw,
            rrw,
        });
    }
    leaves.sort_by(|a, b| b.birnbaum.partial_cmp(&a.birnbaum).unwrap());
    Ok(HazardImportance {
        hazard: name.to_owned(),
        probability: p_top,
        exact: true,
        leaves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Hazard, QuantMethod, SafetyModel};
    use crate::param::ParameterSpace;
    use crate::pprob::{constant, exposure};
    use safety_opt_fta::tree::FaultTree;

    fn spof_model() -> SafetyModel {
        // top = spof OR (x AND y): the single point of failure dominates.
        let mut ft = FaultTree::new("t");
        let spof = ft.basic_event("spof").unwrap();
        let x = ft.basic_event("x").unwrap();
        let y = ft.basic_event("y").unwrap();
        let g = ft.and_gate("xy", [x, y]).unwrap();
        let top = ft.or_gate("top", [spof, g]).unwrap();
        ft.set_root(top).unwrap();

        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.1, 10.0).unwrap();
        let hazard = Hazard::from_fault_tree(&ft, |leaf| {
            Ok(match leaf {
                0 => exposure(0.01, t), // spof, parameterized
                _ => constant(0.001).unwrap(),
            })
        })
        .unwrap();
        SafetyModel::new(space)
            .hazard(hazard, 1.0)
            .with_quant_method(QuantMethod::BddExact)
    }

    #[test]
    fn adjoint_measures_match_fta_oracle() {
        let model = spof_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        let x = [5.0];
        let report = ImportanceReport::at_point(&compiled, &x).unwrap();
        assert_eq!(report.hazards.len(), 1);
        let h = &report.hazards[0];
        assert!(h.exact);
        assert_eq!(h.most_important().unwrap().name, "spof");

        // Oracle: the fta importance report at the same leaf
        // probabilities.
        use safety_opt_fta::importance::ImportanceReport as FtaReport;
        use safety_opt_fta::quant::ProbabilityMap;
        let mut ft = FaultTree::new("t");
        let spof = ft.basic_event("spof").unwrap();
        let xx = ft.basic_event("x").unwrap();
        let y = ft.basic_event("y").unwrap();
        let g = ft.and_gate("xy", [xx, y]).unwrap();
        let top = ft.or_gate("top", [spof, g]).unwrap();
        ft.set_root(top).unwrap();
        let p_spof = 1.0 - (-0.01f64 * 5.0).exp();
        let pm = ProbabilityMap::new(vec![p_spof, 0.001, 0.001]).unwrap();
        let oracle = FtaReport::compute(&ft, &pm).unwrap();
        assert!((h.probability - oracle.hazard_probability).abs() < 1e-15);
        for leaf in &h.leaves {
            let o = oracle.by_name(&leaf.name).unwrap();
            assert!(
                (leaf.birnbaum - o.birnbaum).abs() < 1e-14,
                "{}: {} vs {}",
                leaf.name,
                leaf.birnbaum,
                o.birnbaum
            );
            assert!((leaf.criticality - o.criticality).abs() < 1e-12);
            assert!((leaf.raw - o.raw).abs() < 1e-9);
            assert!((leaf.rrw - o.rrw).abs() < 1e-9);
        }
    }

    #[test]
    fn leaf_tape_is_compiled_once_and_cached_across_sweeps() {
        let model = spof_model();
        let compiled = CompiledModel::compile(&model).unwrap();
        let exact = compiled.hazards()[0].exact().unwrap();
        // First access compiles; every later access — including the ones
        // inside repeated importance sweeps — must hand back the same
        // cached tape.
        let first: *const safety_opt_engine::Tape = exact.leaf_tape();
        let a = ImportanceReport::at_point(&compiled, &[5.0]).unwrap();
        let b = ImportanceReport::at_point(&compiled, &[5.0]).unwrap();
        assert_eq!(a, b);
        let again: *const safety_opt_engine::Tape = exact.leaf_tape();
        assert!(std::ptr::eq(first, again), "leaf tape must be cached");
    }

    #[test]
    fn hand_written_hazards_report_probability_only() {
        let mut space = ParameterSpace::new();
        let t = space.parameter("t", 0.0, 1.0).unwrap();
        let h = Hazard::builder("plain")
            .cut_set("cs", [exposure(0.5, t)])
            .build();
        let model = SafetyModel::new(space).hazard(h, 1.0);
        let compiled = CompiledModel::compile(&model).unwrap();
        let report = ImportanceReport::at_point(&compiled, &[0.5]).unwrap();
        let h = report.hazard("plain").unwrap();
        assert!(!h.exact);
        assert!(h.leaves.is_empty());
        assert!(h.probability > 0.0);
        assert!(ImportanceReport::at_point(&compiled, &[0.5, 1.0]).is_err());
    }
}
