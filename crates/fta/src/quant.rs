//! Quantitative fault tree analysis: hazard probabilities.
//!
//! Implements the paper's Sect. II-C formula and its alternatives:
//!
//! * [`Method::RareEvent`] — Eq. 1: `P(H) = Σ_MCS ∏_PF P(PF)`. "Widely
//!   used in engineering and broadly accepted", exact only in the limit of
//!   small probabilities; **over**-estimates coherent trees.
//! * [`Method::MinCutUpperBound`] — `1 − ∏ (1 − P(MCS))`: a tighter upper
//!   bound that stays ≤ 1.
//! * [`Method::InclusionExclusion`] — exact over the minimal cut sets (the
//!   full alternating sum; exponential in the number of cut sets, guarded
//!   by a budget).
//! * [`Method::BddExact`] — exact by Shannon decomposition on the
//!   [`crate::bdd::TreeBdd`]; linear in BDD size.
//!
//! All methods assume pairwise-independent leaves, exactly as the paper
//! does (Sect. II-C discusses this assumption and its limits; correlated
//! failures need common-cause analysis or stochastic model checking).

use crate::bdd::TreeBdd;
use crate::cutset::CutSetCollection;
use crate::tree::FaultTree;
use crate::{FtaError, Result};

/// Leaf probabilities, indexed by leaf index.
///
/// Separates model *structure* (the tree) from *data* (the numbers), so
/// one tree can be quantified under many environments — the mechanism the
/// safety-optimization layer uses to make probabilities functions of free
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbabilityMap {
    probs: Vec<f64>,
}

impl ProbabilityMap {
    /// Creates from a dense vector (index = leaf index).
    ///
    /// # Errors
    ///
    /// [`FtaError::InvalidProbability`] if any entry is outside `[0, 1]`.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(FtaError::InvalidProbability {
                    event: format!("leaf index {i}"),
                    value: p,
                });
            }
        }
        Ok(Self { probs })
    }

    /// Creates by evaluating `f` for each leaf index of `tree`.
    ///
    /// # Errors
    ///
    /// [`FtaError::InvalidProbability`] if `f` produces a value outside
    /// `[0, 1]`.
    pub fn from_fn(tree: &FaultTree, f: impl FnMut(usize) -> f64) -> Result<Self> {
        Self::new((0..tree.leaves().len()).map(f).collect())
    }

    /// Probability of leaf `index`, if present.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.probs.get(index).copied()
    }

    /// Number of leaves covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Returns a copy with leaf `index` forced to `value` (used by
    /// importance measures).
    ///
    /// # Errors
    ///
    /// [`FtaError::InvalidProbability`] for values outside `[0, 1]` and
    /// [`FtaError::UnknownNode`] for an out-of-range index.
    pub fn with_forced(&self, index: usize, value: f64) -> Result<Self> {
        if index >= self.probs.len() {
            return Err(FtaError::UnknownNode {
                reference: format!("leaf index {index}"),
            });
        }
        if !(0.0..=1.0).contains(&value) {
            return Err(FtaError::InvalidProbability {
                event: format!("leaf index {index}"),
                value,
            });
        }
        let mut probs = self.probs.clone();
        probs[index] = value;
        Ok(Self { probs })
    }

    /// Slice view of the dense probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }
}

/// Quantification method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Method {
    /// Paper Eq. 1: sum of cut-set products (rare-event approximation).
    RareEvent,
    /// `1 − ∏(1 − P(MCS))` — min-cut upper bound.
    MinCutUpperBound,
    /// Exact inclusion–exclusion over the minimal cut sets.
    InclusionExclusion,
    /// Exact Shannon decomposition on a BDD of the structure function.
    BddExact,
}

/// Probability of one cut set: `∏ P(leaf)` (paper Eq. 1's inner product;
/// with conditions in the cut set this is automatically Eq. 2's
/// `P(Constraints) · ∏ P(PF)`).
///
/// # Errors
///
/// [`FtaError::MissingProbability`] if a member leaf has no entry.
pub fn cut_set_probability(cs: &crate::CutSet, probs: &ProbabilityMap) -> Result<f64> {
    let mut p = 1.0;
    for leaf in cs.iter() {
        p *= probs
            .get(leaf)
            .ok_or_else(|| FtaError::MissingProbability {
                event: format!("leaf index {leaf}"),
            })?;
    }
    Ok(p)
}

/// Rare-event approximation over a cut-set collection (paper Eq. 1).
///
/// # Errors
///
/// [`FtaError::MissingProbability`] if a member leaf has no entry.
pub fn rare_event(mcs: &CutSetCollection, probs: &ProbabilityMap) -> Result<f64> {
    let mut sum = 0.0;
    for cs in mcs.iter() {
        sum += cut_set_probability(cs, probs)?;
    }
    Ok(sum)
}

/// Min-cut upper bound `1 − ∏(1 − P(MCS))`.
///
/// # Errors
///
/// [`FtaError::MissingProbability`] if a member leaf has no entry.
pub fn min_cut_upper_bound(mcs: &CutSetCollection, probs: &ProbabilityMap) -> Result<f64> {
    let mut complement = 1.0;
    for cs in mcs.iter() {
        complement *= 1.0 - cut_set_probability(cs, probs)?;
    }
    Ok(1.0 - complement)
}

/// Default budget on inclusion–exclusion terms (2²⁰).
pub const IE_TERM_BUDGET: usize = 1 << 20;

/// Exact inclusion–exclusion over the minimal cut sets.
///
/// `P(∪ᵢ Aᵢ) = Σ (−1)^{|S|+1} P(∩_{i∈S} Aᵢ)` where the intersection of
/// cut-set events is the union of their leaves. Exponential in `|MCS|`;
/// refuses collections needing more than [`IE_TERM_BUDGET`] terms.
///
/// # Errors
///
/// [`FtaError::BudgetExceeded`] for > 20 cut sets,
/// [`FtaError::MissingProbability`] for missing leaf entries.
pub fn inclusion_exclusion(mcs: &CutSetCollection, probs: &ProbabilityMap) -> Result<f64> {
    let n = mcs.len();
    if n == 0 {
        return Ok(0.0);
    }
    if (1usize << n.min(63)) > IE_TERM_BUDGET || n >= 63 {
        return Err(FtaError::BudgetExceeded {
            what: "inclusion-exclusion terms",
            limit: IE_TERM_BUDGET,
        });
    }
    let sets = mcs.sets();
    let mut total = 0.0;
    for mask in 1u64..(1u64 << n) {
        let mut union = crate::CutSet::empty();
        for (i, cs) in sets.iter().enumerate() {
            if mask & (1 << i) != 0 {
                union = union.union(cs);
            }
        }
        let term = cut_set_probability(&union, probs)?;
        if mask.count_ones() % 2 == 1 {
            total += term;
        } else {
            total -= term;
        }
    }
    Ok(total.clamp(0.0, 1.0))
}

/// Computes a hazard probability for `tree` under `probs` with the chosen
/// method. Convenience front-end over the individual engines.
///
/// # Errors
///
/// Any error of the underlying engine ([`FtaError::NoRoot`], budget or
/// probability errors).
pub fn hazard_probability(tree: &FaultTree, probs: &ProbabilityMap, method: Method) -> Result<f64> {
    match method {
        Method::BddExact => TreeBdd::build(tree)?.probability(probs),
        _ => {
            let mcs = crate::mcs::bottom_up(tree)?;
            match method {
                Method::RareEvent => rare_event(&mcs, probs),
                Method::MinCutUpperBound => min_cut_upper_bound(&mcs, probs),
                Method::InclusionExclusion => inclusion_exclusion(&mcs, probs),
                Method::BddExact => unreachable!(),
            }
        }
    }
}

/// Side-by-side quantification with all four methods — the data behind
/// approximation-error reports.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuantReport {
    /// Rare-event approximation (paper Eq. 1).
    pub rare_event: f64,
    /// Min-cut upper bound.
    pub min_cut_upper_bound: f64,
    /// Exact inclusion–exclusion (None if over budget).
    pub inclusion_exclusion: Option<f64>,
    /// BDD-exact value.
    pub bdd_exact: f64,
    /// Number of minimal cut sets.
    pub num_cut_sets: usize,
}

impl QuantReport {
    /// Runs all methods on `tree` under `probs`.
    ///
    /// # Errors
    ///
    /// Propagates structural errors; an over-budget inclusion–exclusion is
    /// reported as `None`, not an error.
    pub fn compute(tree: &FaultTree, probs: &ProbabilityMap) -> Result<Self> {
        let mcs = crate::mcs::bottom_up(tree)?;
        let ie = match inclusion_exclusion(&mcs, probs) {
            Ok(v) => Some(v),
            Err(FtaError::BudgetExceeded { .. }) => None,
            Err(e) => return Err(e),
        };
        Ok(Self {
            rare_event: rare_event(&mcs, probs)?,
            min_cut_upper_bound: min_cut_upper_bound(&mcs, probs)?,
            inclusion_exclusion: ie,
            bdd_exact: TreeBdd::build(tree)?.probability(probs)?,
            num_cut_sets: mcs.len(),
        })
    }

    /// Relative over-estimation of the rare-event approximation vs exact.
    pub fn rare_event_relative_error(&self) -> f64 {
        if self.bdd_exact == 0.0 {
            0.0
        } else {
            (self.rare_event - self.bdd_exact) / self.bdd_exact
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CutSet;

    fn tree_with_shared_event() -> FaultTree {
        // top = (a AND b) OR (a AND c), a shared.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.3).unwrap();
        let b = ft.basic_event_with_probability("b", 0.4).unwrap();
        let c = ft.basic_event_with_probability("c", 0.5).unwrap();
        let g1 = ft.and_gate("g1", [a, b]).unwrap();
        let g2 = ft.and_gate("g2", [a, c]).unwrap();
        let top = ft.or_gate("top", [g1, g2]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn probability_map_validation() {
        assert!(ProbabilityMap::new(vec![0.5, 1.5]).is_err());
        assert!(ProbabilityMap::new(vec![-0.1]).is_err());
        assert!(ProbabilityMap::new(vec![f64::NAN]).is_err());
        let pm = ProbabilityMap::new(vec![0.0, 0.5, 1.0]).unwrap();
        assert_eq!(pm.get(1), Some(0.5));
        assert_eq!(pm.get(3), None);
    }

    #[test]
    fn with_forced_replaces_one_entry() {
        let pm = ProbabilityMap::new(vec![0.1, 0.2]).unwrap();
        let forced = pm.with_forced(0, 1.0).unwrap();
        assert_eq!(forced.get(0), Some(1.0));
        assert_eq!(forced.get(1), Some(0.2));
        assert_eq!(pm.get(0), Some(0.1)); // original untouched
        assert!(pm.with_forced(5, 0.5).is_err());
        assert!(pm.with_forced(0, 2.0).is_err());
    }

    #[test]
    fn rare_event_matches_paper_formula() {
        // MCS {a}, {b,c} with p_a=0.01, p_b=0.1, p_c=0.2:
        // P = 0.01 + 0.02 = 0.03.
        let probs = ProbabilityMap::new(vec![0.01, 0.1, 0.2]).unwrap();
        let mcs = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([0]),
            CutSet::from_leaves([1, 2]),
        ]);
        assert!((rare_event(&mcs, &probs).unwrap() - 0.03).abs() < 1e-15);
    }

    #[test]
    fn method_ordering_on_coherent_tree() {
        // exact ≤ min-cut bound ≤ rare-event for coherent trees.
        let ft = tree_with_shared_event();
        let pm = ft.stored_probabilities().unwrap();
        let report = QuantReport::compute(&ft, &pm).unwrap();
        let exact = report.bdd_exact;
        assert!(exact <= report.min_cut_upper_bound + 1e-15);
        assert!(report.min_cut_upper_bound <= report.rare_event + 1e-15);
        // Exact: P(a ∧ (b ∨ c)) = 0.3 · (0.4 + 0.5 − 0.2) = 0.21.
        assert!((exact - 0.21).abs() < 1e-15, "exact = {exact}");
        // Inclusion–exclusion agrees with BDD on shared-event trees.
        assert!((report.inclusion_exclusion.unwrap() - exact).abs() < 1e-12);
    }

    #[test]
    fn rare_event_can_exceed_one() {
        let probs = ProbabilityMap::new(vec![0.9, 0.9]).unwrap();
        let mcs =
            CutSetCollection::from_sets(vec![CutSet::from_leaves([0]), CutSet::from_leaves([1])]);
        assert!(rare_event(&mcs, &probs).unwrap() > 1.0);
        // ...while the min-cut bound does not.
        assert!(min_cut_upper_bound(&mcs, &probs).unwrap() <= 1.0);
    }

    #[test]
    fn inclusion_exclusion_exact_for_disjoint_leaf_sets() {
        // {a}, {b}: P = p_a + p_b − p_a p_b.
        let probs = ProbabilityMap::new(vec![0.2, 0.3]).unwrap();
        let mcs =
            CutSetCollection::from_sets(vec![CutSet::from_leaves([0]), CutSet::from_leaves([1])]);
        let p = inclusion_exclusion(&mcs, &probs).unwrap();
        assert!((p - (0.2 + 0.3 - 0.06)).abs() < 1e-15);
    }

    #[test]
    fn inclusion_exclusion_budget_guard() {
        // 25 disjoint singleton cut sets → 2²⁵ terms > budget.
        let probs = ProbabilityMap::new(vec![0.01; 25]).unwrap();
        let mcs = CutSetCollection::from_sets((0..25).map(CutSet::singleton).collect());
        assert!(matches!(
            inclusion_exclusion(&mcs, &probs),
            Err(FtaError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_collection_has_zero_probability() {
        let probs = ProbabilityMap::new(vec![0.5]).unwrap();
        let empty = CutSetCollection::new();
        assert_eq!(rare_event(&empty, &probs).unwrap(), 0.0);
        assert_eq!(min_cut_upper_bound(&empty, &probs).unwrap(), 0.0);
        assert_eq!(inclusion_exclusion(&empty, &probs).unwrap(), 0.0);
    }

    #[test]
    fn hazard_probability_front_end() {
        let ft = tree_with_shared_event();
        let pm = ft.stored_probabilities().unwrap();
        let exact = hazard_probability(&ft, &pm, Method::BddExact).unwrap();
        let ie = hazard_probability(&ft, &pm, Method::InclusionExclusion).unwrap();
        let re = hazard_probability(&ft, &pm, Method::RareEvent).unwrap();
        assert!((exact - ie).abs() < 1e-12);
        assert!(re >= exact);
    }

    #[test]
    fn quant_report_relative_error() {
        let ft = tree_with_shared_event();
        let pm = ft.stored_probabilities().unwrap();
        let report = QuantReport::compute(&ft, &pm).unwrap();
        assert!(report.rare_event_relative_error() > 0.0);
        assert_eq!(report.num_cut_sets, 2);
    }

    #[test]
    fn missing_probability_is_reported() {
        let probs = ProbabilityMap::new(vec![0.1]).unwrap();
        let mcs = CutSetCollection::from_sets(vec![CutSet::from_leaves([0, 3])]);
        assert!(matches!(
            rare_event(&mcs, &probs),
            Err(FtaError::MissingProbability { .. })
        ));
    }
}
