use crate::bitset::BitSet;
use crate::tree::FaultTree;

/// A cut set: a set of leaves (by leaf index) that together cause the
/// hazard.
///
/// Cut sets may contain both primary failures and INHIBIT conditions; the
/// accessors [`failures`](CutSet::failures) and
/// [`conditions`](CutSet::conditions) split them given the owning tree,
/// matching the paper's Eq. 2 where a cut set's probability is
/// `P(Constraints) · ∏ P(PF)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CutSet {
    leaves: BitSet,
}

impl CutSet {
    /// The empty cut set (the hazard is already implied — only appears in
    /// degenerate trees).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A cut set containing a single leaf index.
    pub fn singleton(leaf: usize) -> Self {
        Self {
            leaves: BitSet::singleton(leaf),
        }
    }

    /// Creates from leaf indices.
    pub fn from_leaves(leaves: impl IntoIterator<Item = usize>) -> Self {
        Self {
            leaves: leaves.into_iter().collect(),
        }
    }

    /// Number of leaves in the cut set (its *order*).
    pub fn order(&self) -> usize {
        self.leaves.len()
    }

    /// `true` if this is the empty cut set.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// `true` if leaf `index` participates.
    pub fn contains(&self, index: usize) -> bool {
        self.leaves.contains(index)
    }

    /// Iterates the leaf indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.leaves.iter()
    }

    /// `true` if `self ⊆ other` — i.e. `self` subsumes `other` as a cut
    /// set (a smaller set of failures already causes the hazard).
    pub fn subsumes(&self, other: &CutSet) -> bool {
        self.leaves.is_subset(&other.leaves)
    }

    /// Union of two cut sets (the AND-combination).
    pub fn union(&self, other: &CutSet) -> CutSet {
        CutSet {
            leaves: self.leaves.union(&other.leaves),
        }
    }

    /// The underlying bit set.
    pub fn as_bitset(&self) -> &BitSet {
        &self.leaves
    }

    /// Leaf names (given the owning tree), for reports.
    pub fn names<'t>(&self, tree: &'t FaultTree) -> Vec<&'t str> {
        self.iter()
            .map(|i| tree.node(tree.leaf(i)).name())
            .collect()
    }

    /// The primary-failure members (leaf indices of non-condition leaves).
    pub fn failures(&self, tree: &FaultTree) -> Vec<usize> {
        self.iter()
            .filter(|&i| !tree.node(tree.leaf(i)).is_condition())
            .collect()
    }

    /// The condition members (leaf indices of condition leaves) — the
    /// constraints whose probabilities Eq. 2 multiplies in.
    pub fn conditions(&self, tree: &FaultTree) -> Vec<usize> {
        self.iter()
            .filter(|&i| tree.node(tree.leaf(i)).is_condition())
            .collect()
    }
}

impl FromIterator<usize> for CutSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        Self::from_leaves(iter)
    }
}

impl std::fmt::Display for CutSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.leaves)
    }
}

/// A minimized collection of cut sets (an antichain under ⊆).
///
/// Produced by the [`mcs`](crate::mcs) algorithms; the collection
/// guarantees that no member subsumes another after
/// [`minimize`](CutSetCollection::minimize).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CutSetCollection {
    sets: Vec<CutSet>,
}

impl CutSetCollection {
    /// Creates an empty collection (a function that is never true —
    /// no way to cause the hazard).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates from raw cut sets and minimizes immediately.
    pub fn from_sets(sets: Vec<CutSet>) -> Self {
        let mut c = Self { sets };
        c.minimize();
        c
    }

    /// Number of cut sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if there are no cut sets (hazard impossible).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The cut sets, sorted by (order, contents).
    pub fn sets(&self) -> &[CutSet] {
        &self.sets
    }

    /// Iterates the cut sets.
    pub fn iter(&self) -> impl Iterator<Item = &CutSet> {
        self.sets.iter()
    }

    /// Adds a cut set without minimizing (call
    /// [`minimize`](Self::minimize) afterwards).
    pub fn push(&mut self, set: CutSet) {
        self.sets.push(set);
    }

    /// Removes subsumed and duplicate sets, leaving a sorted antichain.
    ///
    /// An empty cut set subsumes everything: if present, the result is
    /// exactly `{∅}` (the hazard occurs unconditionally).
    pub fn minimize(&mut self) {
        // Sort by order so potential subsumers come first.
        self.sets.sort_by(|a, b| {
            a.order()
                .cmp(&b.order())
                .then_with(|| a.as_bitset().cmp(b.as_bitset()))
        });
        self.sets.dedup();
        let mut kept: Vec<CutSet> = Vec::with_capacity(self.sets.len());
        'outer: for set in self.sets.drain(..) {
            for k in &kept {
                if k.subsumes(&set) {
                    continue 'outer;
                }
            }
            kept.push(set);
        }
        self.sets = kept;
    }

    /// `true` if the collection is an antichain (no member subsumes
    /// another) — the defining invariant of *minimal* cut sets.
    pub fn is_minimal(&self) -> bool {
        for (i, a) in self.sets.iter().enumerate() {
            for (j, b) in self.sets.iter().enumerate() {
                if i != j && a.subsumes(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Largest cut-set order (0 for an empty collection).
    pub fn max_order(&self) -> usize {
        self.sets.iter().map(CutSet::order).max().unwrap_or(0)
    }

    /// The single-point-of-failure cut sets (order 1) — the paper's
    /// Elbtunnel analysis is dominated by these.
    pub fn single_points_of_failure(&self) -> impl Iterator<Item = &CutSet> {
        self.sets.iter().filter(|s| s.order() == 1)
    }

    /// Evaluates the monotone structure function over a leaf assignment:
    /// `true` iff some cut set is fully contained in `failed`.
    pub fn evaluate(&self, failed: &BitSet) -> bool {
        self.sets.iter().any(|cs| cs.as_bitset().is_subset(failed))
    }
}

impl FromIterator<CutSet> for CutSetCollection {
    fn from_iter<T: IntoIterator<Item = CutSet>>(iter: T) -> Self {
        Self::from_sets(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a CutSetCollection {
    type Item = &'a CutSet;
    type IntoIter = std::slice::Iter<'a, CutSet>;

    fn into_iter(self) -> Self::IntoIter {
        self.sets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsumption_semantics() {
        let small = CutSet::from_leaves([1]);
        let big = CutSet::from_leaves([1, 2]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(small.subsumes(&small));
        assert!(CutSet::empty().subsumes(&small));
    }

    #[test]
    fn minimize_removes_subsumed_and_duplicates() {
        let c = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([1, 2]),
            CutSet::from_leaves([1]),
            CutSet::from_leaves([1, 2, 3]),
            CutSet::from_leaves([2, 3]),
            CutSet::from_leaves([1]),
        ]);
        assert_eq!(c.len(), 2);
        assert!(c.is_minimal());
        let orders: Vec<usize> = c.iter().map(CutSet::order).collect();
        assert_eq!(orders, vec![1, 2]);
    }

    #[test]
    fn empty_cut_set_subsumes_everything() {
        let c = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([1, 2]),
            CutSet::empty(),
            CutSet::from_leaves([3]),
        ]);
        assert_eq!(c.len(), 1);
        assert!(c.sets()[0].is_empty());
    }

    #[test]
    fn minimize_is_idempotent() {
        let mut c = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([1, 2]),
            CutSet::from_leaves([2]),
            CutSet::from_leaves([4, 5]),
        ]);
        let once = c.clone();
        c.minimize();
        assert_eq!(c, once);
    }

    #[test]
    fn structure_function_evaluation() {
        let c = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([0, 1]),
            CutSet::from_leaves([2]),
        ]);
        let failed: BitSet = [0, 1].into_iter().collect();
        assert!(c.evaluate(&failed));
        let failed: BitSet = [0].into_iter().collect();
        assert!(!c.evaluate(&failed));
        let failed: BitSet = [2, 5].into_iter().collect();
        assert!(c.evaluate(&failed));
        assert!(!c.evaluate(&BitSet::new()));
    }

    #[test]
    fn spof_filter() {
        let c = CutSetCollection::from_sets(vec![
            CutSet::from_leaves([0]),
            CutSet::from_leaves([1, 2]),
            CutSet::from_leaves([3]),
        ]);
        assert_eq!(c.single_points_of_failure().count(), 2);
        assert_eq!(c.max_order(), 2);
    }

    #[test]
    fn failures_and_conditions_split() {
        let mut ft = FaultTree::new("t");
        let cause = ft.basic_event("pump fails").unwrap();
        let cond = ft.condition("reactor running").unwrap();
        let g = ft.inhibit_gate("top", cause, cond).unwrap();
        ft.set_root(g).unwrap();
        let cs = CutSet::from_leaves([0, 1]);
        assert_eq!(cs.failures(&ft), vec![0]);
        assert_eq!(cs.conditions(&ft), vec![1]);
        assert_eq!(cs.names(&ft), vec!["pump fails", "reactor running"]);
    }
}
