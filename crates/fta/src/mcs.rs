//! Minimal cut set computation.
//!
//! Two independent engines:
//!
//! * [`mocus`] — the classical top-down MOCUS algorithm (Fussell &
//!   Vesely): rows of node sets are expanded gate by gate until only
//!   leaves remain, then subsumption-minimized.
//! * [`bottom_up`] — a memoized bottom-up set-algebra engine that
//!   computes, for every node, the minimal cut sets of the sub-DAG it
//!   roots. Faster on trees with shared subtrees.
//!
//! Both return the same [`CutSetCollection`] (a property the test suite
//! and `proptest` enforce on random trees, with the BDD engine as a third
//! oracle). INHIBIT gates are treated as AND — their conditions simply
//! appear in the cut sets as condition leaves, which is exactly how the
//! paper's Eq. 2 wants constraints to surface for quantification.
//!
//! Both engines take an optional budget on intermediate cut-set counts and
//! fail with [`FtaError::BudgetExceeded`] instead of exhausting memory on
//! adversarial inputs.

use crate::cutset::{CutSet, CutSetCollection};
use crate::tree::{FaultTree, GateKind, NodeId, NodeKind};
use crate::{FtaError, Result};
use std::collections::HashSet;

/// Default limit on intermediate cut sets (per engine invocation).
pub const DEFAULT_BUDGET: usize = 1 << 20;

/// Computes minimal cut sets with MOCUS and the default budget.
///
/// # Errors
///
/// [`FtaError::NoRoot`] if the tree has no root, or
/// [`FtaError::BudgetExceeded`] if expansion explodes.
pub fn mocus(tree: &FaultTree) -> Result<CutSetCollection> {
    mocus_with_budget(tree, DEFAULT_BUDGET)
}

/// MOCUS with an explicit budget on live rows.
///
/// # Budget contract
///
/// The result is **all-or-nothing**: either the complete minimal
/// cut-set collection comes back, or the call fails with the typed
/// [`FtaError::BudgetExceeded`] — never a silently truncated
/// collection. The budget bounds *intermediate* state (live rows, and
/// the `C(n, k)` expansion of each k-of-n gate, which is pre-checked
/// before anything is materialized), so a call may fail even when the
/// final minimized collection would have been small.
///
/// # Errors
///
/// See [`mocus`].
pub fn mocus_with_budget(tree: &FaultTree, budget: usize) -> Result<CutSetCollection> {
    let root = tree.root()?;

    // A row is a conjunction of nodes still to be satisfied. Represent it
    // as a sorted Vec<NodeId> for cheap hashing/deduplication.
    type Row = Vec<NodeId>;
    let mut pending: Vec<Row> = vec![vec![root]];
    let mut seen: HashSet<Row> = HashSet::new();
    let mut done: Vec<CutSet> = Vec::new();

    while let Some(row) = pending.pop() {
        // Find the first gate in the row.
        let gate_pos = row
            .iter()
            .position(|&id| matches!(tree.node(id).kind(), NodeKind::Gate { .. }));
        let Some(pos) = gate_pos else {
            // Pure-leaf row: convert to a cut set.
            let cs: CutSet = row
                .iter()
                .map(|&id| tree.leaf_index(id).expect("leaf row"))
                .collect();
            done.push(cs);
            continue;
        };
        let gate_id = row[pos];
        let NodeKind::Gate { kind, inputs } = tree.node(gate_id).kind() else {
            unreachable!("position() found a gate");
        };

        let mut rest: Row = row;
        rest.remove(pos);

        let push_row =
            |mut new_row: Row, pending: &mut Vec<Row>, seen: &mut HashSet<Row>| -> Result<()> {
                new_row.sort_unstable();
                new_row.dedup();
                if seen.insert(new_row.clone()) {
                    pending.push(new_row);
                }
                if pending.len() + done.len() > budget {
                    return Err(FtaError::BudgetExceeded {
                        what: "MOCUS rows",
                        limit: budget,
                    });
                }
                Ok(())
            };

        match kind {
            GateKind::And | GateKind::Inhibit => {
                let mut new_row = rest;
                new_row.extend(inputs.iter().copied());
                push_row(new_row, &mut pending, &mut seen)?;
            }
            GateKind::Or => {
                for &input in inputs {
                    let mut new_row = rest.clone();
                    new_row.push(input);
                    push_row(new_row, &mut pending, &mut seen)?;
                }
            }
            GateKind::KOfN(k) => {
                // Pre-check the combinatorial count: C(n, k) can reach
                // hundreds of millions before the first row ever lands,
                // so the budget must refuse *before* materializing.
                check_combination_budget(inputs.len(), *k, budget, "MOCUS k-of-n expansion")?;
                for combo in combinations(inputs.len(), *k) {
                    let mut new_row = rest.clone();
                    new_row.extend(combo.iter().map(|&i| inputs[i]));
                    push_row(new_row, &mut pending, &mut seen)?;
                }
            }
        }
    }

    Ok(CutSetCollection::from_sets(done))
}

/// Computes minimal cut sets bottom-up with the default budget.
///
/// # Errors
///
/// [`FtaError::NoRoot`] if the tree has no root, or
/// [`FtaError::BudgetExceeded`] if an intermediate collection explodes.
pub fn bottom_up(tree: &FaultTree) -> Result<CutSetCollection> {
    bottom_up_with_budget(tree, DEFAULT_BUDGET)
}

/// Bottom-up engine with an explicit budget on intermediate cut sets.
///
/// # Budget contract
///
/// Identical to [`mocus_with_budget`]: **all-or-nothing** — a complete
/// collection or the typed [`FtaError::BudgetExceeded`], never silent
/// truncation. The budget bounds every intermediate collection
/// (OR unions, AND cross-products between minimization folds, and the
/// pre-checked `C(n, k)` expansion of k-of-n gates), so a call may fail
/// on intermediate size even when the final answer would fit.
///
/// # Errors
///
/// See [`bottom_up`].
pub fn bottom_up_with_budget(tree: &FaultTree, budget: usize) -> Result<CutSetCollection> {
    let root = tree.root()?;
    let mut memo: Vec<Option<CutSetCollection>> = vec![None; tree.len()];
    node_cut_sets(tree, root, budget, &mut memo)?;
    Ok(memo[root.index()].take().expect("computed"))
}

fn node_cut_sets(
    tree: &FaultTree,
    id: NodeId,
    budget: usize,
    memo: &mut Vec<Option<CutSetCollection>>,
) -> Result<()> {
    if memo[id.index()].is_some() {
        return Ok(());
    }
    let result = match tree.node(id).kind() {
        NodeKind::BasicEvent { .. } | NodeKind::Condition { .. } => {
            let slot = tree.leaf_index(id).expect("leaf has slot");
            CutSetCollection::from_sets(vec![CutSet::singleton(slot)])
        }
        NodeKind::Gate { kind, inputs } => {
            for &input in inputs {
                node_cut_sets(tree, input, budget, memo)?;
            }
            let input_sets: Vec<&CutSetCollection> = inputs
                .iter()
                .map(|&i| memo[i.index()].as_ref().expect("computed"))
                .collect();
            match kind {
                GateKind::Or => or_combine(&input_sets, budget)?,
                GateKind::And | GateKind::Inhibit => and_combine(&input_sets, budget)?,
                GateKind::KOfN(k) => {
                    check_combination_budget(
                        input_sets.len(),
                        *k,
                        budget,
                        "bottom-up k-of-n expansion",
                    )?;
                    let mut alternatives = Vec::new();
                    for combo in combinations(input_sets.len(), *k) {
                        let chosen: Vec<&CutSetCollection> =
                            combo.iter().map(|&i| input_sets[i]).collect();
                        alternatives.push(and_combine(&chosen, budget)?);
                    }
                    let refs: Vec<&CutSetCollection> = alternatives.iter().collect();
                    or_combine(&refs, budget)?
                }
            }
        }
    };
    memo[id.index()] = Some(result);
    Ok(())
}

fn or_combine(collections: &[&CutSetCollection], budget: usize) -> Result<CutSetCollection> {
    let total: usize = collections.iter().map(|c| c.len()).sum();
    if total > budget {
        return Err(FtaError::BudgetExceeded {
            what: "OR-combined cut sets",
            limit: budget,
        });
    }
    Ok(collections.iter().flat_map(|c| c.iter().cloned()).collect())
}

fn and_combine(collections: &[&CutSetCollection], budget: usize) -> Result<CutSetCollection> {
    let mut acc = vec![CutSet::empty()];
    for c in collections {
        let mut next = Vec::with_capacity(acc.len() * c.len());
        for a in &acc {
            for b in c.iter() {
                next.push(a.union(b));
                if next.len() > budget {
                    return Err(FtaError::BudgetExceeded {
                        what: "AND-combined cut sets",
                        limit: budget,
                    });
                }
            }
        }
        // Minimize between folds to keep intermediate products small.
        let collection = CutSetCollection::from_sets(next);
        acc = collection.iter().cloned().collect();
    }
    Ok(CutSetCollection::from_sets(acc))
}

/// Refuses a k-of-n expansion whose subset count alone already exceeds
/// the budget, *before* [`combinations`] materializes anything.
fn check_combination_budget(n: usize, k: usize, budget: usize, what: &'static str) -> Result<()> {
    if binomial_saturating(n, k) > budget {
        return Err(FtaError::BudgetExceeded {
            what,
            limit: budget,
        });
    }
    Ok(())
}

/// `C(n, k)`, saturating at `usize::MAX`. Exact below the saturation
/// point: each step of the multiplicative form divides a product of
/// consecutive integers by the full factorial prefix, so the running
/// value stays integral.
pub(crate) fn binomial_saturating(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i as u128 + 1);
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

/// Enumerates all `k`-element subsets of `0..n` in lexicographic order.
pub(crate) fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_of(tree: &FaultTree, c: &CutSetCollection) -> Vec<Vec<String>> {
        c.iter()
            .map(|cs| cs.names(tree).iter().map(|s| s.to_string()).collect())
            .collect()
    }

    fn simple_and_or() -> FaultTree {
        // top = (a AND b) OR c
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let c = ft.basic_event("c").unwrap();
        let g1 = ft.and_gate("ab", [a, b]).unwrap();
        let top = ft.or_gate("top", [g1, c]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn combinations_enumeration() {
        assert_eq!(combinations(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(combinations(4, 1).len(), 4);
        assert_eq!(combinations(4, 4), vec![vec![0, 1, 2, 3]]);
        assert_eq!(combinations(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(combinations(5, 3).len(), 10);
    }

    #[test]
    fn and_or_tree_both_engines() {
        let ft = simple_and_or();
        for engine in [mocus, bottom_up] {
            let mcs = engine(&ft).unwrap();
            assert_eq!(mcs.len(), 2);
            let got = names_of(&ft, &mcs);
            assert!(got.contains(&vec!["c".to_string()]));
            assert!(got.contains(&vec!["a".to_string(), "b".to_string()]));
            assert!(mcs.is_minimal());
        }
    }

    #[test]
    fn subsumption_across_gates() {
        // top = a OR (a AND b): {a} subsumes {a, b}.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let g = ft.and_gate("ab", [a, b]).unwrap();
        let top = ft.or_gate("top", [a, g]).unwrap();
        ft.set_root(top).unwrap();
        for engine in [mocus, bottom_up] {
            let mcs = engine(&ft).unwrap();
            assert_eq!(mcs.len(), 1);
            assert_eq!(mcs.sets()[0], CutSet::singleton(0));
        }
    }

    #[test]
    fn k_of_n_gate_expansion() {
        // 2-of-3 over {a, b, c} → {ab, ac, bc}.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let c = ft.basic_event("c").unwrap();
        let top = ft.k_of_n_gate("vote", 2, [a, b, c]).unwrap();
        ft.set_root(top).unwrap();
        for engine in [mocus, bottom_up] {
            let mcs = engine(&ft).unwrap();
            assert_eq!(mcs.len(), 3);
            assert!(mcs.iter().all(|cs| cs.order() == 2));
        }
    }

    #[test]
    fn inhibit_gate_collects_condition() {
        let mut ft = FaultTree::new("t");
        let cause = ft.basic_event("cooling fails").unwrap();
        let cond = ft.condition("system running").unwrap();
        let top = ft.inhibit_gate("overheat", cause, cond).unwrap();
        ft.set_root(top).unwrap();
        for engine in [mocus, bottom_up] {
            let mcs = engine(&ft).unwrap();
            assert_eq!(mcs.len(), 1);
            let cs = &mcs.sets()[0];
            assert_eq!(cs.order(), 2);
            assert_eq!(cs.failures(&ft), vec![0]);
            assert_eq!(cs.conditions(&ft), vec![1]);
        }
    }

    #[test]
    fn shared_subtree_handled_once() {
        // top = (s AND a) OR (s AND b), s shared OR-subtree of {x, y}.
        let mut ft = FaultTree::new("t");
        let x = ft.basic_event("x").unwrap();
        let y = ft.basic_event("y").unwrap();
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        let s = ft.or_gate("s", [x, y]).unwrap();
        let left = ft.and_gate("left", [s, a]).unwrap();
        let right = ft.and_gate("right", [s, b]).unwrap();
        let top = ft.or_gate("top", [left, right]).unwrap();
        ft.set_root(top).unwrap();
        for engine in [mocus, bottom_up] {
            let mcs = engine(&ft).unwrap();
            // {x,a},{y,a},{x,b},{y,b}
            assert_eq!(mcs.len(), 4);
            assert!(mcs.iter().all(|cs| cs.order() == 2));
        }
    }

    #[test]
    fn engines_agree_on_deep_mixed_tree() {
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..6)
            .map(|i| ft.basic_event(format!("e{i}")).unwrap())
            .collect();
        let g1 = ft.and_gate("g1", [leaves[0], leaves[1]]).unwrap();
        let g2 = ft.or_gate("g2", [leaves[2], leaves[3]]).unwrap();
        let g3 = ft.k_of_n_gate("g3", 2, [g1, g2, leaves[4]]).unwrap();
        let top = ft.or_gate("top", [g3, leaves[5]]).unwrap();
        ft.set_root(top).unwrap();
        let a = mocus(&ft).unwrap();
        let b = bottom_up(&ft).unwrap();
        assert_eq!(a, b);
        assert!(a.is_minimal());
    }

    #[test]
    fn budget_exceeded_is_detected() {
        // 2-of-20 voting gate has 190 cut sets; a budget of 10 must fail.
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..20)
            .map(|i| ft.basic_event(format!("e{i}")).unwrap())
            .collect();
        let top = ft.k_of_n_gate("vote", 2, leaves).unwrap();
        ft.set_root(top).unwrap();
        assert!(matches!(
            mocus_with_budget(&ft, 10),
            Err(FtaError::BudgetExceeded { .. })
        ));
        assert!(matches!(
            bottom_up_with_budget(&ft, 10),
            Err(FtaError::BudgetExceeded { .. })
        ));
        // And with the default budget both succeed.
        assert_eq!(mocus(&ft).unwrap().len(), 190);
        assert_eq!(bottom_up(&ft).unwrap().len(), 190);
    }

    #[test]
    fn binomial_saturating_is_exact_then_saturates() {
        assert_eq!(binomial_saturating(5, 0), 1);
        assert_eq!(binomial_saturating(5, 5), 1);
        assert_eq!(binomial_saturating(5, 2), 10);
        assert_eq!(binomial_saturating(30, 15), 155_117_520);
        assert_eq!(binomial_saturating(3, 7), 0);
        assert_eq!(binomial_saturating(1000, 500), usize::MAX);
    }

    /// Regression: a 15-of-30 voter has 155 million subsets; the
    /// engines used to materialize the full `combinations` vector
    /// before the first budget check ran (gigabytes of allocation on a
    /// budget of 1000). The pre-check must refuse immediately.
    #[test]
    fn huge_kofn_fails_fast_instead_of_materializing() {
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..30)
            .map(|i| ft.basic_event(format!("e{i}")).unwrap())
            .collect();
        let top = ft.k_of_n_gate("vote", 15, leaves).unwrap();
        ft.set_root(top).unwrap();
        let start = std::time::Instant::now();
        assert!(matches!(
            mocus_with_budget(&ft, 1000),
            Err(FtaError::BudgetExceeded { .. })
        ));
        assert!(matches!(
            bottom_up_with_budget(&ft, 1000),
            Err(FtaError::BudgetExceeded { .. })
        ));
        // Generous bound — the point is "refused", not "enumerated".
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }

    /// The documented all-or-nothing contract: the budget bounds
    /// intermediates, so a tree whose *final* answer is tiny can still
    /// exceed it — and then the caller gets the typed error, never a
    /// truncated collection.
    #[test]
    fn intermediate_blowup_errors_even_when_final_answer_is_small() {
        // and(or(e0..e14), or(e0..e14)) over the *same* leaves: the
        // cross-product holds 225 sets before minimization collapses
        // them to the 15 singletons.
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..15)
            .map(|i| ft.basic_event(format!("e{i}")).unwrap())
            .collect();
        let g1 = ft.or_gate("g1", leaves.clone()).unwrap();
        let g2 = ft.or_gate("g2", leaves).unwrap();
        let top = ft.and_gate("top", [g1, g2]).unwrap();
        ft.set_root(top).unwrap();
        // Unbudgeted: the minimized answer is small.
        assert_eq!(bottom_up(&ft).unwrap().len(), 15);
        assert_eq!(mocus(&ft).unwrap().len(), 15);
        // Budget below the intermediate peak: typed error from both.
        assert!(matches!(
            bottom_up_with_budget(&ft, 100),
            Err(FtaError::BudgetExceeded { .. })
        ));
        assert!(matches!(
            mocus_with_budget(&ft, 100),
            Err(FtaError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn no_root_is_an_error() {
        let mut ft = FaultTree::new("t");
        let _ = ft.basic_event("a").unwrap();
        assert!(matches!(mocus(&ft), Err(FtaError::NoRoot)));
        assert!(matches!(bottom_up(&ft), Err(FtaError::NoRoot)));
    }
}
