//! Importance measures: which primary failure matters most?
//!
//! Quantitative FTA does not stop at the hazard probability — the paper's
//! case study ("it turns out that [HV at ODfinal] will be the dominating
//! factor in the hazard's overall probability by two orders of magnitude")
//! is an importance argument. This module computes the standard measures,
//! all on the exact BDD engine:
//!
//! * **Birnbaum** `I_B(i) = P(top | pᵢ=1) − P(top | pᵢ=0)` — the
//!   sensitivity of the hazard to component `i`.
//! * **Fussell–Vesely** `I_FV(i)` — fraction of the hazard probability
//!   flowing through cut sets containing `i`.
//! * **Risk Achievement Worth** `RAW(i) = P(top | pᵢ=1) / P(top)`.
//! * **Risk Reduction Worth** `RRW(i) = P(top) / P(top | pᵢ=0)`.
//! * **Criticality** `I_C(i) = I_B(i) · pᵢ / P(top)`.
//!
//! Since the top-event probability is **multilinear** in the leaf
//! probabilities, every conditional `P(top | pᵢ=v)` is an affine
//! function of `I_B(i) = ∂P/∂qᵢ` — so instead of `2·n` BDD
//! re-evaluations with forced leaves, all measures now come from **one
//! reverse-mode adjoint sweep** over the BDD's compiled Shannon leaf
//! tape ([`crate::bdd::ShannonPlan::probability_and_birnbaum`]): one
//! forward + one backward pass yields `P(top)` and every `∂P/∂qᵢ` at
//! once, and `P(top | qᵢ=v) = P(top) + (v − qᵢ)·I_B(i)` exactly.

use crate::bdd::TreeBdd;
use crate::quant::{cut_set_probability, rare_event, ProbabilityMap};
use crate::tree::FaultTree;
use crate::Result;

/// All importance measures for one leaf.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LeafImportance {
    /// Leaf index within the tree.
    pub leaf: usize,
    /// Leaf name.
    pub name: String,
    /// The leaf's own probability.
    pub probability: f64,
    /// Birnbaum structural sensitivity.
    pub birnbaum: f64,
    /// Fussell–Vesely fractional contribution.
    pub fussell_vesely: f64,
    /// Risk achievement worth (∞ is clamped to `f64::INFINITY`).
    pub raw: f64,
    /// Risk reduction worth (∞ if removing the leaf eliminates the
    /// hazard).
    pub rrw: f64,
    /// Criticality importance.
    pub criticality: f64,
}

/// Importance analysis of a whole tree.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImportanceReport {
    /// Baseline hazard probability (BDD-exact).
    pub hazard_probability: f64,
    /// Per-leaf measures, sorted by descending Birnbaum importance.
    pub leaves: Vec<LeafImportance>,
}

impl ImportanceReport {
    /// Computes all measures for every leaf reachable from the root.
    ///
    /// # Errors
    ///
    /// Structural errors from tree/BDD construction and
    /// [`crate::FtaError::MissingProbability`] for uncovered leaves.
    pub fn compute(tree: &FaultTree, probs: &ProbabilityMap) -> Result<Self> {
        let bdd = TreeBdd::build(tree)?;
        let mcs = crate::mcs::bottom_up(tree)?;
        let reachable = tree.reachable_leaves()?;

        // Dense leaf-probability input for the Shannon leaf tape; every
        // reachable leaf must be covered (the BDD references a subset).
        let mut q = vec![0.0; tree.leaves().len()];
        for &leaf in &reachable {
            q[leaf] = probs
                .get(leaf)
                .ok_or_else(|| crate::FtaError::MissingProbability {
                    event: format!("leaf index {leaf}"),
                })?;
        }
        // One adjoint sweep: P(top) plus every Birnbaum ∂P/∂qᵢ at once
        // (P(top) is bit-identical to `bdd.probability(probs)`).
        let (p_top, birnbaum_all) = bdd.shannon_plan().probability_and_birnbaum(&q);
        let rare_total = rare_event(&mcs, probs)?;

        let mut leaves = Vec::new();
        for leaf in reachable {
            let p_leaf = q[leaf];
            let birnbaum = birnbaum_all[leaf];
            // Multilinearity: P(top | qᵢ = v) = P(top) + (v − qᵢ)·I_B.
            let p_up = p_top + (1.0 - p_leaf) * birnbaum;
            let mut p_down = p_top - p_leaf * birnbaum;
            if p_down < p_top * 1e-8 {
                // Near-total cancellation: for a dominant component the
                // tiny conditional P(top | qᵢ=0) drowns in the
                // subtraction. One exact forced re-evaluation for just
                // this leaf restores it (RRW is precisely the measure
                // about dominant components).
                p_down = bdd.probability(&probs.with_forced(leaf, 0.0)?)?;
            }

            // Fussell–Vesely over the rare-event decomposition (standard
            // practice: contribution of cut sets containing the leaf).
            let mut through = 0.0;
            for cs in mcs.iter().filter(|cs| cs.contains(leaf)) {
                through += cut_set_probability(cs, probs)?;
            }
            let fussell_vesely = if rare_total > 0.0 {
                through / rare_total
            } else {
                0.0
            };

            let raw = if p_top > 0.0 {
                p_up / p_top
            } else {
                f64::INFINITY
            };
            let rrw = if p_down > 0.0 {
                p_top / p_down
            } else if p_top > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            let criticality = if p_top > 0.0 {
                birnbaum * p_leaf / p_top
            } else {
                0.0
            };

            leaves.push(LeafImportance {
                leaf,
                name: tree.node(tree.leaf(leaf)).name().to_owned(),
                probability: p_leaf,
                birnbaum,
                fussell_vesely,
                raw,
                rrw,
                criticality,
            });
        }
        leaves.sort_by(|a, b| b.birnbaum.partial_cmp(&a.birnbaum).unwrap());
        Ok(Self {
            hazard_probability: p_top,
            leaves,
        })
    }

    /// The most Birnbaum-important leaf, if any.
    pub fn most_important(&self) -> Option<&LeafImportance> {
        self.leaves.first()
    }

    /// Looks a leaf's measures up by name.
    pub fn by_name(&self, name: &str) -> Option<&LeafImportance> {
        self.leaves.iter().find(|l| l.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// top = spof OR (x AND y): the single point of failure dominates.
    fn spof_tree() -> FaultTree {
        let mut ft = FaultTree::new("t");
        let spof = ft.basic_event_with_probability("spof", 0.01).unwrap();
        let x = ft.basic_event_with_probability("x", 0.001).unwrap();
        let y = ft.basic_event_with_probability("y", 0.001).unwrap();
        let g = ft.and_gate("xy", [x, y]).unwrap();
        let top = ft.or_gate("top", [spof, g]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn spof_dominates_all_measures() {
        let ft = spof_tree();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        let top = report.most_important().unwrap();
        assert_eq!(top.name, "spof");
        let spof = report.by_name("spof").unwrap();
        let x = report.by_name("x").unwrap();
        assert!(spof.birnbaum > x.birnbaum);
        assert!(spof.fussell_vesely > 0.9);
        assert!(spof.criticality > x.criticality);
    }

    #[test]
    fn birnbaum_of_series_system() {
        // Pure AND of two events: I_B(a) = p_b.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.3).unwrap();
        let b = ft.basic_event_with_probability("b", 0.7).unwrap();
        let top = ft.and_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        let ia = report.by_name("a").unwrap();
        assert!((ia.birnbaum - 0.7).abs() < 1e-12);
        let ib = report.by_name("b").unwrap();
        assert!((ib.birnbaum - 0.3).abs() < 1e-12);
    }

    #[test]
    fn birnbaum_of_parallel_system() {
        // Pure OR of two events: I_B(a) = 1 − p_b.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.3).unwrap();
        let b = ft.basic_event_with_probability("b", 0.7).unwrap();
        let top = ft.or_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        assert!((report.by_name("a").unwrap().birnbaum - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fussell_vesely_sums_reasonably() {
        // With disjoint single-event cut sets, FV fractions sum to ~1.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.01).unwrap();
        let b = ft.basic_event_with_probability("b", 0.03).unwrap();
        let top = ft.or_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        let sum: f64 = report.leaves.iter().map(|l| l.fussell_vesely).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((report.by_name("b").unwrap().fussell_vesely - 0.75).abs() < 1e-12);
    }

    #[test]
    fn raw_and_rrw_semantics() {
        let ft = spof_tree();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        let spof = report.by_name("spof").unwrap();
        // Forcing the SPOF on makes the hazard certain: RAW = 1 / P(top).
        assert!((spof.raw - 1.0 / report.hazard_probability).abs() < 1e-6);
        assert!(spof.raw > 1.0);
        // Removing the SPOF leaves only the tiny AND term: RRW ≫ 1.
        assert!(spof.rrw > 100.0);
    }

    #[test]
    fn adjoint_measures_match_forced_reevaluation_oracle() {
        // The pre-adjoint implementation re-evaluated the BDD with each
        // leaf forced to 1 and 0; multilinearity makes the adjoint route
        // exact, and this pins it against that oracle on trees with
        // shared events and a k-of-n vote.
        use crate::synth::{random_tree, RandomTreeConfig};
        for seed in 0..8 {
            let ft = random_tree(RandomTreeConfig::default(), seed);
            let pm = ft.stored_probabilities().unwrap();
            let bdd = TreeBdd::build(&ft).unwrap();
            let p_top = bdd.probability(&pm).unwrap();
            let report = ImportanceReport::compute(&ft, &pm).unwrap();
            assert_eq!(report.hazard_probability.to_bits(), p_top.to_bits());
            for li in &report.leaves {
                let up = bdd
                    .probability(&pm.with_forced(li.leaf, 1.0).unwrap())
                    .unwrap();
                let down = bdd
                    .probability(&pm.with_forced(li.leaf, 0.0).unwrap())
                    .unwrap();
                let scale = li.birnbaum.abs().max(1e-12);
                assert!(
                    (li.birnbaum - (up - down)).abs() <= 1e-12 * scale.max(1.0),
                    "seed {seed}, leaf {}: adjoint {} vs oracle {}",
                    li.leaf,
                    li.birnbaum,
                    up - down
                );
            }
        }
    }

    #[test]
    fn rrw_of_dominant_component_survives_cancellation() {
        // top = spof OR (x1 AND x2 AND x3 AND x4): removing the SPOF
        // leaves P ≈ 1e-20 — far below p_top·ε, so the multilinear
        // subtraction p_top − q·I_B alone would round the conditional
        // to 0 (RRW = ∞). The forced-evaluation fallback must recover
        // the exact tiny value.
        let mut ft = FaultTree::new("t");
        let spof = ft.basic_event_with_probability("spof", 0.5).unwrap();
        let xs: Vec<_> = (0..4)
            .map(|i| {
                ft.basic_event_with_probability(format!("x{i}"), 1e-5)
                    .unwrap()
            })
            .collect();
        let g = ft.and_gate("xs", xs).unwrap();
        let top = ft.or_gate("top", [spof, g]).unwrap();
        ft.set_root(top).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        let spof = report.by_name("spof").unwrap();
        let p_down = 1e-20; // P(x1..x4 all fail)
        let want = report.hazard_probability / p_down;
        assert!(
            spof.rrw.is_finite(),
            "RRW must be the exact ratio, not ∞ from a rounded-to-zero conditional"
        );
        assert!(
            (spof.rrw - want).abs() <= 1e-9 * want,
            "RRW {} vs exact {want}",
            spof.rrw
        );
    }

    #[test]
    fn report_skips_unreachable_leaves() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let _orphan = ft.basic_event_with_probability("orphan", 0.9).unwrap();
        let b = ft.basic_event_with_probability("b", 0.1).unwrap();
        let top = ft.or_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let report = ImportanceReport::compute(&ft, &pm).unwrap();
        assert_eq!(report.leaves.len(), 2);
        assert!(report.by_name("orphan").is_none());
    }
}
