//! Rendering fault trees: Graphviz DOT and indented ASCII.
//!
//! The DOT output mirrors the conventional symbols of the paper's Fig. 1
//! in shape vocabulary: circles for primary failures, ovals (hexagons
//! here) for INHIBIT conditions, boxed labels for gates.

use crate::tree::{FaultTree, GateKind, NodeId, NodeKind};
use crate::Result;
use std::fmt::Write as _;

/// Renders the whole tree (from its root) as a Graphviz `digraph`.
///
/// # Errors
///
/// [`crate::FtaError::NoRoot`] if no root is set.
///
/// ```
/// use safety_opt_fta::tree::FaultTree;
/// use safety_opt_fta::render::to_dot;
///
/// # fn main() -> Result<(), safety_opt_fta::FtaError> {
/// let mut ft = FaultTree::new("Collision");
/// let a = ft.basic_event("driver ignores signal")?;
/// let b = ft.basic_event("signal fails")?;
/// let top = ft.or_gate("Collision", [a, b])?;
/// ft.set_root(top)?;
/// let dot = to_dot(&ft)?;
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("Collision"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(tree: &FaultTree) -> Result<String> {
    let root = tree.root()?;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(tree.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let mut seen = vec![false; tree.len()];
    let mut stack = vec![root];
    let mut edges = Vec::new();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        let node = tree.node(id);
        match node.kind() {
            NodeKind::BasicEvent { probability } => {
                let label = match probability {
                    Some(p) => format!("{}\\np = {p:.3e}", escape(node.name())),
                    None => escape(node.name()),
                };
                let _ = writeln!(out, "  n{} [shape=circle, label=\"{label}\"];", id.index());
            }
            NodeKind::Condition { probability } => {
                let label = match probability {
                    Some(p) => format!("{}\\np = {p:.3e}", escape(node.name())),
                    None => escape(node.name()),
                };
                let _ = writeln!(out, "  n{} [shape=hexagon, label=\"{label}\"];", id.index());
            }
            NodeKind::Gate { kind, inputs } => {
                let symbol = match kind {
                    GateKind::And => "AND".to_string(),
                    GateKind::Or => "OR".to_string(),
                    GateKind::KOfN(k) => format!("{k}/{}", inputs.len()),
                    GateKind::Inhibit => "INHIBIT".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  n{} [shape=box, label=\"{}\\n[{symbol}]\"];",
                    id.index(),
                    escape(node.name())
                );
                for &input in inputs {
                    edges.push((id, input));
                    stack.push(input);
                }
            }
        }
    }
    for (from, to) in edges {
        let style = if is_condition(tree, to) {
            " [style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} -> n{}{style};", from.index(), to.index());
    }
    out.push_str("}\n");
    Ok(out)
}

fn is_condition(tree: &FaultTree, id: NodeId) -> bool {
    tree.node(id).is_condition()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the tree as an indented ASCII outline (DAG nodes that occur
/// several times are expanded at first visit and referenced as `^name`
/// afterwards).
///
/// # Errors
///
/// [`crate::FtaError::NoRoot`] if no root is set.
pub fn to_ascii(tree: &FaultTree) -> Result<String> {
    let root = tree.root()?;
    let mut out = String::new();
    let mut expanded = vec![false; tree.len()];
    render_ascii(tree, root, 0, &mut expanded, &mut out);
    Ok(out)
}

fn render_ascii(
    tree: &FaultTree,
    id: NodeId,
    depth: usize,
    expanded: &mut [bool],
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let node = tree.node(id);
    match node.kind() {
        NodeKind::BasicEvent { probability } => {
            let p = probability
                .map(|p| format!(" (p = {p:.3e})"))
                .unwrap_or_default();
            let _ = writeln!(out, "{indent}o {}{p}", node.name());
        }
        NodeKind::Condition { probability } => {
            let p = probability
                .map(|p| format!(" (p = {p:.3e})"))
                .unwrap_or_default();
            let _ = writeln!(out, "{indent}? {}{p} [condition]", node.name());
        }
        NodeKind::Gate { kind, inputs } => {
            if std::mem::replace(&mut expanded[id.index()], true) {
                let _ = writeln!(out, "{indent}^ {}", node.name());
                return;
            }
            let _ = writeln!(out, "{indent}[{kind}] {}", node.name());
            for &input in inputs {
                render_ascii(tree, input, depth + 1, expanded, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> FaultTree {
        let mut ft = FaultTree::new("Collision");
        let a = ft
            .basic_event_with_probability("driver ignores", 0.01)
            .unwrap();
        let b = ft.basic_event("signal fails").unwrap();
        let cond = ft.condition_with_probability("OHV present", 0.001).unwrap();
        let g = ft.or_gate("signal not on", [b]).unwrap();
        let inh = ft.inhibit_gate("critical", g, cond).unwrap();
        let top = ft.or_gate("Collision", [a, inh]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn dot_contains_all_reachable_nodes_and_shapes() {
        let ft = sample_tree();
        let dot = to_dot(&ft).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=hexagon"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("INHIBIT"));
        assert!(dot.contains("style=dashed")); // condition edge
        assert!(dot.contains("p = 1.000e-2"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut ft = FaultTree::new("t\"quoted\"");
        let a = ft.basic_event("ev \"x\"").unwrap();
        let top = ft.or_gate("top", [a]).unwrap();
        ft.set_root(top).unwrap();
        let dot = to_dot(&ft).unwrap();
        assert!(dot.contains("\\\"x\\\""));
    }

    #[test]
    fn ascii_outline_structure() {
        let ft = sample_tree();
        let text = to_ascii(&ft).unwrap();
        assert!(text.contains("[OR] Collision"));
        assert!(text.contains("[INHIBIT] critical"));
        assert!(text.contains("? OHV present"));
        assert!(text.contains("o driver ignores"));
        // Indentation increases with depth.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("[OR]"));
        assert!(lines[1].starts_with("  "));
    }

    #[test]
    fn ascii_shares_repeated_subtrees() {
        let mut ft = FaultTree::new("t");
        let x = ft.basic_event("x").unwrap();
        let y = ft.basic_event("y").unwrap();
        let shared = ft.or_gate("shared", [x, y]).unwrap();
        let a = ft.and_gate("a", [shared, x]).unwrap();
        let b = ft.and_gate("b", [shared, y]).unwrap();
        let top = ft.or_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        let text = to_ascii(&ft).unwrap();
        // The shared gate is expanded once and referenced once.
        assert_eq!(text.matches("[OR] shared").count(), 1);
        assert_eq!(text.matches("^ shared").count(), 1);
    }

    #[test]
    fn rendering_requires_root() {
        let ft = FaultTree::new("t");
        assert!(to_dot(&ft).is_err());
        assert!(to_ascii(&ft).is_err());
    }
}
