//! Binary decision diagrams (BDDs) for fault trees.
//!
//! A reduced ordered BDD represents the tree's *structure function*
//! exactly, which buys two things the cut-set view cannot give:
//!
//! 1. **Exact hazard probabilities** by Shannon decomposition — no
//!    rare-event approximation, no inclusion–exclusion blow-up. The paper
//!    uses the engineering-standard Eq. 1 approximation; comparing it
//!    against the BDD-exact value quantifies the approximation error.
//! 2. An **independent oracle** for the MOCUS/bottom-up cut-set engines:
//!    the minimal solutions of a coherent BDD are exactly the minimal cut
//!    sets (Rauzy's algorithm).
//!
//! The implementation is a classic unique-table manager with an ITE-based
//! apply, memoized probability evaluation, and memoized minimal-solution
//! extraction. Variables are the tree's leaves, ordered by first DFS
//! visit (a standard, effective static heuristic).

use crate::cutset::{CutSet, CutSetCollection};
use crate::quant::ProbabilityMap;
use crate::tree::{FaultTree, GateKind, NodeId, NodeKind};
use crate::{FtaError, Result};
use std::collections::HashMap;

use safety_opt_telemetry as telemetry;

/// BDDs compiled by [`TreeBdd::build`]/[`TreeBdd::build_with_order`].
static BDD_BUILDS: telemetry::Counter = telemetry::Counter::new("fta.bdd.builds");
/// Internal nodes reachable from the roots of built BDDs.
static BDD_NODES: telemetry::Counter = telemetry::Counter::new("fta.bdd.nodes");
/// Total nodes allocated building BDDs, including construction garbage.
static BDD_ALLOCATED: telemetry::Counter = telemetry::Counter::new("fta.bdd.allocated");
/// Shannon plans exported by [`TreeBdd::shannon_plan`].
static SHANNON_PLANS: telemetry::Counter = telemetry::Counter::new("fta.shannon.plans");
/// Decomposition nodes across exported Shannon plans.
static SHANNON_NODES: telemetry::Counter = telemetry::Counter::new("fta.shannon.nodes");

/// Reference to a BDD node inside one manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Ref(u32);

const FALSE: Ref = Ref(0);
const TRUE: Ref = Ref(1);

#[derive(Debug, Clone, Copy)]
struct BddNode {
    /// Variable level (lower = nearer the root). `u32::MAX` on terminals.
    var: u32,
    low: Ref,
    high: Ref,
}

/// A fault tree compiled to a reduced ordered BDD.
///
/// ```
/// use safety_opt_fta::bdd::TreeBdd;
/// use safety_opt_fta::tree::FaultTree;
///
/// # fn main() -> Result<(), safety_opt_fta::FtaError> {
/// let mut ft = FaultTree::new("t");
/// let a = ft.basic_event_with_probability("a", 0.1)?;
/// let b = ft.basic_event_with_probability("b", 0.2)?;
/// let top = ft.and_gate("top", [a, b])?;
/// ft.set_root(top)?;
///
/// let bdd = TreeBdd::build(&ft)?;
/// let p = bdd.probability(&ft.stored_probabilities()?)?;
/// assert!((p - 0.02).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreeBdd {
    nodes: Vec<BddNode>,
    root: Ref,
    /// BDD level → leaf index of the owning tree.
    level_to_leaf: Vec<usize>,
    /// Leaf index → BDD level.
    leaf_to_level: HashMap<usize, u32>,
    /// Number of leaves in the owning tree (cut sets use leaf indices).
    num_leaves: usize,
}

/// Internal construction state (unique table + op caches).
struct Builder {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
}

impl Builder {
    fn new() -> Self {
        let terminals = vec![
            BddNode {
                var: u32::MAX,
                low: FALSE,
                high: FALSE,
            },
            BddNode {
                var: u32::MAX,
                low: TRUE,
                high: TRUE,
            },
        ];
        Self {
            nodes: terminals,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    fn var_of(&self, r: Ref) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn mk(&mut self, var: u32, low: Ref, high: Ref) -> Ref {
        if low == high {
            return low;
        }
        *self.unique.entry((var, low, high)).or_insert_with(|| {
            let r = Ref(self.nodes.len() as u32);
            self.nodes.push(BddNode { var, low, high });
            r
        })
    }

    fn variable(&mut self, level: u32) -> Ref {
        self.mk(level, FALSE, TRUE)
    }

    fn cofactor(&self, f: Ref, var: u32) -> (Ref, Ref) {
        let node = self.nodes[f.0 as usize];
        if node.var == var {
            (node.low, node.high)
        } else {
            (f, f)
        }
    }

    /// If-then-else: the universal binary/ternary operator.
    fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal shortcuts.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let (h0, h1) = self.cofactor(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, FALSE)
    }

    fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, TRUE, g)
    }
}

impl TreeBdd {
    /// Compiles `tree` with the default variable order (first DFS visit).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if the tree has no root.
    pub fn build(tree: &FaultTree) -> Result<Self> {
        let order = dfs_leaf_order(tree)?;
        Self::build_with_order(tree, order)
    }

    /// Compiles `tree` with an explicit variable order (a permutation of
    /// the reachable leaf indices; unreached leaves may be omitted).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if the tree has no root, or
    /// [`FtaError::UnknownNode`] if `order` references an invalid leaf or
    /// omits a reachable one.
    pub fn build_with_order(tree: &FaultTree, order: Vec<usize>) -> Result<Self> {
        // Deterministic fault-injection site: every BDD compilation
        // funnels through here (`build`, `build_sifted`, module-wise
        // plans), so one armed site covers all Shannon/apply work.
        if safety_opt_engine::faultinject::should_fail(
            safety_opt_engine::faultinject::sites::BDD_APPLY,
        ) {
            return Err(FtaError::FaultInjected {
                site: safety_opt_engine::faultinject::sites::BDD_APPLY,
            });
        }
        let root_id = tree.root()?;
        let mut leaf_to_level: HashMap<usize, u32> = HashMap::new();
        for (level, &leaf) in order.iter().enumerate() {
            if leaf >= tree.leaves().len() {
                return Err(FtaError::UnknownNode {
                    reference: format!("leaf index {leaf}"),
                });
            }
            if leaf_to_level.insert(leaf, level as u32).is_some() {
                return Err(FtaError::UnknownNode {
                    reference: format!("duplicate leaf index {leaf} in order"),
                });
            }
        }
        for leaf in tree.reachable_leaves()? {
            if !leaf_to_level.contains_key(&leaf) {
                return Err(FtaError::UnknownNode {
                    reference: format!("reachable leaf index {leaf} missing from order"),
                });
            }
        }

        let mut b = Builder::new();
        let mut memo: HashMap<NodeId, Ref> = HashMap::new();
        let root = build_node(tree, root_id, &leaf_to_level, &mut b, &mut memo);
        let built = Self {
            nodes: b.nodes,
            root,
            level_to_leaf: order,
            leaf_to_level,
            num_leaves: tree.leaves().len(),
        };
        // Gated: the reachable-node count is a DFS, not a field read.
        if telemetry::counters_enabled() {
            BDD_BUILDS.add(1);
            BDD_NODES.add(built.node_count() as u64);
            BDD_ALLOCATED.add(built.allocated_count() as u64);
        }
        Ok(built)
    }

    /// Compiles `tree` with a greedy **sifting** pass: starting from the
    /// DFS order, repeatedly tries adjacent transpositions of the
    /// variable order (rebuilding through
    /// [`build_with_order`](Self::build_with_order)) and keeps every
    /// swap that shrinks the reachable node count, until a full sweep
    /// finds no improvement or the cumulative **allocated-node budget**
    /// is exhausted — whichever comes first, the best BDD seen so far is
    /// returned (never an error from running out of budget).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if the tree has no root.
    pub fn build_sifted(tree: &FaultTree, node_budget: usize) -> Result<Self> {
        let mut order = dfs_leaf_order(tree)?;
        let mut best = Self::build_with_order(tree, order.clone())?;
        let mut spent = best.allocated_count();
        if order.len() < 2 {
            return Ok(best);
        }
        loop {
            let mut improved = false;
            for i in 0..order.len() - 1 {
                order.swap(i, i + 1);
                let candidate = Self::build_with_order(tree, order.clone())?;
                spent = spent.saturating_add(candidate.allocated_count());
                let better = candidate.node_count() < best.node_count();
                if better {
                    best = candidate;
                    improved = true;
                } else {
                    order.swap(i, i + 1);
                }
                if spent >= node_budget {
                    return Ok(best);
                }
            }
            if !improved {
                return Ok(best);
            }
        }
    }

    /// Number of internal BDD nodes reachable from the root (excluding
    /// the two terminals). Construction may allocate further nodes that
    /// became garbage during intermediate folds; see
    /// [`allocated_count`](Self::allocated_count).
    pub fn node_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.root];
        while let Some(r) = stack.pop() {
            if r == TRUE || r == FALSE || !seen.insert(r) {
                continue;
            }
            let node = self.nodes[r.0 as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    /// Total nodes allocated by the manager, including construction
    /// garbage (excluding terminals). Useful for benchmarking variable
    /// orders.
    pub fn allocated_count(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }

    /// `true` if the structure function is constant `false` (hazard
    /// impossible).
    pub fn is_false(&self) -> bool {
        self.root == FALSE
    }

    /// `true` if the structure function is constant `true`.
    pub fn is_true(&self) -> bool {
        self.root == TRUE
    }

    /// Exact top-event probability by Shannon decomposition, assuming
    /// independent leaves with the probabilities in `probs` (indexed by
    /// leaf index).
    ///
    /// # Errors
    ///
    /// [`FtaError::MissingProbability`] if a leaf used by the BDD has no
    /// entry in `probs`.
    pub fn probability(&self, probs: &ProbabilityMap) -> Result<f64> {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        memo.insert(FALSE, 0.0);
        memo.insert(TRUE, 1.0);
        self.prob_rec(self.root, probs, &mut memo)
    }

    fn prob_rec(
        &self,
        r: Ref,
        probs: &ProbabilityMap,
        memo: &mut HashMap<Ref, f64>,
    ) -> Result<f64> {
        if let Some(&p) = memo.get(&r) {
            return Ok(p);
        }
        let node = self.nodes[r.0 as usize];
        let leaf = self.level_to_leaf[node.var as usize];
        let p_leaf = probs
            .get(leaf)
            .ok_or_else(|| FtaError::MissingProbability {
                event: format!("leaf index {leaf}"),
            })?;
        let p_low = self.prob_rec(node.low, probs, memo)?;
        let p_high = self.prob_rec(node.high, probs, memo)?;
        let p = p_leaf * p_high + (1.0 - p_leaf) * p_low;
        memo.insert(r, p);
        Ok(p)
    }

    /// Evaluates the structure function for a concrete leaf assignment.
    pub fn evaluate(&self, failed: &crate::BitSet) -> bool {
        let mut r = self.root;
        loop {
            if r == TRUE {
                return true;
            }
            if r == FALSE {
                return false;
            }
            let node = self.nodes[r.0 as usize];
            let leaf = self.level_to_leaf[node.var as usize];
            r = if failed.contains(leaf) {
                node.high
            } else {
                node.low
            };
        }
    }

    /// Extracts the minimal cut sets (minimal solutions) of the coherent
    /// structure function, per Rauzy's recursion
    /// `K(f) = K(f₀) ∪ x·(K(f₁) ⊖ K(f₀))`.
    ///
    /// # Errors
    ///
    /// [`FtaError::BudgetExceeded`] if intermediate collections exceed
    /// [`crate::mcs::DEFAULT_BUDGET`].
    pub fn minimal_cut_sets(&self) -> Result<CutSetCollection> {
        self.minimal_cut_sets_with_budget(crate::mcs::DEFAULT_BUDGET)
    }

    /// [`minimal_cut_sets`](Self::minimal_cut_sets) with an explicit
    /// budget on intermediate cut-set counts.
    ///
    /// # Errors
    ///
    /// [`FtaError::BudgetExceeded`] when the budget is exceeded.
    pub fn minimal_cut_sets_with_budget(&self, budget: usize) -> Result<CutSetCollection> {
        let mut memo: HashMap<Ref, Vec<CutSet>> = HashMap::new();
        memo.insert(FALSE, Vec::new());
        memo.insert(TRUE, vec![CutSet::empty()]);
        let sets = self.minsol_rec(self.root, budget, &mut memo)?;
        Ok(CutSetCollection::from_sets(sets))
    }

    fn minsol_rec(
        &self,
        r: Ref,
        budget: usize,
        memo: &mut HashMap<Ref, Vec<CutSet>>,
    ) -> Result<Vec<CutSet>> {
        if let Some(sets) = memo.get(&r) {
            return Ok(sets.clone());
        }
        let node = self.nodes[r.0 as usize];
        let leaf = self.level_to_leaf[node.var as usize];
        let k0 = self.minsol_rec(node.low, budget, memo)?;
        let k1 = self.minsol_rec(node.high, budget, memo)?;
        // K(f₁) ⊖ K(f₀): drop solutions of the high branch already covered
        // by a (smaller or equal) solution that works without the variable.
        let mut result = k0.clone();
        for s in k1 {
            if k0.iter().any(|t| t.subsumes(&s)) {
                continue;
            }
            result.push(s.union(&CutSet::singleton(leaf)));
            if result.len() > budget {
                return Err(FtaError::BudgetExceeded {
                    what: "BDD minimal solutions",
                    limit: budget,
                });
            }
        }
        memo.insert(r, result.clone());
        Ok(result)
    }

    /// Exports the Shannon decomposition as a flat, compilation-friendly
    /// plan: the internal nodes reachable from the root in bottom-up
    /// topological order (children always precede parents), each
    /// carrying its leaf index and its cofactor references. This is the
    /// interface the evaluation-engine lowering consumes — one fused
    /// `p·hi + (1−p)·lo` op per node.
    pub fn shannon_plan(&self) -> ShannonPlan {
        let mut index: HashMap<Ref, ShannonRef> = HashMap::new();
        index.insert(FALSE, ShannonRef::False);
        index.insert(TRUE, ShannonRef::True);
        let mut nodes = Vec::new();
        let mut stack: Vec<(Ref, bool)> = vec![(self.root, false)];
        while let Some((r, expanded)) = stack.pop() {
            if index.contains_key(&r) {
                continue;
            }
            let node = self.nodes[r.0 as usize];
            if expanded {
                let plan_node = ShannonNode {
                    leaf: self.level_to_leaf[node.var as usize],
                    low: index[&node.low],
                    high: index[&node.high],
                };
                index.insert(r, ShannonRef::Node(nodes.len()));
                nodes.push(plan_node);
            } else {
                stack.push((r, true));
                stack.push((node.high, false));
                stack.push((node.low, false));
            }
        }
        SHANNON_PLANS.add(1);
        SHANNON_NODES.add(nodes.len() as u64);
        ShannonPlan {
            nodes,
            root: index[&self.root],
            num_leaves: self.num_leaves,
        }
    }

    /// The number of leaves of the tree this BDD was built from.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The variable order used, as leaf indices from root level down.
    pub fn variable_order(&self) -> &[usize] {
        &self.level_to_leaf
    }

    /// BDD level of a leaf, if the leaf occurs in the order.
    pub fn level_of_leaf(&self, leaf: usize) -> Option<u32> {
        self.leaf_to_level.get(&leaf).copied()
    }
}

/// Cofactor reference inside a [`ShannonPlan`]: a terminal or an earlier
/// node of the plan (children always precede parents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ShannonRef {
    /// Terminal 0 — the structure function is false on this branch.
    False,
    /// Terminal 1 — the structure function is true on this branch.
    True,
    /// Index into [`ShannonPlan::nodes`] (strictly smaller than the
    /// referencing node's own index).
    Node(usize),
}

/// One internal BDD node of an exported Shannon decomposition:
/// `P(node) = q_leaf · P(high) + (1 − q_leaf) · P(low)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShannonNode {
    /// Leaf index of the branch variable (tree leaf numbering).
    pub leaf: usize,
    /// Cofactor when the leaf works.
    pub low: ShannonRef,
    /// Cofactor when the leaf fails.
    pub high: ShannonRef,
}

/// A BDD's Shannon decomposition, flattened for compilation: reachable
/// internal nodes in bottom-up topological order plus the root
/// reference. See [`TreeBdd::shannon_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShannonPlan {
    /// Reachable internal nodes, children before parents.
    pub nodes: Vec<ShannonNode>,
    /// The decomposition's root (a terminal for constant structure
    /// functions).
    pub root: ShannonRef,
    num_leaves: usize,
}

impl ShannonPlan {
    /// A plan whose structure function is the constant `value` — no
    /// nodes, a terminal root. What preprocessing hands back when
    /// constant propagation collapses a whole tree (or module).
    pub fn constant(value: bool, num_leaves: usize) -> Self {
        ShannonPlan {
            nodes: Vec::new(),
            root: if value {
                ShannonRef::True
            } else {
                ShannonRef::False
            },
            num_leaves,
        }
    }

    /// Number of leaves of the owning tree (the leaf-probability input
    /// arity of [`leaf_tape`](Self::leaf_tape)).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Compiles the decomposition onto an engine op-tape whose **inputs
    /// are the leaf probabilities** (`num_leaves` coordinates, tree leaf
    /// numbering): one fused `MulAdd` op per BDD node, output weight 1.
    ///
    /// Evaluating the tape reproduces [`TreeBdd::probability`]
    /// bit-for-bit (same per-node float sequence over the same reduced
    /// DAG), and because the top-event probability is **multilinear** in
    /// the leaf probabilities, one reverse-mode adjoint sweep
    /// ([`safety_opt_engine::Tape::eval_grad`]) yields every Birnbaum
    /// importance `∂P/∂qᵢ = P(top|qᵢ=1) − P(top|qᵢ=0)` at once.
    pub fn leaf_tape(&self) -> safety_opt_engine::Tape {
        use safety_opt_engine::{TapeBuilder, Value};
        let mut b = TapeBuilder::new(self.num_leaves);
        let mut vals: Vec<Value> = Vec::with_capacity(self.nodes.len());
        let resolve = |r: ShannonRef, vals: &[Value]| match r {
            ShannonRef::False => Value::Const(0.0),
            ShannonRef::True => Value::Const(1.0),
            ShannonRef::Node(i) => vals[i],
        };
        for node in &self.nodes {
            let p = b.input(node.leaf);
            let hi = resolve(node.high, &vals);
            let lo = resolve(node.low, &vals);
            vals.push(b.mul_add(p, hi, lo));
        }
        let root = resolve(self.root, &vals);
        b.output(root, 1.0);
        b.build()
    }

    /// Top-event probability **and** all Birnbaum importances
    /// `∂P/∂qᵢ` in one forward + one backward sweep over the leaf tape.
    /// `probs` is dense, indexed by leaf (length
    /// [`num_leaves`](Self::num_leaves)); leaves the BDD does not
    /// reference may carry any value and get gradient 0.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != num_leaves()`.
    pub fn probability_and_birnbaum(&self, probs: &[f64]) -> (f64, Vec<f64>) {
        self.leaf_tape().eval_grad(probs)
    }
}

/// Variable order: leaves by first DFS visit from the root.
fn dfs_leaf_order(tree: &FaultTree) -> Result<Vec<usize>> {
    let root = tree.root()?;
    let mut order = Vec::new();
    let mut seen = vec![false; tree.len()];
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        match tree.node(id).kind() {
            NodeKind::Gate { inputs, .. } => {
                // Push in reverse so the first input is visited first.
                for &i in inputs.iter().rev() {
                    stack.push(i);
                }
            }
            _ => order.push(tree.leaf_index(id).expect("leaf slot")),
        }
    }
    Ok(order)
}

fn build_node(
    tree: &FaultTree,
    id: NodeId,
    leaf_to_level: &HashMap<usize, u32>,
    b: &mut Builder,
    memo: &mut HashMap<NodeId, Ref>,
) -> Ref {
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    let r = match tree.node(id).kind() {
        NodeKind::BasicEvent { .. } | NodeKind::Condition { .. } => {
            let leaf = tree.leaf_index(id).expect("leaf slot");
            let level = leaf_to_level[&leaf];
            b.variable(level)
        }
        NodeKind::Gate { kind, inputs } => {
            let input_refs: Vec<Ref> = inputs
                .iter()
                .map(|&i| build_node(tree, i, leaf_to_level, b, memo))
                .collect();
            match kind {
                GateKind::And | GateKind::Inhibit => {
                    reduce_balanced(b, input_refs, TRUE, Builder::and)
                }
                GateKind::Or => reduce_balanced(b, input_refs, FALSE, Builder::or),
                GateKind::KOfN(k) => threshold(b, &input_refs, *k),
            }
        }
    };
    memo.insert(id, r);
    r
}

/// Folds `refs` under `op` as a balanced pairwise reduction. The result
/// is the same canonical BDD a linear fold produces, but wide gates
/// (preprocessing coalesces fanout-1 chains into gates with hundreds of
/// inputs) cost `O(n log n)` apply work instead of the linear fold's
/// `O(n²)` — each level merges sub-results of comparable size rather
/// than dragging one ever-growing accumulator past every input.
fn reduce_balanced(
    b: &mut Builder,
    mut refs: Vec<Ref>,
    unit: Ref,
    op: impl Fn(&mut Builder, Ref, Ref) -> Ref,
) -> Ref {
    if refs.is_empty() {
        return unit;
    }
    while refs.len() > 1 {
        let mut next = Vec::with_capacity(refs.len().div_ceil(2));
        for pair in refs.chunks(2) {
            next.push(match *pair {
                [f, g] => op(b, f, g),
                [f] => f,
                _ => unreachable!("chunks(2)"),
            });
        }
        refs = next;
    }
    refs[0]
}

/// BDD for "at least `k` of `fs` are true".
fn threshold(b: &mut Builder, fs: &[Ref], k: usize) -> Ref {
    if k == 0 {
        return TRUE;
    }
    if k > fs.len() {
        return FALSE;
    }
    let first = fs[0];
    let rest = &fs[1..];
    let with = threshold(b, rest, k - 1);
    let without = threshold(b, rest, k);
    b.ite(first, with, without)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs;

    fn and_or_tree() -> FaultTree {
        // top = (a AND b) OR c
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let b = ft.basic_event_with_probability("b", 0.2).unwrap();
        let c = ft.basic_event_with_probability("c", 0.05).unwrap();
        let g = ft.and_gate("ab", [a, b]).unwrap();
        let top = ft.or_gate("top", [g, c]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn exact_probability_matches_hand_calculation() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let p = bdd
            .probability(&ft.stored_probabilities().unwrap())
            .unwrap();
        // P((a∧b)∨c) = P(ab) + P(c) − P(abc) = 0.02 + 0.05 − 0.001
        assert!((p - 0.069).abs() < 1e-15, "p = {p}");
    }

    #[test]
    fn minimal_solutions_match_mocus() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let from_bdd = bdd.minimal_cut_sets().unwrap();
        let from_mocus = mcs::mocus(&ft).unwrap();
        assert_eq!(from_bdd, from_mocus);
    }

    #[test]
    fn kofn_probability_is_exact_binomial() {
        // 2-of-3 with p = 0.1 each: 3 p²(1−p) + p³ = 0.028.
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..3)
            .map(|i| {
                ft.basic_event_with_probability(format!("e{i}"), 0.1)
                    .unwrap()
            })
            .collect();
        let top = ft.k_of_n_gate("vote", 2, leaves).unwrap();
        ft.set_root(top).unwrap();
        let bdd = TreeBdd::build(&ft).unwrap();
        let p = bdd
            .probability(&ft.stored_probabilities().unwrap())
            .unwrap();
        assert!((p - 0.028).abs() < 1e-15, "p = {p}");
    }

    #[test]
    fn shared_events_are_exact_where_rare_event_is_not() {
        // top = (a AND b) OR (a AND c): rare-event double counts `a`.
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.5).unwrap();
        let b = ft.basic_event_with_probability("b", 0.5).unwrap();
        let c = ft.basic_event_with_probability("c", 0.5).unwrap();
        let g1 = ft.and_gate("g1", [a, b]).unwrap();
        let g2 = ft.and_gate("g2", [a, c]).unwrap();
        let top = ft.or_gate("top", [g1, g2]).unwrap();
        ft.set_root(top).unwrap();
        let bdd = TreeBdd::build(&ft).unwrap();
        let p = bdd
            .probability(&ft.stored_probabilities().unwrap())
            .unwrap();
        // P(a ∧ (b ∨ c)) = 0.5 · 0.75 = 0.375 (rare-event would say 0.5).
        assert!((p - 0.375).abs() < 1e-15, "p = {p}");
    }

    #[test]
    fn evaluate_agrees_with_cut_sets() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let mcs = mcs::bottom_up(&ft).unwrap();
        // All 8 assignments over 3 leaves.
        for mask in 0..8usize {
            let failed: crate::BitSet = (0..3).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(
                bdd.evaluate(&failed),
                mcs.evaluate(&failed),
                "assignment {mask:03b}"
            );
        }
    }

    #[test]
    fn inhibit_behaves_like_and() {
        let mut ft = FaultTree::new("t");
        let cause = ft.basic_event_with_probability("cause", 0.01).unwrap();
        let cond = ft.condition_with_probability("env", 0.5).unwrap();
        let top = ft.inhibit_gate("top", cause, cond).unwrap();
        ft.set_root(top).unwrap();
        let bdd = TreeBdd::build(&ft).unwrap();
        let p = bdd
            .probability(&ft.stored_probabilities().unwrap())
            .unwrap();
        assert!((p - 0.005).abs() < 1e-15);
    }

    #[test]
    fn custom_variable_order_changes_size_not_semantics() {
        let ft = and_or_tree();
        let default = TreeBdd::build(&ft).unwrap();
        let custom = TreeBdd::build_with_order(&ft, vec![2, 1, 0]).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        assert!(
            (default.probability(&pm).unwrap() - custom.probability(&pm).unwrap()).abs() < 1e-15
        );
        assert_eq!(
            default.minimal_cut_sets().unwrap(),
            custom.minimal_cut_sets().unwrap()
        );
    }

    #[test]
    fn order_validation() {
        let ft = and_or_tree();
        // Missing reachable leaf.
        assert!(TreeBdd::build_with_order(&ft, vec![0, 1]).is_err());
        // Out-of-range leaf.
        assert!(TreeBdd::build_with_order(&ft, vec![0, 1, 9]).is_err());
        // Duplicate leaf.
        assert!(TreeBdd::build_with_order(&ft, vec![0, 1, 1]).is_err());
    }

    #[test]
    fn node_count_is_reduced() {
        // OR over n independent leaves has exactly n internal nodes.
        let mut ft = FaultTree::new("t");
        let leaves: Vec<_> = (0..8)
            .map(|i| ft.basic_event(format!("e{i}")).unwrap())
            .collect();
        let top = ft.or_gate("top", leaves).unwrap();
        ft.set_root(top).unwrap();
        let bdd = TreeBdd::build(&ft).unwrap();
        assert_eq!(bdd.node_count(), 8);
    }

    #[test]
    fn shannon_plan_is_topologically_ordered() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let plan = bdd.shannon_plan();
        assert_eq!(plan.nodes.len(), bdd.node_count());
        assert_eq!(plan.num_leaves(), 3);
        for (i, node) in plan.nodes.iter().enumerate() {
            for r in [node.low, node.high] {
                if let ShannonRef::Node(j) = r {
                    assert!(j < i, "child {j} not before parent {i}");
                }
            }
        }
        assert!(matches!(plan.root, ShannonRef::Node(_)));
    }

    #[test]
    fn shannon_leaf_tape_matches_probability_bitwise() {
        for (seed, ft) in [
            (0, and_or_tree()),
            (1, {
                let mut ft = FaultTree::new("t");
                let leaves: Vec<_> = (0..4)
                    .map(|i| {
                        ft.basic_event_with_probability(format!("e{i}"), 0.05 + 0.1 * i as f64)
                            .unwrap()
                    })
                    .collect();
                let top = ft.k_of_n_gate("vote", 2, leaves).unwrap();
                ft.set_root(top).unwrap();
                ft
            }),
        ] {
            let bdd = TreeBdd::build(&ft).unwrap();
            let pm = ft.stored_probabilities().unwrap();
            let want = bdd.probability(&pm).unwrap();
            let plan = bdd.shannon_plan();
            let tape = plan.leaf_tape();
            assert_eq!(tape.n_inputs(), ft.leaves().len());
            let got = tape.eval(pm.as_slice());
            assert_eq!(want.to_bits(), got.to_bits(), "tree {seed}");
        }
    }

    #[test]
    fn birnbaum_gradient_matches_forced_reevaluation() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        let plan = bdd.shannon_plan();
        let (p, grad) = plan.probability_and_birnbaum(pm.as_slice());
        assert_eq!(p.to_bits(), bdd.probability(&pm).unwrap().to_bits());
        for (leaf, &g) in grad.iter().enumerate() {
            let up = bdd
                .probability(&pm.with_forced(leaf, 1.0).unwrap())
                .unwrap();
            let down = bdd
                .probability(&pm.with_forced(leaf, 0.0).unwrap())
                .unwrap();
            assert!(
                (g - (up - down)).abs() < 1e-15,
                "leaf {leaf}: adjoint {g} vs forced {}",
                up - down
            );
        }
    }

    #[test]
    fn constant_structure_functions_export_terminal_plans() {
        // Coherent trees cannot produce terminal roots, but the plan
        // format admits them; the leaf tape must handle a constant
        // structure function gracefully.
        let plan = ShannonPlan {
            nodes: Vec::new(),
            root: ShannonRef::True,
            num_leaves: 2,
        };
        let (p, grad) = plan.probability_and_birnbaum(&[0.5, 0.5]);
        assert_eq!(p, 1.0);
        assert_eq!(grad, vec![0.0, 0.0]);
    }

    #[test]
    fn probability_requires_all_leaves() {
        let ft = and_or_tree();
        let bdd = TreeBdd::build(&ft).unwrap();
        let short = ProbabilityMap::new(vec![0.1, 0.2]).unwrap();
        assert!(matches!(
            bdd.probability(&short),
            Err(FtaError::MissingProbability { .. })
        ));
    }
}
