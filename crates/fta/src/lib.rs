//! Fault tree analysis (FTA).
//!
//! The substrate of the DSN 2004 paper *"Safety Optimization"* (Ortmeier &
//! Reif): a fault tree describes how combinations of **primary failures**
//! (basic events) cause a **hazard** (the top event), through AND / OR /
//! k-of-n / INHIBIT gates. This crate implements the full classical
//! pipeline, from scratch:
//!
//! * [`tree`] — arena-based fault-tree DAGs with validation, builders,
//!   and traversal. INHIBIT conditions are first-class leaves (the paper's
//!   Sect. II-D constraint probabilities attach to them).
//! * [`mcs`] — minimal cut sets via MOCUS (top-down) and a memoized
//!   bottom-up set-algebra engine; subsumption minimization.
//! * [`bdd`] — a binary decision diagram package (unique table, ITE,
//!   Shannon-decomposition probability, minimal-solution extraction) used
//!   both as an exact quantification engine and as an independent oracle
//!   for the cut-set algorithms.
//! * [`quant`] — hazard probabilities: the paper's rare-event
//!   approximation (Eq. 1), the min-cut upper bound, exact
//!   inclusion–exclusion, and BDD-exact evaluation.
//! * [`constraints`] — INHIBIT-condition extraction per cut set with the
//!   paper's constraint-probability bounds (Sect. II-D.1 / Sect. V).
//! * [`importance`] — Birnbaum, Fussell–Vesely, risk achievement/reduction
//!   worth, and criticality importance measures.
//! * [`preprocess`] — the SCRAM-style rewriting pipeline (constant
//!   propagation, gate normalization, coalescing, pruning) plus
//!   visit-interval **module detection** for industrial-scale trees.
//! * [`modular`] — per-module BDD construction composed back on the
//!   op-tape, bounding BDD size by the largest module.
//! * [`parse`] — a plain-text fault-tree format (Galileo-flavoured) so
//!   models can live in files.
//! * [`render`] — Graphviz DOT and ASCII rendering.
//! * [`synth`] — synthetic tree families for property tests and benches.
//!
//! # Example
//!
//! The collision fault tree from the paper's Fig. 2:
//!
//! ```
//! use safety_opt_fta::tree::FaultTree;
//! use safety_opt_fta::quant::{hazard_probability, Method};
//!
//! # fn main() -> Result<(), safety_opt_fta::FtaError> {
//! let mut ft = FaultTree::new("Collision");
//! let ignores = ft.basic_event_with_probability("OHV ignores signal", 1e-2)?;
//! let out_of_order = ft.basic_event_with_probability("Signal out of order", 1e-4)?;
//! let not_activated = ft.basic_event_with_probability("Signal not activated", 1e-5)?;
//! let not_on = ft.or_gate("Signal not on", [out_of_order, not_activated])?;
//! let top = ft.or_gate("Collision", [ignores, not_on])?;
//! ft.set_root(top)?;
//!
//! let mcs = ft.minimal_cut_sets()?;
//! assert_eq!(mcs.len(), 3); // three single points of failure
//! let p = hazard_probability(&ft, &ft.stored_probabilities()?, Method::RareEvent)?;
//! assert!((p - (1e-2 + 1e-4 + 1e-5)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bdd;
mod bitset;
pub mod constraints;
mod cutset;
mod error;
pub mod importance;
pub mod mcs;
pub mod modular;
pub mod parse;
pub mod preprocess;
pub mod quant;
pub mod render;
pub mod synth;
pub mod tree;

pub use bitset::BitSet;
pub use cutset::{CutSet, CutSetCollection};
pub use error::FtaError;

/// Convenience result alias for fallible FTA operations.
pub type Result<T> = std::result::Result<T, FtaError>;
