//! Module-wise BDD construction: one small BDD per independent module,
//! composed back together on the op-tape.
//!
//! [`crate::preprocess::detect_modules`] finds the gates whose subtrees
//! share nothing with the rest of the tree. Each such gate's structure
//! function can be compiled into its **own** [`TreeBdd`] over its own
//! local variables, with nested module tops appearing as a *single*
//! pseudo-variable — so the worst-case BDD size is bounded by the
//! largest module instead of the whole tree (the component-fault-tree
//! decomposition of Höfig et al., and exactly how SCRAM keeps
//! industrial trees tractable).
//!
//! Composition is exact, not an approximation: modules are independent
//! (disjoint leaf sets, by definition), so the top probability is
//! multilinear in each module-top probability and substituting
//! `P(module)` for the pseudo-variable is the Shannon decomposition of
//! the full function. On the tape this costs nothing — a child module's
//! root value simply feeds the parent's fused `MulAdd` chain where a
//! leaf input would have been.

use crate::bdd::{ShannonPlan, ShannonRef, TreeBdd};
use crate::preprocess::detect_modules;
use crate::tree::{FaultTree, GateKind, NodeId, NodeKind};
use crate::Result;
use std::collections::HashMap;

/// Default reachable-node count above which a module's BDD is re-ordered
/// by sifting (small BDDs are not worth the rebuilds).
pub const DEFAULT_SIFT_THRESHOLD: usize = 512;

/// Default cumulative allocated-node budget for one module's sifting
/// pass (see [`TreeBdd::build_sifted`]).
pub const DEFAULT_SIFT_BUDGET: usize = 1 << 17;

/// What one slot of a module's local variable space stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanInput {
    /// A real leaf of the original tree (original leaf index).
    Leaf(usize),
    /// The top event of a nested module (index into
    /// [`ModularPlan::modules`], always smaller than the referencing
    /// module's own index).
    Module(usize),
}

/// One module's Shannon decomposition plus the mapping from its local
/// variable slots back to original leaves / nested modules.
#[derive(Debug, Clone)]
pub struct ModulePlan {
    plan: ShannonPlan,
    inputs: Vec<PlanInput>,
    name: String,
}

impl ModulePlan {
    /// The module's own Shannon decomposition (local variable space:
    /// `plan().nodes[i].leaf` indexes [`inputs`](Self::inputs)).
    pub fn plan(&self) -> &ShannonPlan {
        &self.plan
    }

    /// Local slot → original leaf or nested module.
    pub fn inputs(&self) -> &[PlanInput] {
        &self.inputs
    }

    /// Resolves one local slot.
    pub fn input(&self, slot: usize) -> PlanInput {
        self.inputs[slot]
    }

    /// The module gate's name in the source tree.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A whole tree's structure function as composed per-module Shannon
/// decompositions, in bottom-up order — the **last** module is the top
/// event. Built by [`ModularPlan::build`]; the monolithic and constant
/// cases embed as single-module plans, so downstream consumers (tape
/// lowering, importance, the safeopt scalar path) handle every tree
/// through one interface.
#[derive(Debug, Clone)]
pub struct ModularPlan {
    modules: Vec<ModulePlan>,
    num_leaves: usize,
}

impl ModularPlan {
    /// Decomposes `tree` into independent modules and compiles one
    /// [`TreeBdd`] per module with the default sifting policy
    /// ([`DEFAULT_SIFT_THRESHOLD`] / [`DEFAULT_SIFT_BUDGET`]).
    ///
    /// # Errors
    ///
    /// [`crate::FtaError::NoRoot`] if the tree has no root.
    pub fn build(tree: &FaultTree) -> Result<Self> {
        Self::build_with_sifting(tree, DEFAULT_SIFT_THRESHOLD, DEFAULT_SIFT_BUDGET)
    }

    /// [`build`](Self::build) with an explicit sifting policy: modules
    /// whose first-build BDD exceeds `sift_threshold` reachable nodes
    /// get a greedy [`TreeBdd::build_sifted`] re-ordering pass under
    /// `sift_budget` allocated nodes. `sift_threshold == usize::MAX`
    /// disables sifting entirely. Modules whose BDD is already within
    /// 4× of their input count are never sifted: such a BDD is
    /// near-linear — the variable order has nothing left to win — and a
    /// sifting sweep over a wide module (one adjacent-swap rebuild per
    /// input) would cost far more than any conceivable saving.
    ///
    /// # Errors
    ///
    /// [`crate::FtaError::NoRoot`] if the tree has no root.
    pub fn build_with_sifting(
        tree: &FaultTree,
        sift_threshold: usize,
        sift_budget: usize,
    ) -> Result<Self> {
        let module_gates = detect_modules(tree)?;
        let module_of: HashMap<NodeId, usize> = module_gates
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut modules = Vec::with_capacity(module_gates.len());
        for &gate in &module_gates {
            let (local, inputs) = build_module_tree(tree, gate, &module_of)?;
            let mut bdd = TreeBdd::build(&local)?;
            let linear_floor = local.leaves().len().saturating_mul(4);
            if bdd.node_count() > sift_threshold && bdd.node_count() > linear_floor {
                let sifted = TreeBdd::build_sifted(&local, sift_budget)?;
                if sifted.node_count() < bdd.node_count() {
                    bdd = sifted;
                }
            }
            modules.push(ModulePlan {
                plan: bdd.shannon_plan(),
                inputs,
                name: tree.node(gate).name().to_owned(),
            });
        }
        Ok(ModularPlan {
            modules,
            num_leaves: tree.leaves().len(),
        })
    }

    /// Wraps a monolithic [`ShannonPlan`] as a single-module plan (the
    /// preprocessing-disabled path): local slots map one-to-one onto
    /// original leaves.
    pub fn from_single(plan: ShannonPlan) -> Self {
        let num_leaves = plan.num_leaves();
        ModularPlan {
            modules: vec![ModulePlan {
                plan,
                inputs: (0..num_leaves).map(PlanInput::Leaf).collect(),
                name: String::from("top"),
            }],
            num_leaves,
        }
    }

    /// A plan whose structure function is the constant `value` (what a
    /// tree that folds away entirely under constant propagation
    /// becomes).
    pub fn constant(value: bool, num_leaves: usize) -> Self {
        ModularPlan {
            modules: vec![ModulePlan {
                plan: ShannonPlan::constant(value, 0),
                inputs: Vec::new(),
                name: String::from("constant"),
            }],
            num_leaves,
        }
    }

    /// The modules, bottom-up; the last one is the top event.
    pub fn modules(&self) -> &[ModulePlan] {
        &self.modules
    }

    /// Leaf-probability input arity (original tree leaf numbering).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total Shannon nodes across all modules.
    pub fn node_count(&self) -> usize {
        self.modules.iter().map(|m| m.plan.nodes.len()).sum()
    }

    /// Shannon nodes of the largest single module — the quantity module
    /// decomposition actually bounds.
    pub fn largest_module_nodes(&self) -> usize {
        self.modules
            .iter()
            .map(|m| m.plan.nodes.len())
            .max()
            .unwrap_or(0)
    }

    /// Compiles the whole composition onto one engine op-tape whose
    /// inputs are the **original** leaf probabilities: per module one
    /// fused `MulAdd` per Shannon node, with nested module roots wired
    /// straight into their parents' chains. For a single-module plan
    /// this emits exactly [`ShannonPlan::leaf_tape`]'s op sequence.
    pub fn leaf_tape(&self) -> safety_opt_engine::Tape {
        use safety_opt_engine::{TapeBuilder, Value};
        let mut b = TapeBuilder::new(self.num_leaves);
        let mut roots: Vec<Value> = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let resolve = |r: ShannonRef, vals: &[Value]| match r {
                ShannonRef::False => Value::Const(0.0),
                ShannonRef::True => Value::Const(1.0),
                ShannonRef::Node(i) => vals[i],
            };
            let mut vals: Vec<Value> = Vec::with_capacity(m.plan.nodes.len());
            for node in &m.plan.nodes {
                let p = match m.inputs[node.leaf] {
                    PlanInput::Leaf(leaf) => b.input(leaf),
                    PlanInput::Module(j) => roots[j],
                };
                let hi = resolve(node.high, &vals);
                let lo = resolve(node.low, &vals);
                vals.push(b.mul_add(p, hi, lo));
            }
            roots.push(resolve(m.plan.root, &vals));
        }
        let top = *roots.last().expect("at least one module");
        b.output(top, 1.0);
        b.build()
    }

    /// Top-event probability by the same per-node float sequence the
    /// compiled tape executes (bit-identical to evaluating
    /// [`leaf_tape`](Self::leaf_tape)). `probs` is dense, original leaf
    /// numbering.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != num_leaves()`.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            self.num_leaves,
            "probability vector arity mismatch"
        );
        let mut roots: Vec<f64> = Vec::with_capacity(self.modules.len());
        for m in &self.modules {
            let resolve = |r: ShannonRef, vals: &[f64]| match r {
                ShannonRef::False => 0.0,
                ShannonRef::True => 1.0,
                ShannonRef::Node(i) => vals[i],
            };
            let mut vals: Vec<f64> = Vec::with_capacity(m.plan.nodes.len());
            for node in &m.plan.nodes {
                let q = match m.inputs[node.leaf] {
                    PlanInput::Leaf(leaf) => probs[leaf],
                    PlanInput::Module(j) => roots[j],
                };
                let hi = resolve(node.high, &vals);
                let lo = resolve(node.low, &vals);
                vals.push(q * hi + (1.0 - q) * lo);
            }
            roots.push(resolve(m.plan.root, &vals));
        }
        *roots.last().expect("at least one module")
    }

    /// Top-event probability **and** all Birnbaum importances
    /// `∂P/∂qᵢ` (original leaf numbering) in one forward + one backward
    /// sweep over the composed tape.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != num_leaves()`.
    pub fn probability_and_birnbaum(&self, probs: &[f64]) -> (f64, Vec<f64>) {
        self.leaf_tape().eval_grad(probs)
    }
}

/// Extracts module `gate`'s local tree: a standalone [`FaultTree`] whose
/// leaves are the module's own leaves plus one pseudo basic-event per
/// nested module top, with the slot mapping recorded as [`PlanInput`]s.
fn build_module_tree(
    tree: &FaultTree,
    gate: NodeId,
    module_of: &HashMap<NodeId, usize>,
) -> Result<(FaultTree, Vec<PlanInput>)> {
    let mut local = FaultTree::new(tree.node(gate).name());
    let mut inputs: Vec<PlanInput> = Vec::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut stack: Vec<(NodeId, bool)> = vec![(gate, false)];
    while let Some((id, expanded)) = stack.pop() {
        if expanded {
            let NodeKind::Gate { kind, inputs: gi } = tree.node(id).kind() else {
                unreachable!("only gates get an exit phase");
            };
            let name = tree.node(id).name();
            let local_inputs: Vec<NodeId> = gi.iter().map(|c| map[c]).collect();
            let lid = match kind {
                GateKind::And => local.and_gate(name, local_inputs)?,
                GateKind::Or => local.or_gate(name, local_inputs)?,
                GateKind::KOfN(k) => local.k_of_n_gate(name, *k, local_inputs)?,
                GateKind::Inhibit => local.inhibit_gate(name, local_inputs[0], local_inputs[1])?,
            };
            map.insert(id, lid);
            continue;
        }
        if map.contains_key(&id) {
            continue;
        }
        let node = tree.node(id);
        let nested_module = id != gate && module_of.contains_key(&id);
        if node.is_leaf() || nested_module {
            // A local pseudo-variable. Names stay collision-free: the
            // original tree enforced uniqueness and a nested module's
            // interior never materializes here.
            let lid = if node.is_condition() {
                local.condition(node.name())?
            } else {
                local.basic_event(node.name())?
            };
            map.insert(id, lid);
            inputs.push(if nested_module {
                PlanInput::Module(module_of[&id])
            } else {
                PlanInput::Leaf(tree.leaf_index(id).expect("leaf slot"))
            });
        } else {
            stack.push((id, true));
            let NodeKind::Gate { inputs: gi, .. } = node.kind() else {
                unreachable!("non-leaf is a gate");
            };
            for &c in gi.iter().rev() {
                stack.push((c, false));
            }
        }
    }
    let root = map[&gate];
    local.set_root(root)?;
    Ok((local, inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two genuine modules under a root that also shares a leaf between
    /// two non-module gates.
    fn modular_fixture() -> FaultTree {
        let mut ft = FaultTree::new("fixture");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let b = ft.basic_event_with_probability("b", 0.2).unwrap();
        let c = ft.basic_event_with_probability("c", 0.3).unwrap();
        let d = ft.basic_event_with_probability("d", 0.15).unwrap();
        let s = ft.basic_event_with_probability("s", 0.05).unwrap();
        let m1 = ft.and_gate("m1", [a, b]).unwrap();
        let m2 = ft.k_of_n_gate("m2", 2, [c, d, s]).unwrap();
        let l = ft.and_gate("l", [m1, s]).unwrap();
        let top = ft.or_gate("top", [l, m2]).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn modular_matches_monolithic_probability() {
        let ft = modular_fixture();
        let probs: Vec<f64> = (0..ft.leaves().len())
            .map(|i| {
                ft.node(ft.leaf(i))
                    .probability()
                    .expect("stored probability")
            })
            .collect();
        let mono = TreeBdd::build(&ft)
            .unwrap()
            .probability(&ft.stored_probabilities().unwrap())
            .unwrap();
        let plan = ModularPlan::build(&ft).unwrap();
        assert!((plan.probability(&probs) - mono).abs() <= 1e-12);
        let (tape_p, _) = plan.probability_and_birnbaum(&probs);
        assert!((tape_p - mono).abs() <= 1e-12);
    }

    #[test]
    fn scalar_fold_is_bit_identical_to_the_tape() {
        let ft = modular_fixture();
        let probs: Vec<f64> = (0..ft.leaves().len())
            .map(|i| 0.01 + 0.07 * i as f64)
            .collect();
        let plan = ModularPlan::build(&ft).unwrap();
        let tape = plan.leaf_tape();
        assert_eq!(
            plan.probability(&probs).to_bits(),
            tape.eval(&probs).to_bits()
        );
    }

    #[test]
    fn from_single_replays_the_monolithic_plan_exactly() {
        let ft = modular_fixture();
        let probs: Vec<f64> = (0..ft.leaves().len())
            .map(|i| 0.03 * (i + 1) as f64)
            .collect();
        let mono_plan = TreeBdd::build(&ft).unwrap().shannon_plan();
        let mono_tape = mono_plan.leaf_tape();
        let wrapped = ModularPlan::from_single(mono_plan);
        assert_eq!(
            wrapped.leaf_tape().eval(&probs).to_bits(),
            mono_tape.eval(&probs).to_bits()
        );
    }

    #[test]
    fn constant_plans_evaluate_to_their_constant() {
        let t = ModularPlan::constant(true, 4);
        let f = ModularPlan::constant(false, 4);
        let probs = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(t.probability(&probs), 1.0);
        assert_eq!(f.probability(&probs), 0.0);
        assert_eq!(t.leaf_tape().eval(&probs), 1.0);
        assert_eq!(f.leaf_tape().eval(&probs), 0.0);
    }

    #[test]
    fn module_decomposition_bounds_the_largest_bdd() {
        // A chain of independent 2-of-3 modules: monolithic nodes grow
        // with the whole tree, the largest module stays constant.
        let mut ft = FaultTree::new("chain");
        let mut tops = Vec::new();
        for m in 0..6 {
            let e: Vec<_> = (0..3)
                .map(|j| {
                    ft.basic_event_with_probability(format!("e{m}_{j}"), 0.01 * (j + 1) as f64)
                        .unwrap()
                })
                .collect();
            tops.push(ft.k_of_n_gate(format!("m{m}"), 2, e).unwrap());
        }
        let top = ft.or_gate("top", tops).unwrap();
        ft.set_root(top).unwrap();

        let plan = ModularPlan::build(&ft).unwrap();
        assert_eq!(plan.modules().len(), 7);
        let mono = TreeBdd::build(&ft).unwrap().shannon_plan();
        assert!(plan.largest_module_nodes() < mono.nodes.len());

        let probs: Vec<f64> = (0..ft.leaves().len()).map(|_| 0.02).collect();
        let mono_p = ModularPlan::from_single(mono).probability(&probs);
        assert!((plan.probability(&probs) - mono_p).abs() <= 1e-12);
    }

    #[test]
    fn birnbaum_matches_monolithic_gradients() {
        let ft = modular_fixture();
        let probs: Vec<f64> = (0..ft.leaves().len())
            .map(|i| 0.05 * (i + 1) as f64)
            .collect();
        let plan = ModularPlan::build(&ft).unwrap();
        let mono = TreeBdd::build(&ft).unwrap().shannon_plan();
        let (p_mod, g_mod) = plan.probability_and_birnbaum(&probs);
        let (p_mono, g_mono) = mono.probability_and_birnbaum(&probs);
        assert!((p_mod - p_mono).abs() <= 1e-12);
        for (a, b) in g_mod.iter().zip(&g_mono) {
            assert!((a - b).abs() <= 1e-12, "{a} vs {b}");
        }
    }
}
