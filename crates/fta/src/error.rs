use std::fmt;

/// Error type for fault-tree operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FtaError {
    /// A node name was used twice in the same tree.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced node does not exist in this tree.
    UnknownNode {
        /// Index or name of the missing node.
        reference: String,
    },
    /// A gate has no inputs.
    EmptyGate {
        /// Name of the offending gate.
        gate: String,
    },
    /// A k-of-n gate with an unsatisfiable threshold.
    InvalidThreshold {
        /// Name of the gate.
        gate: String,
        /// The threshold `k`.
        k: usize,
        /// The number of inputs `n`.
        n: usize,
    },
    /// The node graph contains a cycle (fault trees must be DAGs).
    CyclicTree {
        /// A node on the detected cycle.
        via: String,
    },
    /// The tree has no root assigned.
    NoRoot,
    /// The proposed root is not a gate (a bare basic event is not a
    /// meaningful hazard decomposition) or does not exist.
    InvalidRoot {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A probability value outside `[0, 1]` was supplied.
    InvalidProbability {
        /// Name of the event it was assigned to.
        event: String,
        /// The rejected value.
        value: f64,
    },
    /// A leaf has no probability assigned but one was required.
    MissingProbability {
        /// Name of the leaf.
        event: String,
    },
    /// The operation would exceed a configured size/effort budget.
    BudgetExceeded {
        /// What blew up, e.g. `"inclusion-exclusion terms"`.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// A textual model failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A deterministic fault-injection site fired (see
    /// `safety_opt_engine::faultinject`); only ever produced when the
    /// `SAFETY_OPT_FAILPOINTS` harness is armed.
    FaultInjected {
        /// The site that fired, e.g. `"bdd.apply"`.
        site: &'static str,
    },
}

impl fmt::Display for FtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtaError::DuplicateName { name } => write!(f, "duplicate node name {name:?}"),
            FtaError::UnknownNode { reference } => write!(f, "unknown node {reference:?}"),
            FtaError::EmptyGate { gate } => write!(f, "gate {gate:?} has no inputs"),
            FtaError::InvalidThreshold { gate, k, n } => {
                write!(f, "gate {gate:?} is {k}-of-{n}, need 1 <= k <= n")
            }
            FtaError::CyclicTree { via } => {
                write!(f, "fault tree contains a cycle through {via:?}")
            }
            FtaError::NoRoot => write!(f, "fault tree has no root; call set_root first"),
            FtaError::InvalidRoot { reason } => write!(f, "invalid root: {reason}"),
            FtaError::InvalidProbability { event, value } => {
                write!(f, "probability {value} for {event:?} outside [0, 1]")
            }
            FtaError::MissingProbability { event } => {
                write!(f, "no probability assigned to {event:?}")
            }
            FtaError::BudgetExceeded { what, limit } => {
                write!(f, "computation exceeded budget: {what} > {limit}")
            }
            FtaError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            FtaError::FaultInjected { site } => write!(f, "fault injected at site {site:?}"),
        }
    }
}

impl std::error::Error for FtaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FtaError::InvalidThreshold {
            gate: "voter".into(),
            k: 4,
            n: 3,
        };
        let s = e.to_string();
        assert!(s.contains("voter") && s.contains("4-of-3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FtaError>();
    }
}
