//! Fault-tree structure: nodes, gates, builders, and validation.
//!
//! A [`FaultTree`] is an arena of named nodes. Leaves are **basic events**
//! (the paper's primary failures) or **conditions** (the environmental
//! side-inputs of INHIBIT gates, which the paper's constraint
//! probabilities quantify). Inner nodes are gates: AND, OR, k-of-n
//! (voting), and INHIBIT.
//!
//! Construction is bottom-up — a gate can only reference [`NodeId`]s that
//! already exist — so a tree is a DAG *by construction*; shared subtrees
//! are allowed and handled correctly by every algorithm in this crate.

use crate::{FtaError, Result};
use std::collections::HashMap;

/// Opaque handle to a node inside one [`FaultTree`].
///
/// Handles are only meaningful for the tree that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The arena index of this node.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The logical type of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Output occurs iff **all** inputs occur.
    And,
    /// Output occurs iff **any** input occurs.
    Or,
    /// Output occurs iff at least `k` of the inputs occur.
    KOfN(usize),
    /// Output occurs iff the (single) cause input occurs **and** the
    /// condition holds. The condition is `inputs[1]` by convention; it is
    /// usually a [`NodeKind::Condition`] leaf but may be any node.
    Inhibit,
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateKind::And => f.write_str("AND"),
            GateKind::Or => f.write_str("OR"),
            GateKind::KOfN(k) => write!(f, "{k}-of-n"),
            GateKind::Inhibit => f.write_str("INHIBIT"),
        }
    }
}

/// Payload of a node.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A primary failure (leaf). Not developed further; carries an
    /// optional point probability.
    BasicEvent {
        /// Optional stored probability of occurrence.
        probability: Option<f64>,
    },
    /// An environmental condition (leaf of an INHIBIT gate). Not a
    /// failure; the paper's constraint probabilities quantify how likely
    /// the environment is "bad enough".
    Condition {
        /// Optional stored probability that the condition holds.
        probability: Option<f64>,
    },
    /// An inner node combining its inputs through a gate.
    Gate {
        /// The gate type.
        kind: GateKind,
        /// Input nodes (for INHIBIT: `[cause, condition]`).
        inputs: Vec<NodeId>,
    },
}

/// A named node of a fault tree.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    name: String,
    kind: NodeKind,
}

impl Node {
    /// The node's (tree-unique) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's payload.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// `true` for basic events and conditions.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::BasicEvent { .. } | NodeKind::Condition { .. }
        )
    }

    /// `true` for condition leaves.
    pub fn is_condition(&self) -> bool {
        matches!(self.kind, NodeKind::Condition { .. })
    }

    /// Stored probability, if this is a leaf that has one.
    pub fn probability(&self) -> Option<f64> {
        match self.kind {
            NodeKind::BasicEvent { probability } | NodeKind::Condition { probability } => {
                probability
            }
            NodeKind::Gate { .. } => None,
        }
    }
}

/// A fault tree: a named DAG of gates over basic events and conditions,
/// with one distinguished root (the hazard / top event).
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultTree {
    name: String,
    nodes: Vec<Node>,
    /// Name → node lookup.
    names: HashMap<String, NodeId>,
    /// Leaves in creation order; position is the **leaf index** used by
    /// cut sets.
    leaves: Vec<NodeId>,
    /// Node index → leaf index (None for gates).
    leaf_slot: Vec<Option<usize>>,
    root: Option<NodeId>,
}

impl FaultTree {
    /// Creates an empty fault tree for the hazard `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            names: HashMap::new(),
            leaves: Vec::new(),
            leaf_slot: Vec::new(),
            root: None,
        }
    }

    /// The hazard name this tree describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> Result<NodeId> {
        if self.names.contains_key(&name) {
            return Err(FtaError::DuplicateName { name });
        }
        let id = NodeId(self.nodes.len());
        let is_leaf = matches!(
            kind,
            NodeKind::BasicEvent { .. } | NodeKind::Condition { .. }
        );
        self.names.insert(name.clone(), id);
        self.nodes.push(Node { name, kind });
        if is_leaf {
            self.leaf_slot.push(Some(self.leaves.len()));
            self.leaves.push(id);
        } else {
            self.leaf_slot.push(None);
        }
        Ok(id)
    }

    /// Adds a primary failure leaf without a stored probability.
    ///
    /// # Errors
    ///
    /// [`FtaError::DuplicateName`] if `name` is already used.
    pub fn basic_event(&mut self, name: impl Into<String>) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::BasicEvent { probability: None })
    }

    /// Adds a primary failure leaf with a stored probability.
    ///
    /// # Errors
    ///
    /// [`FtaError::DuplicateName`] or [`FtaError::InvalidProbability`].
    pub fn basic_event_with_probability(
        &mut self,
        name: impl Into<String>,
        probability: f64,
    ) -> Result<NodeId> {
        let name = name.into();
        check_probability(&name, probability)?;
        self.add_node(
            name,
            NodeKind::BasicEvent {
                probability: Some(probability),
            },
        )
    }

    /// Adds a condition leaf (for INHIBIT gates).
    ///
    /// # Errors
    ///
    /// [`FtaError::DuplicateName`] if `name` is already used.
    pub fn condition(&mut self, name: impl Into<String>) -> Result<NodeId> {
        self.add_node(name.into(), NodeKind::Condition { probability: None })
    }

    /// Adds a condition leaf with a stored probability.
    ///
    /// # Errors
    ///
    /// [`FtaError::DuplicateName`] or [`FtaError::InvalidProbability`].
    pub fn condition_with_probability(
        &mut self,
        name: impl Into<String>,
        probability: f64,
    ) -> Result<NodeId> {
        let name = name.into();
        check_probability(&name, probability)?;
        self.add_node(
            name,
            NodeKind::Condition {
                probability: Some(probability),
            },
        )
    }

    fn gate(&mut self, name: String, kind: GateKind, inputs: Vec<NodeId>) -> Result<NodeId> {
        if inputs.is_empty() {
            return Err(FtaError::EmptyGate { gate: name });
        }
        for &input in &inputs {
            if input.0 >= self.nodes.len() {
                return Err(FtaError::UnknownNode {
                    reference: format!("#{}", input.0),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &input in &inputs {
            if !seen.insert(input) {
                return Err(FtaError::UnknownNode {
                    reference: format!(
                        "duplicate input {:?} to gate {name:?}",
                        self.nodes[input.0].name
                    ),
                });
            }
        }
        if let GateKind::KOfN(k) = kind {
            if k == 0 || k > inputs.len() {
                return Err(FtaError::InvalidThreshold {
                    gate: name,
                    k,
                    n: inputs.len(),
                });
            }
        }
        self.add_node(name, NodeKind::Gate { kind, inputs })
    }

    /// Adds an AND gate over `inputs`.
    ///
    /// # Errors
    ///
    /// [`FtaError::EmptyGate`], [`FtaError::DuplicateName`], or
    /// [`FtaError::UnknownNode`] (also used for duplicate inputs).
    pub fn and_gate(
        &mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId> {
        self.gate(name.into(), GateKind::And, inputs.into_iter().collect())
    }

    /// Adds an OR gate over `inputs`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`and_gate`](Self::and_gate).
    pub fn or_gate(
        &mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId> {
        self.gate(name.into(), GateKind::Or, inputs.into_iter().collect())
    }

    /// Adds a k-of-n voting gate over `inputs`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`and_gate`](Self::and_gate), plus
    /// [`FtaError::InvalidThreshold`] unless `1 <= k <= n`.
    pub fn k_of_n_gate(
        &mut self,
        name: impl Into<String>,
        k: usize,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId> {
        self.gate(name.into(), GateKind::KOfN(k), inputs.into_iter().collect())
    }

    /// Adds an INHIBIT gate: `cause` propagates only while `condition`
    /// holds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`and_gate`](Self::and_gate).
    pub fn inhibit_gate(
        &mut self,
        name: impl Into<String>,
        cause: NodeId,
        condition: NodeId,
    ) -> Result<NodeId> {
        self.gate(name.into(), GateKind::Inhibit, vec![cause, condition])
    }

    /// Declares `root` as the tree's top event.
    ///
    /// # Errors
    ///
    /// [`FtaError::InvalidRoot`] if the node does not exist or is a leaf.
    pub fn set_root(&mut self, root: NodeId) -> Result<()> {
        let node = self
            .nodes
            .get(root.0)
            .ok_or_else(|| FtaError::InvalidRoot {
                reason: format!("node #{} does not exist", root.0),
            })?;
        if node.is_leaf() {
            return Err(FtaError::InvalidRoot {
                reason: format!("{:?} is a leaf, hazards must be gates", node.name),
            });
        }
        self.root = Some(root);
        Ok(())
    }

    /// The root (top event).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if [`set_root`](Self::set_root) has not been
    /// called.
    pub fn root(&self) -> Result<NodeId> {
        self.root.ok_or(FtaError::NoRoot)
    }

    /// Looks a node up by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// All nodes in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Number of nodes (gates + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The leaves (basic events and conditions) in leaf-index order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Leaf index of `id` (None for gates).
    pub fn leaf_index(&self, id: NodeId) -> Option<usize> {
        self.leaf_slot.get(id.0).copied().flatten()
    }

    /// Node id of leaf index `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.leaves().len()`.
    pub fn leaf(&self, slot: usize) -> NodeId {
        self.leaves[slot]
    }

    /// Sets (or replaces) the stored probability of a leaf.
    ///
    /// # Errors
    ///
    /// [`FtaError::InvalidProbability`] for values outside `[0, 1]`, and
    /// [`FtaError::UnknownNode`] if `id` is not a leaf of this tree.
    pub fn set_probability(&mut self, id: NodeId, probability: f64) -> Result<()> {
        let node = self
            .nodes
            .get_mut(id.0)
            .ok_or_else(|| FtaError::UnknownNode {
                reference: format!("#{}", id.0),
            })?;
        check_probability(&node.name, probability)?;
        match &mut node.kind {
            NodeKind::BasicEvent { probability: p } | NodeKind::Condition { probability: p } => {
                *p = Some(probability);
                Ok(())
            }
            NodeKind::Gate { .. } => Err(FtaError::UnknownNode {
                reference: format!("{:?} is a gate, not a leaf", node.name),
            }),
        }
    }

    /// Collects the stored leaf probabilities into a
    /// [`ProbabilityMap`](crate::quant::ProbabilityMap).
    ///
    /// # Errors
    ///
    /// [`FtaError::MissingProbability`] naming the first leaf without one.
    pub fn stored_probabilities(&self) -> Result<crate::quant::ProbabilityMap> {
        let mut probs = Vec::with_capacity(self.leaves.len());
        for &leaf in &self.leaves {
            let node = self.node(leaf);
            match node.probability() {
                Some(p) => probs.push(p),
                None => {
                    return Err(FtaError::MissingProbability {
                        event: node.name.clone(),
                    })
                }
            }
        }
        crate::quant::ProbabilityMap::new(probs)
    }

    /// Computes the minimal cut sets of this tree (bottom-up engine).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if no root is set.
    pub fn minimal_cut_sets(&self) -> Result<crate::CutSetCollection> {
        crate::mcs::bottom_up(self)
    }

    /// Leaves reachable from the root, as leaf indices.
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if no root is set.
    pub fn reachable_leaves(&self) -> Result<Vec<usize>> {
        let root = self.root()?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0], true) {
                continue;
            }
            match &self.nodes[id.0].kind {
                NodeKind::Gate { inputs, .. } => stack.extend(inputs.iter().copied()),
                _ => out.push(self.leaf_index(id).expect("leaf has slot")),
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Depth of the tree from the root (a single gate over leaves has
    /// depth 2).
    ///
    /// # Errors
    ///
    /// [`FtaError::NoRoot`] if no root is set.
    pub fn depth(&self) -> Result<usize> {
        let root = self.root()?;
        // Iterative DFS with memo; the structure is a DAG by construction.
        let mut memo: Vec<Option<usize>> = vec![None; self.nodes.len()];
        fn depth_of(tree: &FaultTree, id: NodeId, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(d) = memo[id.0] {
                return d;
            }
            let d = match &tree.nodes[id.0].kind {
                NodeKind::Gate { inputs, .. } => {
                    1 + inputs
                        .iter()
                        .map(|&i| depth_of(tree, i, memo))
                        .max()
                        .unwrap_or(0)
                }
                _ => 1,
            };
            memo[id.0] = Some(d);
            d
        }
        Ok(depth_of(self, root, &mut memo))
    }

    /// Structural self-check: every gate input exists, thresholds are
    /// sane, and the graph below the root is acyclic. Trees built through
    /// the public API always pass; this exists for defence-in-depth (e.g.
    /// after deserializing a tree from disk).
    ///
    /// # Errors
    ///
    /// The specific [`FtaError`] describing the first violation found.
    pub fn validate(&self) -> Result<()> {
        for node in &self.nodes {
            if let NodeKind::Gate { kind, inputs } = &node.kind {
                if inputs.is_empty() {
                    return Err(FtaError::EmptyGate {
                        gate: node.name.clone(),
                    });
                }
                for input in inputs {
                    if input.0 >= self.nodes.len() {
                        return Err(FtaError::UnknownNode {
                            reference: format!("#{}", input.0),
                        });
                    }
                }
                if let GateKind::KOfN(k) = kind {
                    if *k == 0 || *k > inputs.len() {
                        return Err(FtaError::InvalidThreshold {
                            gate: node.name.clone(),
                            k: *k,
                            n: inputs.len(),
                        });
                    }
                }
            }
        }
        // Cycle check via iterative three-colour DFS.
        let mut colour = vec![0u8; self.nodes.len()]; // 0 white, 1 grey, 2 black
        for start in 0..self.nodes.len() {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((idx, processed)) = stack.pop() {
                if processed {
                    colour[idx] = 2;
                    continue;
                }
                if colour[idx] == 2 {
                    continue;
                }
                if colour[idx] == 1 {
                    return Err(FtaError::CyclicTree {
                        via: self.nodes[idx].name.clone(),
                    });
                }
                colour[idx] = 1;
                stack.push((idx, true));
                if let NodeKind::Gate { inputs, .. } = &self.nodes[idx].kind {
                    for input in inputs {
                        if colour[input.0] == 1 {
                            return Err(FtaError::CyclicTree {
                                via: self.nodes[input.0].name.clone(),
                            });
                        }
                        if colour[input.0] == 0 {
                            stack.push((input.0, false));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn check_probability(event: &str, p: f64) -> Result<()> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FtaError::InvalidProbability {
            event: event.to_owned(),
            value: p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig2_tree() -> (FaultTree, NodeId) {
        // Fig. 2: Collision = OHV-ignores OR (Signal out of order OR not activated)
        let mut ft = FaultTree::new("Collision");
        let a = ft.basic_event("OHV ignores signal").unwrap();
        let b = ft.basic_event("Signal out of order").unwrap();
        let c = ft.basic_event("Signal not activated").unwrap();
        let not_on = ft.or_gate("Signal not on", [b, c]).unwrap();
        let top = ft.or_gate("Collision", [a, not_on]).unwrap();
        ft.set_root(top).unwrap();
        (ft, top)
    }

    #[test]
    fn builds_paper_fig2() {
        let (ft, top) = paper_fig2_tree();
        assert_eq!(ft.len(), 5);
        assert_eq!(ft.leaves().len(), 3);
        assert_eq!(ft.root().unwrap(), top);
        assert_eq!(ft.depth().unwrap(), 3);
        ft.validate().unwrap();
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut ft = FaultTree::new("t");
        ft.basic_event("x").unwrap();
        assert!(matches!(
            ft.basic_event("x"),
            Err(FtaError::DuplicateName { .. })
        ));
        // Also across node kinds.
        assert!(ft.condition("x").is_err());
    }

    #[test]
    fn rejects_empty_gate() {
        let mut ft = FaultTree::new("t");
        assert!(matches!(
            ft.and_gate("g", []),
            Err(FtaError::EmptyGate { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_gate_inputs() {
        let mut ft = FaultTree::new("t");
        let x = ft.basic_event("x").unwrap();
        assert!(ft.and_gate("g", [x, x]).is_err());
    }

    #[test]
    fn rejects_bad_kofn_threshold() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("a").unwrap();
        let b = ft.basic_event("b").unwrap();
        assert!(matches!(
            ft.k_of_n_gate("v", 0, [a, b]),
            Err(FtaError::InvalidThreshold { .. })
        ));
        assert!(matches!(
            ft.k_of_n_gate("w", 3, [a, b]),
            Err(FtaError::InvalidThreshold { .. })
        ));
        assert!(ft.k_of_n_gate("ok", 2, [a, b]).is_ok());
    }

    #[test]
    fn rejects_leaf_as_root() {
        let mut ft = FaultTree::new("t");
        let x = ft.basic_event("x").unwrap();
        assert!(matches!(ft.set_root(x), Err(FtaError::InvalidRoot { .. })));
        assert!(matches!(ft.root(), Err(FtaError::NoRoot)));
    }

    #[test]
    fn probability_validation() {
        let mut ft = FaultTree::new("t");
        assert!(ft.basic_event_with_probability("x", 1.5).is_err());
        assert!(ft.basic_event_with_probability("x", -0.1).is_err());
        assert!(ft.basic_event_with_probability("x", f64::NAN).is_err());
        let x = ft.basic_event_with_probability("x", 0.25).unwrap();
        assert_eq!(ft.node(x).probability(), Some(0.25));
        ft.set_probability(x, 0.5).unwrap();
        assert_eq!(ft.node(x).probability(), Some(0.5));
        let g = ft.or_gate("g", [x]).unwrap();
        assert!(ft.set_probability(g, 0.5).is_err());
    }

    #[test]
    fn stored_probabilities_require_all_leaves() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let b = ft.basic_event("b").unwrap();
        let g = ft.or_gate("g", [a, b]).unwrap();
        ft.set_root(g).unwrap();
        assert!(matches!(
            ft.stored_probabilities(),
            Err(FtaError::MissingProbability { .. })
        ));
        ft.set_probability(b, 0.2).unwrap();
        let pm = ft.stored_probabilities().unwrap();
        assert_eq!(pm.len(), 2);
    }

    #[test]
    fn conditions_are_leaves_with_flag() {
        let mut ft = FaultTree::new("t");
        let cause = ft.basic_event("cooling fails").unwrap();
        let cond = ft
            .condition_with_probability("system running", 0.9)
            .unwrap();
        let g = ft.inhibit_gate("overheat", cause, cond).unwrap();
        ft.set_root(g).unwrap();
        assert!(ft.node(cond).is_condition());
        assert!(!ft.node(cause).is_condition());
        assert!(ft.node(cond).is_leaf());
        assert_eq!(ft.leaves().len(), 2);
    }

    #[test]
    fn shared_subtrees_are_allowed() {
        let mut ft = FaultTree::new("t");
        let x = ft.basic_event("x").unwrap();
        let y = ft.basic_event("y").unwrap();
        let shared = ft.or_gate("shared", [x, y]).unwrap();
        let a = ft.and_gate("a", [shared, x]).unwrap();
        let b = ft.and_gate("b", [shared, y]).unwrap();
        let top = ft.or_gate("top", [a, b]).unwrap();
        ft.set_root(top).unwrap();
        ft.validate().unwrap();
        assert_eq!(ft.reachable_leaves().unwrap(), vec![0, 1]);
    }

    #[test]
    fn reachable_leaves_ignores_disconnected_parts() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("a").unwrap();
        let _orphan = ft.basic_event("orphan").unwrap();
        let b = ft.basic_event("b").unwrap();
        let g = ft.and_gate("g", [a, b]).unwrap();
        ft.set_root(g).unwrap();
        assert_eq!(ft.reachable_leaves().unwrap(), vec![0, 2]);
    }

    #[test]
    fn node_lookup_by_name() {
        let (ft, top) = paper_fig2_tree();
        assert_eq!(ft.node_by_name("Collision"), Some(top));
        assert_eq!(ft.node_by_name("nope"), None);
        assert_eq!(ft.node(top).name(), "Collision");
    }

    #[test]
    fn leaf_indexing_round_trips() {
        let (ft, _) = paper_fig2_tree();
        for (slot, &leaf) in ft.leaves().iter().enumerate() {
            assert_eq!(ft.leaf_index(leaf), Some(slot));
            assert_eq!(ft.leaf(slot), leaf);
        }
        let root = ft.root().unwrap();
        assert_eq!(ft.leaf_index(root), None);
    }

    #[test]
    fn validate_detects_corrupted_cycles() {
        // Deliberately corrupt a deserialized-style tree: make gate point
        // at itself via serde round trip surgery on the struct.
        let (ft, _) = paper_fig2_tree();
        let mut corrupted = ft.clone();
        // Rewire "Signal not on" (index 3) to take the root (index 4) as
        // an input, producing a cycle root -> 3 -> root.
        if let NodeKind::Gate { inputs, .. } = &mut corrupted.nodes[3].kind {
            inputs[0] = NodeId(4);
        }
        assert!(matches!(
            corrupted.validate(),
            Err(FtaError::CyclicTree { .. })
        ));
    }
}
