/// A compact fixed-universe bit set used to represent cut sets.
///
/// Cut-set algorithms are dominated by subset tests (subsumption
/// minimization); a word-packed bit set makes those O(universe/64).
///
/// ```
/// use safety_opt_fta::BitSet;
///
/// let mut a = BitSet::new();
/// a.insert(3);
/// a.insert(40);
/// let mut b = a.clone();
/// b.insert(100);
/// assert!(a.is_subset(&b));
/// assert!(!b.is_subset(&a));
/// assert_eq!(b.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    /// Little-endian 64-bit blocks; trailing zero blocks are trimmed so
    /// that equality and hashing are canonical.
    blocks: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing a single element.
    pub fn singleton(index: usize) -> Self {
        let mut s = Self::new();
        s.insert(index);
        s
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Adds `index`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        let (block, bit) = (index / 64, index % 64);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `index`; returns `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        let (block, bit) = (index / 64, index % 64);
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        self.trim();
        present
    }

    /// `true` if `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        let (block, bit) = (index / 64, index % 64);
        self.blocks
            .get(block)
            .map(|b| b & (1u64 << bit) != 0)
            .unwrap_or(false)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` if `self` is a subset of `other` and strictly smaller.
    pub fn is_proper_subset(&self, other: &BitSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Union into a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// `true` if the two sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.block_idx * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl std::fmt::Display for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(130));
        assert!(s.contains(5) && s.contains(130));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(130));
        assert!(!s.remove(130));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn canonical_equality_after_remove() {
        // Removing a high bit must trim blocks so equality is structural.
        let mut a = BitSet::singleton(3);
        let mut b = BitSet::singleton(3);
        b.insert(200);
        b.remove(200);
        assert_eq!(a, b);
        a.insert(200);
        assert_ne!(a, b);
    }

    #[test]
    fn subset_relations() {
        let small: BitSet = [1, 5].into_iter().collect();
        let big: BitSet = [1, 5, 9].into_iter().collect();
        let other: BitSet = [2, 5].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(small.is_proper_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(!small.is_subset(&other));
        assert!(small.is_subset(&small));
        assert!(!small.is_proper_subset(&small));
        assert!(BitSet::new().is_subset(&small));
    }

    #[test]
    fn union_and_intersection() {
        let a: BitSet = [1, 64].into_iter().collect();
        let b: BitSet = [2, 64, 128].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 64, 128]);
        assert!(a.intersects(&b));
        let c = BitSet::singleton(3);
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&BitSet::new()));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: BitSet = [300, 2, 65, 64, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 63, 64, 65, 300]);
    }

    #[test]
    fn display_format() {
        let s: BitSet = [2, 7].into_iter().collect();
        assert_eq!(s.to_string(), "{2, 7}");
        assert_eq!(BitSet::new().to_string(), "{}");
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq() {
        let a: BitSet = [1].into_iter().collect();
        let b: BitSet = [2].into_iter().collect();
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
