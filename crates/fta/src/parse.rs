//! Plain-text fault-tree format (Galileo-flavoured).
//!
//! Lets models live in version-controlled files next to the analysis code.
//! Line-oriented, `#` comments, names either bare identifiers or quoted
//! strings:
//!
//! ```text
//! tree Collision
//!
//! basic "OHV ignores signal" p=0.01
//! basic SignalOutOfOrder    p=1e-4
//! basic SignalNotActivated  p=1e-5
//! cond  "OHV present"       p=0.001
//!
//! SignalNotOn := or(SignalOutOfOrder, SignalNotActivated)
//! Critical    := inhibit(SignalNotOn | "OHV present")
//! Collision   := or("OHV ignores signal", Critical)
//!
//! top Collision
//! ```
//!
//! Gate forms: `and(a, b, …)`, `or(a, b, …)`, `kofn(k; a, b, …)`,
//! `inhibit(cause | condition)`. Definitions may reference gates defined
//! later in the file; cycles are rejected.
//!
//! Quoted names may contain anything: `\"`, `\\`, `\n`, and `\r` escape
//! the delimiter, backslash, and line breaks, and the statement keywords
//! (`tree`/`top`/`basic`/`cond`) are legal node names when quoted.
//!
//! [`to_text`] emits this format; `parse(to_text(t))` reproduces the tree
//! (up to leaf ordering, which the writer preserves).

use crate::tree::{FaultTree, GateKind, NodeId, NodeKind};
use crate::{FtaError, Result};
use std::collections::HashMap;

/// Parses a fault tree from its textual representation.
///
/// # Errors
///
/// [`FtaError::Parse`] with a line number for syntax problems,
/// [`FtaError::CyclicTree`] for recursive gate definitions, plus the usual
/// structural errors (duplicate names, bad thresholds, missing `top`).
pub fn parse(text: &str) -> Result<FaultTree> {
    let mut tree_name: Option<String> = None;
    let mut top_name: Option<(String, usize)> = None;
    // name -> (kind, prob, line) for leaves
    let mut leaf_decls: Vec<(String, bool, Option<f64>, usize)> = Vec::new();
    // name -> (gate spec, line)
    let mut gate_decls: Vec<(String, GateSpec, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("tree ") {
            let (name, rest) = take_name(rest, lineno)?;
            expect_empty(rest, lineno)?;
            tree_name = Some(name);
        } else if let Some(rest) = line.strip_prefix("top ") {
            let (name, rest) = take_name(rest, lineno)?;
            expect_empty(rest, lineno)?;
            top_name = Some((name, lineno));
        } else if let Some(rest) = line.strip_prefix("basic ") {
            let (name, prob) = parse_leaf(rest, lineno)?;
            leaf_decls.push((name, false, prob, lineno));
        } else if let Some(rest) = line.strip_prefix("cond ") {
            let (name, prob) = parse_leaf(rest, lineno)?;
            leaf_decls.push((name, true, prob, lineno));
        } else if let Some((lhs, rhs)) = split_top_level(line, ":=") {
            let (name, spec) = parse_gate(lhs, rhs, lineno)?;
            gate_decls.push((name, spec, lineno));
        } else {
            return Err(FtaError::Parse {
                line: lineno,
                message: format!("unrecognized statement: {line:?}"),
            });
        }
    }

    let name = tree_name.unwrap_or_else(|| "fault-tree".to_string());
    let mut ft = FaultTree::new(name);

    // Create leaves in declaration order so leaf indices are stable.
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for (name, is_cond, prob, _line) in &leaf_decls {
        let id = match (is_cond, prob) {
            (false, Some(p)) => ft.basic_event_with_probability(name.clone(), *p)?,
            (false, None) => ft.basic_event(name.clone())?,
            (true, Some(p)) => ft.condition_with_probability(name.clone(), *p)?,
            (true, None) => ft.condition(name.clone())?,
        };
        ids.insert(name.clone(), id);
    }

    // Build gates depth-first over the reference graph, detecting cycles.
    let gate_index: HashMap<String, usize> = gate_decls
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (n.clone(), i))
        .collect();
    let mut state = vec![0u8; gate_decls.len()]; // 0 unvisited, 1 visiting, 2 done
    for i in 0..gate_decls.len() {
        build_gate(i, &gate_decls, &gate_index, &mut state, &mut ids, &mut ft)?;
    }

    let (top, top_line) = top_name.ok_or(FtaError::Parse {
        line: text.lines().count().max(1),
        message: "missing `top <name>` statement".to_string(),
    })?;
    let top_id = *ids.get(&top).ok_or(FtaError::Parse {
        line: top_line,
        message: format!("top references unknown node {top:?}"),
    })?;
    ft.set_root(top_id)?;
    Ok(ft)
}

#[derive(Debug, Clone)]
enum GateSpec {
    And(Vec<String>),
    Or(Vec<String>),
    KOfN(usize, Vec<String>),
    Inhibit(String, String),
}

impl GateSpec {
    fn references(&self) -> Vec<&String> {
        match self {
            GateSpec::And(v) | GateSpec::Or(v) => v.iter().collect(),
            GateSpec::KOfN(_, v) => v.iter().collect(),
            GateSpec::Inhibit(a, b) => vec![a, b],
        }
    }
}

fn build_gate(
    i: usize,
    decls: &[(String, GateSpec, usize)],
    index: &HashMap<String, usize>,
    state: &mut [u8],
    ids: &mut HashMap<String, NodeId>,
    ft: &mut FaultTree,
) -> Result<()> {
    if state[i] == 2 {
        return Ok(());
    }
    if state[i] == 1 {
        return Err(FtaError::CyclicTree {
            via: decls[i].0.clone(),
        });
    }
    state[i] = 1;
    let (name, spec, line) = &decls[i];
    for r in spec.references() {
        if let Some(&j) = index.get(r) {
            build_gate(j, decls, index, state, ids, ft)?;
        } else if !ids.contains_key(r) {
            return Err(FtaError::Parse {
                line: *line,
                message: format!("gate {name:?} references undeclared node {r:?}"),
            });
        }
    }
    let resolve = |name: &String| -> NodeId { ids[name] };
    let id = match spec {
        GateSpec::And(inputs) => ft.and_gate(name.clone(), inputs.iter().map(resolve))?,
        GateSpec::Or(inputs) => ft.or_gate(name.clone(), inputs.iter().map(resolve))?,
        GateSpec::KOfN(k, inputs) => {
            ft.k_of_n_gate(name.clone(), *k, inputs.iter().map(resolve))?
        }
        GateSpec::Inhibit(cause, cond) => {
            ft.inhibit_gate(name.clone(), resolve(cause), resolve(cond))?
        }
    };
    ids.insert(name.clone(), id);
    state[i] = 2;
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    // `#` outside quotes starts a comment (backslash escapes keep a
    // quoted `\"` from toggling the quote state).
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `s` at the first occurrence of `pat` that sits outside quoted
/// names (so `"a:=b" := or(x)` splits at the real definition marker, and
/// an inhibit argument named `"a|b"` does not split the cause/condition).
fn split_top_level<'a>(s: &'a str, pat: &str) -> Option<(&'a str, &'a str)> {
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            _ if !in_quote && s[i..].starts_with(pat) => {
                return Some((&s[..i], &s[i + pat.len()..]));
            }
            _ => {}
        }
    }
    None
}

/// Reads a (possibly quoted) name from the front of `s`; returns the name
/// and the remaining string. Quoted names decode the escapes [`quote`]
/// emits (`\"`, `\\`, `\n`, `\r`).
fn take_name(s: &str, line: usize) -> Result<(String, &str)> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('"') {
        let mut name = String::new();
        let mut chars = rest.char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err(FtaError::Parse {
                    line,
                    message: "unterminated quoted name".to_string(),
                });
            };
            match c {
                '"' => return Ok((name, &rest[i + 1..])),
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err(FtaError::Parse {
                            line,
                            message: "dangling escape in quoted name".to_string(),
                        });
                    };
                    name.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        'n' => '\n',
                        'r' => '\r',
                        other => {
                            return Err(FtaError::Parse {
                                line,
                                message: format!("unknown escape `\\{other}` in quoted name"),
                            })
                        }
                    });
                }
                c => name.push(c),
            }
        }
    } else {
        let end = s
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(s.len());
        if end == 0 {
            return Err(FtaError::Parse {
                line,
                message: format!("expected a name at {s:?}"),
            });
        }
        Ok((s[..end].to_string(), &s[end..]))
    }
}

fn expect_empty(rest: &str, line: usize) -> Result<()> {
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(FtaError::Parse {
            line,
            message: format!("unexpected trailing input: {:?}", rest.trim()),
        })
    }
}

fn parse_leaf(rest: &str, line: usize) -> Result<(String, Option<f64>)> {
    let (name, rest) = take_name(rest, line)?;
    let rest = rest.trim();
    if rest.is_empty() {
        return Ok((name, None));
    }
    let p = rest.strip_prefix("p=").ok_or(FtaError::Parse {
        line,
        message: format!("expected `p=<value>`, found {rest:?}"),
    })?;
    let value: f64 = p.trim().parse().map_err(|_| FtaError::Parse {
        line,
        message: format!("invalid probability literal {p:?}"),
    })?;
    Ok((name, Some(value)))
}

fn parse_gate(lhs: &str, rhs: &str, line: usize) -> Result<(String, GateSpec)> {
    let (name, lhs_rest) = take_name(lhs, line)?;
    expect_empty(lhs_rest, line)?;
    let rhs = rhs.trim();
    let open = rhs.find('(').ok_or(FtaError::Parse {
        line,
        message: format!("expected gate form after :=, found {rhs:?}"),
    })?;
    if !rhs.ends_with(')') {
        return Err(FtaError::Parse {
            line,
            message: "gate definition must end with `)`".to_string(),
        });
    }
    let head = rhs[..open].trim();
    let body = &rhs[open + 1..rhs.len() - 1];
    let spec = match head {
        "and" => GateSpec::And(parse_name_list(body, line)?),
        "or" => GateSpec::Or(parse_name_list(body, line)?),
        "kofn" => {
            let (k_str, list) = body.split_once(';').ok_or(FtaError::Parse {
                line,
                message: "kofn needs the form kofn(k; a, b, …)".to_string(),
            })?;
            let k: usize = k_str.trim().parse().map_err(|_| FtaError::Parse {
                line,
                message: format!("invalid threshold {k_str:?}"),
            })?;
            GateSpec::KOfN(k, parse_name_list(list, line)?)
        }
        "inhibit" => {
            let (cause, cond) = split_top_level(body, "|").ok_or(FtaError::Parse {
                line,
                message: "inhibit needs the form inhibit(cause | condition)".to_string(),
            })?;
            let (cause, r1) = take_name(cause, line)?;
            expect_empty(r1, line)?;
            let (cond, r2) = take_name(cond, line)?;
            expect_empty(r2, line)?;
            GateSpec::Inhibit(cause, cond)
        }
        other => {
            return Err(FtaError::Parse {
                line,
                message: format!("unknown gate type {other:?}"),
            })
        }
    };
    Ok((name, spec))
}

fn parse_name_list(body: &str, line: usize) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for part in split_top_level_commas(body) {
        let (name, rest) = take_name(&part, line)?;
        expect_empty(rest, line)?;
        out.push(name);
    }
    if out.is_empty() {
        return Err(FtaError::Parse {
            line,
            message: "gate needs at least one input".to_string(),
        });
    }
    Ok(out)
}

fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            current.push(c);
            continue;
        }
        match c {
            '\\' if in_quote => {
                escaped = true;
                current.push(c);
            }
            '"' => {
                in_quote = !in_quote;
                current.push(c);
            }
            ',' if !in_quote => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() || !parts.is_empty() {
        parts.push(current);
    }
    parts.into_iter().filter(|p| !p.trim().is_empty()).collect()
}

/// Serializes a fault tree to the textual format accepted by [`parse`].
///
/// # Errors
///
/// [`FtaError::NoRoot`] if the tree has no root.
pub fn to_text(tree: &FaultTree) -> Result<String> {
    use std::fmt::Write as _;
    let root = tree.root()?;
    let mut out = String::new();
    let _ = writeln!(out, "tree {}", quote(tree.name()));
    let _ = writeln!(out);
    for &leaf in tree.leaves() {
        let node = tree.node(leaf);
        let keyword = if node.is_condition() { "cond" } else { "basic" };
        match node.probability() {
            Some(p) => {
                let _ = writeln!(out, "{keyword} {} p={p}", quote(node.name()));
            }
            None => {
                let _ = writeln!(out, "{keyword} {}", quote(node.name()));
            }
        }
    }
    let _ = writeln!(out);
    for (_, node) in tree.iter() {
        if let NodeKind::Gate { kind, inputs } = node.kind() {
            let args: Vec<String> = inputs.iter().map(|&i| quote(tree.node(i).name())).collect();
            let rhs = match kind {
                GateKind::And => format!("and({})", args.join(", ")),
                GateKind::Or => format!("or({})", args.join(", ")),
                GateKind::KOfN(k) => format!("kofn({k}; {})", args.join(", ")),
                GateKind::Inhibit => format!("inhibit({} | {})", args[0], args[1]),
            };
            let _ = writeln!(out, "{} := {rhs}", quote(node.name()));
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "top {}", quote(tree.node(root).name()));
    Ok(out)
}

fn quote(name: &str) -> String {
    // Statement keywords must be quoted even when they look bare: a gate
    // line `top := or(…)` would otherwise dispatch as a `top` statement.
    const STATEMENT_KEYWORDS: [&str; 4] = ["tree", "top", "basic", "cond"];
    let bare = !name.is_empty()
        && !STATEMENT_KEYWORDS.contains(&name)
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if bare {
        name.to_string()
    } else {
        let mut out = String::with_capacity(name.len() + 2);
        out.push('"');
        for c in name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs;

    const ELBTUNNEL_SNIPPET: &str = r#"
# Fig. 2 of the paper, with made-up probabilities.
tree Collision

basic "OHV ignores signal" p=0.01
basic SignalOutOfOrder    p=1e-4
basic SignalNotActivated  p=1e-5

SignalNotOn := or(SignalOutOfOrder, SignalNotActivated)
Collision   := or("OHV ignores signal", SignalNotOn)

top Collision
"#;

    #[test]
    fn parses_paper_snippet() {
        let ft = parse(ELBTUNNEL_SNIPPET).unwrap();
        assert_eq!(ft.name(), "Collision");
        assert_eq!(ft.leaves().len(), 3);
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 3);
        let pm = ft.stored_probabilities().unwrap();
        let p = crate::quant::rare_event(&mcs, &pm).unwrap();
        assert!((p - 0.01011).abs() < 1e-12);
    }

    #[test]
    fn forward_references_are_resolved() {
        let text = r#"
tree t
Top := or(Later, A)
Later := and(B, C)
basic A p=0.1
basic B p=0.2
basic C p=0.3
top Top
"#;
        let ft = parse(text).unwrap();
        assert_eq!(mcs::bottom_up(&ft).unwrap().len(), 2);
    }

    #[test]
    fn detects_cycles() {
        let text = "\ntree t\nA := or(B)\nB := or(A)\nbasic X\ntop A\n";
        assert!(matches!(parse(text), Err(FtaError::CyclicTree { .. })));
    }

    #[test]
    fn kofn_and_inhibit_forms() {
        let text = r#"
basic A p=0.1
basic B p=0.1
basic C p=0.1
cond Running p=0.8
Voter := kofn(2; A, B, C)
Top := inhibit(Voter | Running)
top Top
"#;
        let ft = parse(text).unwrap();
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 3);
        assert!(mcs.iter().all(|cs| cs.order() == 3)); // 2 failures + condition
        let cond_leaf = ft.node_by_name("Running").unwrap();
        assert!(ft.node(cond_leaf).is_condition());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse("tree t\nbogus statement\n").unwrap_err();
        match err {
            FtaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse("basic A p=oops\ntop A\n").unwrap_err();
        assert!(matches!(err, FtaError::Parse { line: 1, .. }));
    }

    #[test]
    fn missing_top_is_an_error() {
        assert!(matches!(
            parse("basic A p=0.5\n"),
            Err(FtaError::Parse { .. })
        ));
    }

    #[test]
    fn undeclared_reference_is_an_error() {
        let err = parse("G := or(Ghost)\ntop G\n").unwrap_err();
        match err {
            FtaError::Parse { message, .. } => assert!(message.contains("Ghost")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn quoted_names_with_spaces_and_hash() {
        let text = "basic \"a # strange, name\" p=0.5\nT := or(\"a # strange, name\")\ntop T\n";
        let ft = parse(text).unwrap();
        assert!(ft.node_by_name("a # strange, name").is_some());
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let ft = parse(ELBTUNNEL_SNIPPET).unwrap();
        let text = to_text(&ft).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back.name(), ft.name());
        assert_eq!(back.leaves().len(), ft.leaves().len());
        assert_eq!(mcs::bottom_up(&back).unwrap(), mcs::bottom_up(&ft).unwrap());
        assert_eq!(
            back.stored_probabilities().unwrap(),
            ft.stored_probabilities().unwrap()
        );
    }

    /// Regression: a gate named like a statement keyword used to be
    /// emitted bare, so `top := or(…)` re-parsed as a `top` statement
    /// (a syntax error at best). [`quote`] now quotes the keywords.
    #[test]
    fn keyword_named_gates_round_trip() {
        for keyword in ["tree", "top", "basic", "cond"] {
            let mut ft = FaultTree::new("kw");
            let a = ft.basic_event_with_probability("a", 0.1).unwrap();
            let b = ft.basic_event_with_probability("b", 0.2).unwrap();
            let g = ft.or_gate(keyword, [a, b]).unwrap();
            let root = ft.and_gate("root", [g, a]).unwrap();
            ft.set_root(root).unwrap();
            let back = parse(&to_text(&ft).unwrap()).unwrap();
            assert_eq!(back, ft, "keyword {keyword:?}");
        }
    }

    /// Regression: names containing `"`, `\`, newlines, the `:=` marker,
    /// or the inhibit `|` separator used to be unrepresentable (no
    /// escaping; `split_once` was not quote-aware).
    #[test]
    fn adversarial_names_round_trip() {
        let names = [
            "quote \" inside",
            "back\\slash",
            "line\nbreak",
            "carriage\rreturn",
            "walrus := here",
            "pipe | here",
            "comma, semi; paren ) close",
            "# not a comment",
        ];
        let mut ft = FaultTree::new("adversarial \" tree \\ name");
        let leaves: Vec<NodeId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ft.basic_event_with_probability(format!("{n} #{i}"), 0.01 * (i + 1) as f64)
                    .unwrap()
            })
            .collect();
        let cond = ft.condition_with_probability("cond | \"x\"", 0.5).unwrap();
        let v = ft
            .k_of_n_gate("kofn; gate", 2, leaves[..4].to_vec())
            .unwrap();
        let inh = ft.inhibit_gate("inhibit | gate", v, cond).unwrap();
        let rest = ft.or_gate("or := gate", leaves[4..].to_vec()).unwrap();
        let root = ft.or_gate("root \"|\" gate", [inh, rest]).unwrap();
        ft.set_root(root).unwrap();
        let back = parse(&to_text(&ft).unwrap()).unwrap();
        assert_eq!(back, ft);
    }

    #[test]
    fn unknown_escape_is_a_parse_error() {
        let err = parse("basic \"a\\qb\" p=0.1\ntop \"a\\qb\"\n").unwrap_err();
        assert!(matches!(err, FtaError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn round_trip_with_all_gate_kinds() {
        let mut ft = FaultTree::new("mixed");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let b = ft.basic_event_with_probability("b", 0.2).unwrap();
        let c = ft.basic_event_with_probability("c", 0.3).unwrap();
        let cond = ft.condition_with_probability("env ok", 0.9).unwrap();
        let v = ft.k_of_n_gate("v", 2, [a, b, c]).unwrap();
        let i = ft.inhibit_gate("i", v, cond).unwrap();
        let and = ft.and_gate("both", [i, a]).unwrap();
        ft.set_root(and).unwrap();
        let back = parse(&to_text(&ft).unwrap()).unwrap();
        assert_eq!(mcs::bottom_up(&back).unwrap(), mcs::bottom_up(&ft).unwrap());
    }
}
