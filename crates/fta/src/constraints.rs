//! Constraint extraction and constraint-probability bounds.
//!
//! Paper Sect. II-D.1: the constraint probability of a cut set "can be
//! approximated by calculating the probabilities of all conditions in
//! INHIBIT-gates along the paths through the tree from the hazard to the
//! elements of the cut sets. An upper bound for the constraint probability
//! is then the **product** of all conditions' probabilities if statistical
//! independence holds; **if not then the maximum** is an upper bound."
//!
//! Sect. V adds the future-work idea this module realizes: "to collect all
//! INHIBIT-gates along the paths from the fault tree root to the leaves of
//! a cut set — the result should be a formal description of the
//! constraints necessary to make the primary failures force the hazard's
//! occurrence."
//!
//! Because this crate represents INHIBIT conditions as condition *leaves*,
//! the cut-set engines already surface them inside each minimal cut set;
//! [`ConstraintReport`] splits them out and computes both bounds.

use crate::cutset::CutSetCollection;
use crate::quant::ProbabilityMap;
use crate::tree::FaultTree;
use crate::{FtaError, Result};

/// The constraints of one minimal cut set, with probability bounds.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CutSetConstraints {
    /// Names of the primary failures in the cut set.
    pub failures: Vec<String>,
    /// Names of the INHIBIT conditions that must hold.
    pub conditions: Vec<String>,
    /// Upper bound on `P(Constraints)` assuming pairwise independence:
    /// the product of the condition probabilities.
    pub independent_bound: f64,
    /// Upper bound without any independence assumption: the minimum of
    /// the condition probabilities (the tightest of the "maximum" bounds
    /// the paper describes, since `P(A ∩ B) ≤ min(P(A), P(B))`).
    pub dependent_bound: f64,
    /// Product of the failure probabilities (Eq. 2's `∏ P(PF)`).
    pub failure_product: f64,
}

impl CutSetConstraints {
    /// Eq. 2 with the independence bound:
    /// `P(CS) ≤ independent_bound · ∏ P(PF)`.
    pub fn probability_independent(&self) -> f64 {
        self.independent_bound * self.failure_product
    }

    /// Eq. 2 with the dependence-safe bound:
    /// `P(CS) ≤ dependent_bound · ∏ P(PF)`.
    pub fn probability_dependent(&self) -> f64 {
        self.dependent_bound * self.failure_product
    }
}

/// Constraint analysis of a whole hazard.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConstraintReport {
    /// Per-minimal-cut-set constraint descriptions.
    pub cut_sets: Vec<CutSetConstraints>,
}

impl ConstraintReport {
    /// Extracts the constraints of every minimal cut set of `tree` and
    /// bounds their probabilities under `probs`.
    ///
    /// # Errors
    ///
    /// Tree errors (no root, budget) and
    /// [`FtaError::MissingProbability`] for uncovered leaves.
    pub fn compute(tree: &FaultTree, probs: &ProbabilityMap) -> Result<Self> {
        let mcs = crate::mcs::bottom_up(tree)?;
        Self::from_cut_sets(tree, &mcs, probs)
    }

    /// Same as [`compute`](Self::compute) for pre-computed cut sets.
    ///
    /// # Errors
    ///
    /// [`FtaError::MissingProbability`] for uncovered leaves.
    pub fn from_cut_sets(
        tree: &FaultTree,
        mcs: &CutSetCollection,
        probs: &ProbabilityMap,
    ) -> Result<Self> {
        let mut cut_sets = Vec::with_capacity(mcs.len());
        for cs in mcs.iter() {
            let mut failures = Vec::new();
            let mut conditions = Vec::new();
            let mut independent_bound = 1.0;
            let mut dependent_bound = 1.0f64;
            let mut failure_product = 1.0;
            for leaf in cs.iter() {
                let node = tree.node(tree.leaf(leaf));
                let p = probs
                    .get(leaf)
                    .ok_or_else(|| FtaError::MissingProbability {
                        event: node.name().to_owned(),
                    })?;
                if node.is_condition() {
                    conditions.push(node.name().to_owned());
                    independent_bound *= p;
                    dependent_bound = dependent_bound.min(p);
                } else {
                    failures.push(node.name().to_owned());
                    failure_product *= p;
                }
            }
            if conditions.is_empty() {
                dependent_bound = 1.0;
            }
            cut_sets.push(CutSetConstraints {
                failures,
                conditions,
                independent_bound,
                dependent_bound,
                failure_product,
            });
        }
        Ok(Self { cut_sets })
    }

    /// Hazard probability (rare-event sum) under the independence bound —
    /// exactly the paper's refined Eq. 2 quantification.
    pub fn hazard_probability_independent(&self) -> f64 {
        self.cut_sets
            .iter()
            .map(CutSetConstraints::probability_independent)
            .sum()
    }

    /// Hazard probability (rare-event sum) under the dependence-safe
    /// bound — what a careful analyst reports when constraint
    /// independence cannot be argued.
    pub fn hazard_probability_dependent(&self) -> f64 {
        self.cut_sets
            .iter()
            .map(CutSetConstraints::probability_dependent)
            .sum()
    }

    /// Worst-case hazard probability with all constraints forced to hold
    /// (`P(Constraints) = 1`) — classical quantitative FTA.
    pub fn hazard_probability_worst_case(&self) -> f64 {
        self.cut_sets.iter().map(|cs| cs.failure_product).sum()
    }

    /// All distinct condition names across the hazard — the "formal
    /// description of the constraints" of the paper's Sect. V.
    pub fn all_conditions(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .cut_sets
            .iter()
            .flat_map(|cs| cs.conditions.iter().map(String::as_str))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two INHIBIT layers: top = INHIBIT(INHIBIT(f | c1) OR g | c2).
    fn nested_inhibit_tree() -> FaultTree {
        let mut ft = FaultTree::new("t");
        let f = ft.basic_event_with_probability("f", 0.01).unwrap();
        let g = ft.basic_event_with_probability("g", 0.02).unwrap();
        let c1 = ft.condition_with_probability("c1", 0.5).unwrap();
        let c2 = ft.condition_with_probability("c2", 0.25).unwrap();
        let inner = ft.inhibit_gate("inner", f, c1).unwrap();
        let or = ft.or_gate("or", [inner, g]).unwrap();
        let top = ft.inhibit_gate("top", or, c2).unwrap();
        ft.set_root(top).unwrap();
        ft
    }

    #[test]
    fn collects_conditions_along_paths() {
        let ft = nested_inhibit_tree();
        let probs = ft.stored_probabilities().unwrap();
        let report = ConstraintReport::compute(&ft, &probs).unwrap();
        assert_eq!(report.cut_sets.len(), 2);
        // {f} needs both c1 and c2; {g} needs only c2.
        let f_cs = report
            .cut_sets
            .iter()
            .find(|c| c.failures == vec!["f"])
            .unwrap();
        assert_eq!(f_cs.conditions, vec!["c1", "c2"]);
        let g_cs = report
            .cut_sets
            .iter()
            .find(|c| c.failures == vec!["g"])
            .unwrap();
        assert_eq!(g_cs.conditions, vec!["c2"]);
        assert_eq!(report.all_conditions(), vec!["c1", "c2"]);
    }

    #[test]
    fn bounds_match_paper_definitions() {
        let ft = nested_inhibit_tree();
        let probs = ft.stored_probabilities().unwrap();
        let report = ConstraintReport::compute(&ft, &probs).unwrap();
        let f_cs = report
            .cut_sets
            .iter()
            .find(|c| c.failures == vec!["f"])
            .unwrap();
        // Independent: 0.5 · 0.25 = 0.125; dependent: min = 0.25.
        assert!((f_cs.independent_bound - 0.125).abs() < 1e-15);
        assert!((f_cs.dependent_bound - 0.25).abs() < 1e-15);
        assert!((f_cs.failure_product - 0.01).abs() < 1e-15);
        assert!((f_cs.probability_independent() - 0.00125).abs() < 1e-15);
        assert!((f_cs.probability_dependent() - 0.0025).abs() < 1e-15);
    }

    #[test]
    fn bound_ordering_always_holds() {
        // independent ≤ dependent ≤ worst case, per cut set and summed.
        let ft = nested_inhibit_tree();
        let probs = ft.stored_probabilities().unwrap();
        let report = ConstraintReport::compute(&ft, &probs).unwrap();
        for cs in &report.cut_sets {
            assert!(cs.independent_bound <= cs.dependent_bound + 1e-15);
            assert!(cs.dependent_bound <= 1.0);
        }
        let pi = report.hazard_probability_independent();
        let pd = report.hazard_probability_dependent();
        let pw = report.hazard_probability_worst_case();
        assert!(pi <= pd + 1e-15);
        assert!(pd <= pw + 1e-15);
        // Worst case here: 0.01 + 0.02.
        assert!((pw - 0.03).abs() < 1e-15);
    }

    #[test]
    fn unconstrained_cut_sets_have_unit_bounds() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event_with_probability("a", 0.1).unwrap();
        let g = ft.or_gate("g", [a]).unwrap();
        ft.set_root(g).unwrap();
        let probs = ft.stored_probabilities().unwrap();
        let report = ConstraintReport::compute(&ft, &probs).unwrap();
        assert_eq!(report.cut_sets[0].independent_bound, 1.0);
        assert_eq!(report.cut_sets[0].dependent_bound, 1.0);
        assert!(report.all_conditions().is_empty());
    }

    #[test]
    fn elbtunnel_style_constraint_refinement() {
        // An INHIBIT condition at 1e-3 shrinks the Eq. 2 estimate by
        // three orders of magnitude against worst-case FTA.
        let mut ft = FaultTree::new("t");
        let hv = ft.basic_event_with_probability("HV_ODfinal", 0.87).unwrap();
        let cond = ft
            .condition_with_probability("ODfinal active", 1e-3)
            .unwrap();
        let top = ft.inhibit_gate("false alarm", hv, cond).unwrap();
        ft.set_root(top).unwrap();
        let probs = ft.stored_probabilities().unwrap();
        let report = ConstraintReport::compute(&ft, &probs).unwrap();
        let refined = report.hazard_probability_independent();
        let worst = report.hazard_probability_worst_case();
        assert!((refined - 0.87e-3).abs() < 1e-12);
        assert!((worst - 0.87).abs() < 1e-12);
        assert!(worst / refined > 999.0);
    }

    #[test]
    fn missing_probability_is_reported_by_name() {
        let mut ft = FaultTree::new("t");
        let a = ft.basic_event("nameless risk").unwrap();
        let g = ft.or_gate("g", [a]).unwrap();
        ft.set_root(g).unwrap();
        let probs = ProbabilityMap::new(vec![]).unwrap();
        match ConstraintReport::compute(&ft, &probs) {
            Err(FtaError::MissingProbability { event }) => {
                assert_eq!(event, "nameless risk");
            }
            other => panic!("expected MissingProbability, got {other:?}"),
        }
    }
}
