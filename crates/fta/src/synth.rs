//! Synthetic fault-tree generators for property tests and benchmarks.
//!
//! Two kinds of generators:
//!
//! * Parametric **families** with known analytic answers
//!   ([`and_of_ors`], [`or_of_ands`], [`voter_chain`]) — used by the
//!   benchmark harness to sweep tree size while keeping the expected
//!   minimal-cut-set counts checkable in closed form.
//! * A seeded **random tree** generator ([`random_tree`]) — used by
//!   property tests to cross-check the MOCUS / bottom-up / BDD engines
//!   against each other on arbitrary structures.

use crate::tree::{FaultTree, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `AND` of `m` independent `OR`-groups with `n` leaves each.
///
/// Minimal cut sets: all `n^m` combinations picking one leaf per group.
/// Leaf probabilities default to `p`.
pub fn and_of_ors(m: usize, n: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("and{m}-of-or{n}"));
    let mut groups = Vec::new();
    for g in 0..m {
        let leaves: Vec<NodeId> = (0..n)
            .map(|i| {
                ft.basic_event_with_probability(format!("e{g}_{i}"), p)
                    .expect("unique names")
            })
            .collect();
        groups.push(ft.or_gate(format!("or{g}"), leaves).expect("valid gate"));
    }
    let top = ft.and_gate("top", groups).expect("valid gate");
    ft.set_root(top).expect("gate root");
    ft
}

/// `OR` of `m` independent `AND`-groups with `n` leaves each.
///
/// Minimal cut sets: exactly the `m` groups.
pub fn or_of_ands(m: usize, n: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("or{m}-of-and{n}"));
    let mut groups = Vec::new();
    for g in 0..m {
        let leaves: Vec<NodeId> = (0..n)
            .map(|i| {
                ft.basic_event_with_probability(format!("e{g}_{i}"), p)
                    .expect("unique names")
            })
            .collect();
        groups.push(ft.and_gate(format!("and{g}"), leaves).expect("valid gate"));
    }
    let top = ft.or_gate("top", groups).expect("valid gate");
    ft.set_root(top).expect("gate root");
    ft
}

/// A chain of `depth` 2-of-3 voters, each voting over one fresh leaf pair
/// plus the previous stage. Exercises deep sharing and k-of-n expansion.
pub fn voter_chain(depth: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("voter-chain-{depth}"));
    let mut stage = {
        let a = ft.basic_event_with_probability("seed_a", p).unwrap();
        let b = ft.basic_event_with_probability("seed_b", p).unwrap();
        ft.and_gate("stage0", [a, b]).unwrap()
    };
    for d in 1..=depth {
        let x = ft.basic_event_with_probability(format!("x{d}"), p).unwrap();
        let y = ft.basic_event_with_probability(format!("y{d}"), p).unwrap();
        stage = ft
            .k_of_n_gate(format!("stage{d}"), 2, [stage, x, y])
            .unwrap();
    }
    // Wrap in a trivial OR so the root is distinct from the last voter.
    let top = ft.or_gate("top", [stage]).unwrap();
    ft.set_root(top).unwrap();
    ft
}

/// Configuration for [`random_tree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTreeConfig {
    /// Number of distinct basic events to draw from.
    pub num_leaves: usize,
    /// Number of gates to generate (sink gates are collected under an
    /// OR root).
    pub num_gates: usize,
    /// Maximum inputs per gate (≥ 2).
    pub max_inputs: usize,
    /// Probability assigned to every leaf.
    pub leaf_probability: f64,
    /// Probability that a gate input reuses an existing gate rather than
    /// a leaf (controls DAG sharing).
    pub gate_reuse: f64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        Self {
            num_leaves: 8,
            num_gates: 6,
            max_inputs: 3,
            leaf_probability: 0.1,
            gate_reuse: 0.4,
        }
    }
}

/// Generates a random coherent fault tree (AND/OR/k-of-n gates) with the
/// given seed. Deterministic per `(config, seed)`.
///
/// The generated tree always has a valid root; every gate draws inputs
/// from earlier gates and leaves, so it is a DAG by construction.
pub fn random_tree(config: RandomTreeConfig, seed: u64) -> FaultTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ft = FaultTree::new(format!("random-{seed}"));
    let leaves: Vec<NodeId> = (0..config.num_leaves.max(2))
        .map(|i| {
            ft.basic_event_with_probability(format!("e{i}"), config.leaf_probability)
                .expect("unique names")
        })
        .collect();
    let mut gates: Vec<NodeId> = Vec::new();
    for g in 0..config.num_gates.max(1) {
        let arity = rng.gen_range(2..=config.max_inputs.max(2));
        let mut inputs: Vec<NodeId> = Vec::new();
        for _ in 0..arity {
            let candidate = if !gates.is_empty() && rng.gen::<f64>() < config.gate_reuse {
                gates[rng.gen_range(0..gates.len())]
            } else {
                leaves[rng.gen_range(0..leaves.len())]
            };
            if !inputs.contains(&candidate) {
                inputs.push(candidate);
            }
        }
        if inputs.len() < 2 {
            // Ensure arity ≥ 2 by adding a distinct leaf.
            for &l in &leaves {
                if !inputs.contains(&l) {
                    inputs.push(l);
                    break;
                }
            }
        }
        let kind = rng.gen_range(0..3);
        let gate = match kind {
            0 => ft.and_gate(format!("g{g}"), inputs).expect("valid"),
            1 => ft.or_gate(format!("g{g}"), inputs).expect("valid"),
            _ => {
                let k = rng.gen_range(1..=inputs.len());
                ft.k_of_n_gate(format!("g{g}"), k, inputs).expect("valid")
            }
        };
        gates.push(gate);
    }
    // Root: an OR over every sink gate (gates no other gate consumed)
    // plus any leaf no gate picked up, so the whole generated structure
    // is reachable from the root. A single full-coverage sink roots
    // directly. Collected by scanning the arena (not the RNG), so
    // `(config, seed)` determinism is untouched.
    let mut used: Vec<NodeId> = Vec::new();
    for (_, node) in ft.iter() {
        if let crate::tree::NodeKind::Gate { inputs, .. } = node.kind() {
            used.extend(inputs.iter().copied());
        }
    }
    let sinks: Vec<NodeId> = gates
        .iter()
        .copied()
        .filter(|g| !used.contains(g))
        .collect();
    let orphans: Vec<NodeId> = leaves
        .iter()
        .copied()
        .filter(|l| !used.contains(l))
        .collect();
    let root = if sinks.len() == 1 && orphans.is_empty() {
        sinks[0]
    } else {
        let mut inputs = sinks;
        inputs.extend(orphans);
        ft.or_gate("root", inputs).expect("valid root gate")
    };
    ft.set_root(root).expect("gate root");
    ft
}

/// Configuration for [`modular_tree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModularTreeConfig {
    /// Number of independent modules under the OR root.
    pub modules: usize,
    /// Sections (internal gate clusters) per module.
    pub sections_per_module: usize,
    /// Fresh leaves per section.
    pub leaves_per_section: usize,
    /// Base leaf probability (varied deterministically per leaf).
    pub leaf_probability: f64,
}

impl Default for ModularTreeConfig {
    fn default() -> Self {
        Self {
            modules: 8,
            sections_per_module: 4,
            leaves_per_section: 4,
            leaf_probability: 1e-3,
        }
    }
}

/// A large synthetic tree with known modular structure — the
/// industrial-scale workload for the preprocessing + module-wise BDD
/// pipeline (and the `bdd_throughput` bench).
///
/// Each module owns a disjoint leaf set (so every module top is a true
/// independent module) and mixes the shapes the preprocessing passes
/// target: k-of-n ladders over leaves plus an always-on house event
/// (constant propagation shifts the threshold), OR groups carrying an
/// always-off house event (pruning), fanout-1 same-kind OR chains
/// (coalescing), INHIBIT gates (normalization), and a shared section
/// consumed by two parents (module-internal DAG sharing). Fully
/// deterministic — a pure function of `config`.
pub fn modular_tree(config: ModularTreeConfig) -> FaultTree {
    let modules = config.modules.max(1);
    let sections = config.sections_per_module.max(2);
    let width = config.leaves_per_section.max(3);
    let mut ft = FaultTree::new(format!("modular-{modules}x{sections}x{width}"));
    let mut tops = Vec::with_capacity(modules);
    for m in 0..modules {
        let on = ft
            .condition_with_probability(format!("m{m}_on"), 1.0)
            .expect("unique names");
        let off = ft
            .condition_with_probability(format!("m{m}_off"), 0.0)
            .expect("unique names");
        let mut section_gates = Vec::with_capacity(sections);
        for s in 0..sections {
            let leaves: Vec<NodeId> = (0..width)
                .map(|j| {
                    let p =
                        config.leaf_probability * (0.5 + 0.1 * ((m * 7 + s * 3 + j) % 10) as f64);
                    ft.basic_event_with_probability(format!("m{m}_s{s}_e{j}"), p)
                        .expect("unique names")
                })
                .collect();
            let gate = match s % 4 {
                0 => {
                    // k-of-n ladder with an always-on house event: the
                    // pipeline folds `on` and shifts the threshold.
                    let mut inputs = leaves;
                    inputs.push(on);
                    ft.k_of_n_gate(format!("m{m}_s{s}_voter"), 2, inputs)
                        .expect("valid")
                }
                1 => {
                    // OR group carrying an always-off house event.
                    let mut inputs = leaves;
                    inputs.push(off);
                    ft.or_gate(format!("m{m}_s{s}_or"), inputs).expect("valid")
                }
                2 => {
                    // Fanout-1 same-kind OR chain — coalesces flat.
                    let mut chain = leaves[0];
                    for (j, &leaf) in leaves.iter().enumerate().skip(1) {
                        chain = ft
                            .or_gate(format!("m{m}_s{s}_chain{j}"), [chain, leaf])
                            .expect("valid");
                    }
                    chain
                }
                _ => {
                    // INHIBIT over an AND pair — normalizes to AND.
                    let cause = ft
                        .and_gate(format!("m{m}_s{s}_and"), leaves[..2].to_vec())
                        .expect("valid");
                    ft.inhibit_gate(format!("m{m}_s{s}_inh"), cause, on)
                        .expect("valid")
                }
            };
            section_gates.push(gate);
        }
        // Module-internal sharing: the first two sections also feed a
        // conjunction, giving them fanout 2 (never coalesced away).
        let pair = ft
            .and_gate(format!("m{m}_pair"), [section_gates[0], section_gates[1]])
            .expect("valid");
        let mut or_inputs = section_gates;
        or_inputs.push(pair);
        tops.push(ft.or_gate(format!("m{m}_top"), or_inputs).expect("valid"));
    }
    let top = ft.or_gate("top", tops).expect("valid");
    ft.set_root(top).expect("gate root");
    ft
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::TreeBdd;
    use crate::mcs;

    #[test]
    fn and_of_ors_counts() {
        let ft = and_of_ors(3, 4, 0.01);
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 64); // 4³
        assert!(mcs.iter().all(|cs| cs.order() == 3));
    }

    #[test]
    fn or_of_ands_counts() {
        let ft = or_of_ands(5, 3, 0.01);
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 5);
        assert!(mcs.iter().all(|cs| cs.order() == 3));
    }

    #[test]
    fn voter_chain_is_analyzable() {
        let ft = voter_chain(4, 0.1);
        ft.validate().unwrap();
        let a = mcs::mocus(&ft).unwrap();
        let b = mcs::bottom_up(&ft).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn random_trees_are_valid_and_engines_agree() {
        for seed in 0..25 {
            let ft = random_tree(RandomTreeConfig::default(), seed);
            ft.validate().unwrap();
            let m = mcs::mocus(&ft).unwrap();
            let b = mcs::bottom_up(&ft).unwrap();
            let bdd = TreeBdd::build(&ft).unwrap().minimal_cut_sets().unwrap();
            assert_eq!(m, b, "seed {seed}: mocus vs bottom-up");
            assert_eq!(b, bdd, "seed {seed}: bottom-up vs bdd");
        }
    }

    /// Regression: the root used to be `*gates.last()` alone, silently
    /// dropping every gate (and most leaves) the last gate did not
    /// happen to reach — "large" random trees collapsed to a fragment.
    #[test]
    fn random_tree_reaches_every_gate_and_leaf() {
        for seed in 0..40 {
            let ft = random_tree(RandomTreeConfig::default(), seed);
            let mut seen = vec![false; ft.len()];
            let mut stack = vec![ft.root().unwrap()];
            while let Some(id) = stack.pop() {
                if std::mem::replace(&mut seen[id.index()], true) {
                    continue;
                }
                if let crate::tree::NodeKind::Gate { inputs, .. } = ft.node(id).kind() {
                    stack.extend(inputs.iter().copied());
                }
            }
            let unreached: Vec<&str> = ft
                .iter()
                .filter(|(id, _)| !seen[id.index()])
                .map(|(_, n)| n.name())
                .collect();
            assert!(
                unreached.is_empty(),
                "seed {seed}: unreachable {unreached:?}"
            );
        }
    }

    #[test]
    fn modular_tree_is_deterministic_valid_and_fully_modular() {
        let cfg = ModularTreeConfig::default();
        let a = modular_tree(cfg);
        let b = modular_tree(cfg);
        assert_eq!(a, b);
        a.validate().unwrap();
        // Every module top is a genuine independent module.
        let modules = crate::preprocess::detect_modules(&a).unwrap();
        for m in 0..cfg.modules {
            let top = a.node_by_name(&format!("m{m}_top")).unwrap();
            assert!(modules.contains(&top), "m{m}_top not detected as module");
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_tree(RandomTreeConfig::default(), 7);
        let b = random_tree(RandomTreeConfig::default(), 7);
        assert_eq!(a, b);
        let c = random_tree(RandomTreeConfig::default(), 8);
        assert_ne!(a, c);
    }
}
