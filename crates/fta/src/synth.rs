//! Synthetic fault-tree generators for property tests and benchmarks.
//!
//! Two kinds of generators:
//!
//! * Parametric **families** with known analytic answers
//!   ([`and_of_ors`], [`or_of_ands`], [`voter_chain`]) — used by the
//!   benchmark harness to sweep tree size while keeping the expected
//!   minimal-cut-set counts checkable in closed form.
//! * A seeded **random tree** generator ([`random_tree`]) — used by
//!   property tests to cross-check the MOCUS / bottom-up / BDD engines
//!   against each other on arbitrary structures.

use crate::tree::{FaultTree, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `AND` of `m` independent `OR`-groups with `n` leaves each.
///
/// Minimal cut sets: all `n^m` combinations picking one leaf per group.
/// Leaf probabilities default to `p`.
pub fn and_of_ors(m: usize, n: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("and{m}-of-or{n}"));
    let mut groups = Vec::new();
    for g in 0..m {
        let leaves: Vec<NodeId> = (0..n)
            .map(|i| {
                ft.basic_event_with_probability(format!("e{g}_{i}"), p)
                    .expect("unique names")
            })
            .collect();
        groups.push(ft.or_gate(format!("or{g}"), leaves).expect("valid gate"));
    }
    let top = ft.and_gate("top", groups).expect("valid gate");
    ft.set_root(top).expect("gate root");
    ft
}

/// `OR` of `m` independent `AND`-groups with `n` leaves each.
///
/// Minimal cut sets: exactly the `m` groups.
pub fn or_of_ands(m: usize, n: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("or{m}-of-and{n}"));
    let mut groups = Vec::new();
    for g in 0..m {
        let leaves: Vec<NodeId> = (0..n)
            .map(|i| {
                ft.basic_event_with_probability(format!("e{g}_{i}"), p)
                    .expect("unique names")
            })
            .collect();
        groups.push(ft.and_gate(format!("and{g}"), leaves).expect("valid gate"));
    }
    let top = ft.or_gate("top", groups).expect("valid gate");
    ft.set_root(top).expect("gate root");
    ft
}

/// A chain of `depth` 2-of-3 voters, each voting over one fresh leaf pair
/// plus the previous stage. Exercises deep sharing and k-of-n expansion.
pub fn voter_chain(depth: usize, p: f64) -> FaultTree {
    let mut ft = FaultTree::new(format!("voter-chain-{depth}"));
    let mut stage = {
        let a = ft.basic_event_with_probability("seed_a", p).unwrap();
        let b = ft.basic_event_with_probability("seed_b", p).unwrap();
        ft.and_gate("stage0", [a, b]).unwrap()
    };
    for d in 1..=depth {
        let x = ft.basic_event_with_probability(format!("x{d}"), p).unwrap();
        let y = ft.basic_event_with_probability(format!("y{d}"), p).unwrap();
        stage = ft
            .k_of_n_gate(format!("stage{d}"), 2, [stage, x, y])
            .unwrap();
    }
    // Wrap in a trivial OR so the root is distinct from the last voter.
    let top = ft.or_gate("top", [stage]).unwrap();
    ft.set_root(top).unwrap();
    ft
}

/// Configuration for [`random_tree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTreeConfig {
    /// Number of distinct basic events to draw from.
    pub num_leaves: usize,
    /// Number of gates to generate (the last gate becomes the root).
    pub num_gates: usize,
    /// Maximum inputs per gate (≥ 2).
    pub max_inputs: usize,
    /// Probability assigned to every leaf.
    pub leaf_probability: f64,
    /// Probability that a gate input reuses an existing gate rather than
    /// a leaf (controls DAG sharing).
    pub gate_reuse: f64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        Self {
            num_leaves: 8,
            num_gates: 6,
            max_inputs: 3,
            leaf_probability: 0.1,
            gate_reuse: 0.4,
        }
    }
}

/// Generates a random coherent fault tree (AND/OR/k-of-n gates) with the
/// given seed. Deterministic per `(config, seed)`.
///
/// The generated tree always has a valid root; every gate draws inputs
/// from earlier gates and leaves, so it is a DAG by construction.
pub fn random_tree(config: RandomTreeConfig, seed: u64) -> FaultTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ft = FaultTree::new(format!("random-{seed}"));
    let leaves: Vec<NodeId> = (0..config.num_leaves.max(2))
        .map(|i| {
            ft.basic_event_with_probability(format!("e{i}"), config.leaf_probability)
                .expect("unique names")
        })
        .collect();
    let mut gates: Vec<NodeId> = Vec::new();
    for g in 0..config.num_gates.max(1) {
        let arity = rng.gen_range(2..=config.max_inputs.max(2));
        let mut inputs: Vec<NodeId> = Vec::new();
        for _ in 0..arity {
            let candidate = if !gates.is_empty() && rng.gen::<f64>() < config.gate_reuse {
                gates[rng.gen_range(0..gates.len())]
            } else {
                leaves[rng.gen_range(0..leaves.len())]
            };
            if !inputs.contains(&candidate) {
                inputs.push(candidate);
            }
        }
        if inputs.len() < 2 {
            // Ensure arity ≥ 2 by adding a distinct leaf.
            for &l in &leaves {
                if !inputs.contains(&l) {
                    inputs.push(l);
                    break;
                }
            }
        }
        let kind = rng.gen_range(0..3);
        let gate = match kind {
            0 => ft.and_gate(format!("g{g}"), inputs).expect("valid"),
            1 => ft.or_gate(format!("g{g}"), inputs).expect("valid"),
            _ => {
                let k = rng.gen_range(1..=inputs.len());
                ft.k_of_n_gate(format!("g{g}"), k, inputs).expect("valid")
            }
        };
        gates.push(gate);
    }
    // Root: an OR over the last gate (and possibly an unused leaf) keeps
    // every generated instance rooted at a gate.
    let root = *gates.last().expect("at least one gate");
    ft.set_root(root).expect("gate root");
    ft
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::TreeBdd;
    use crate::mcs;

    #[test]
    fn and_of_ors_counts() {
        let ft = and_of_ors(3, 4, 0.01);
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 64); // 4³
        assert!(mcs.iter().all(|cs| cs.order() == 3));
    }

    #[test]
    fn or_of_ands_counts() {
        let ft = or_of_ands(5, 3, 0.01);
        let mcs = mcs::bottom_up(&ft).unwrap();
        assert_eq!(mcs.len(), 5);
        assert!(mcs.iter().all(|cs| cs.order() == 3));
    }

    #[test]
    fn voter_chain_is_analyzable() {
        let ft = voter_chain(4, 0.1);
        ft.validate().unwrap();
        let a = mcs::mocus(&ft).unwrap();
        let b = mcs::bottom_up(&ft).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn random_trees_are_valid_and_engines_agree() {
        for seed in 0..25 {
            let ft = random_tree(RandomTreeConfig::default(), seed);
            ft.validate().unwrap();
            let m = mcs::mocus(&ft).unwrap();
            let b = mcs::bottom_up(&ft).unwrap();
            let bdd = TreeBdd::build(&ft).unwrap().minimal_cut_sets().unwrap();
            assert_eq!(m, b, "seed {seed}: mocus vs bottom-up");
            assert_eq!(b, bdd, "seed {seed}: bottom-up vs bdd");
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_tree(RandomTreeConfig::default(), 7);
        let b = random_tree(RandomTreeConfig::default(), 7);
        assert_eq!(a, b);
        let c = random_tree(RandomTreeConfig::default(), 8);
        assert_ne!(a, c);
    }
}
